//! # zeus-fuzz
//!
//! Differential fuzzing for the Zeus toolchain.
//!
//! Zeus's reliability story is *one description, many consistent
//! interpretations*: the same elaborated design must mean the same
//! thing to the levelized graph simulator, the 64-lane packed
//! simulator, the switch-level baseline, fault campaigns and ATPG
//! replay. This crate turns that claim into an adversary:
//!
//! * [`gen`] draws seeded, fully deterministic, well-typed Zeus
//!   programs directly as [`zeus_syntax`] ASTs,
//! * [`oracle`] runs each program through the engines and cross-checks
//!   them (scalar vs packed lane-for-lane, graph vs switch-level,
//!   campaign resume-from-every-prefix vs fresh, ATPG replay-equality),
//!   downgrading any engine panic to a `Z999` finding via the existing
//!   `catch_panic` firewall,
//! * failures are deduplicated by signature (oracle + Z-code +
//!   divergence site), shrunk by the delta-debugging [`minimize`]
//!   module while re-checking the signature, and
//! * [`corpus`] renders each survivor as a standalone `.zeus`
//!   reproducer whose comment header replays the exact failing check.
//!
//! Everything is byte-deterministic for a given `(seed, budget)`:
//! worker count only changes wall-clock time, never findings, report
//! text or reproducer bytes. The *chaos* knob plants one artificial
//! divergence per oracle so the oracles themselves stay testable
//! (mutation-style self-tests live in this crate's test suite and run
//! in CI).

#![warn(missing_docs)]

pub mod corpus;
pub mod gen;
pub mod minimize;
pub mod oracle;

pub use corpus::ReplayHeader;
pub use gen::{case_seed, generate, GenProgram, DEFAULT_SIZE};
pub use minimize::{minimize, shrink_candidates};
pub use oracle::{run_case, CaseConfig, CaseOutcome, Finding, Oracle};

use std::path::PathBuf;

use zeus::Limits;
use zeus_syntax::print_program;

/// Everything a fuzz campaign needs. Construct with
/// [`FuzzConfig::new`] and override fields as needed.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Campaign seed; every case derives its own streams from it.
    pub seed: u64,
    /// Number of cases to run.
    pub budget: u64,
    /// Worker threads. Only affects wall-clock time, never results.
    pub jobs: usize,
    /// Generator size class (see [`gen::DEFAULT_SIZE`]).
    pub size: u32,
    /// Simulation cycles per differential oracle.
    pub cycles: u32,
    /// Campaign vectors per fault for the resume oracle.
    pub campaign_vectors: u32,
    /// Vector cap for the ATPG oracle.
    pub atpg_max_vectors: usize,
    /// Resource budget for elaboration and simulation.
    pub limits: Limits,
    /// Plant an artificial divergence in this oracle (self-tests, CI
    /// plumbing checks). `None` for real fuzzing.
    pub chaos: Option<Oracle>,
    /// Directory for scratch checkpoint journals (created if absent).
    pub scratch: PathBuf,
    /// Predicate-evaluation budget per unique failure during
    /// minimization.
    pub max_shrink_evals: u32,
}

impl FuzzConfig {
    /// A config with the CLI defaults for `seed` and `budget`; scratch
    /// files go to `scratch`.
    pub fn new(seed: u64, budget: u64, scratch: PathBuf) -> FuzzConfig {
        FuzzConfig {
            seed,
            budget,
            jobs: 1,
            size: DEFAULT_SIZE,
            cycles: 6,
            campaign_vectors: 8,
            atpg_max_vectors: 16,
            limits: Limits::default(),
            chaos: None,
            scratch,
            max_shrink_evals: 200,
        }
    }

    fn case_config(&self, case: u64) -> CaseConfig {
        CaseConfig {
            cycles: self.cycles,
            campaign_vectors: self.campaign_vectors,
            atpg_max_vectors: self.atpg_max_vectors,
            limits: self.limits.clone(),
            chaos: self.chaos,
            scratch: self.scratch.clone(),
            tag: format!("{:x}-{case}", self.seed),
        }
    }
}

/// One deduplicated, minimized failure ready to persist.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The dedup signature (`oracle:code:site`).
    pub signature: String,
    /// The first finding that produced this signature.
    pub finding: Finding,
    /// Content-addressed reproducer file name (`zf-<hash>.zeus`).
    pub file_name: String,
    /// Full reproducer file contents (replay header + minimized
    /// program).
    pub contents: String,
    /// Size of the originally failing program text, in bytes.
    pub original_bytes: usize,
    /// Size of the minimized program text, in bytes.
    pub minimized_bytes: usize,
}

/// The outcome of a fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Seed the campaign ran under.
    pub seed: u64,
    /// Cases requested.
    pub budget: u64,
    /// Generator size class.
    pub size: u32,
    /// Cases that ran to completion (including failing ones).
    pub completed: u64,
    /// Cases skipped on a resource limit.
    pub skipped: u64,
    /// Total findings before deduplication.
    pub raw_findings: u64,
    /// Deduplicated, minimized failures in first-seen case order.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// Renders the deterministic text report (no timing, no paths, no
    /// worker counts — byte-identical for identical campaigns).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("zeus-fuzz report\n");
        s.push_str(&format!("seed      : {}\n", self.seed));
        s.push_str(&format!("budget    : {}\n", self.budget));
        s.push_str(&format!("size      : {}\n", self.size));
        s.push_str(&format!("completed : {}\n", self.completed));
        s.push_str(&format!("skipped   : {}\n", self.skipped));
        s.push_str(&format!(
            "failures  : {} raw, {} unique\n",
            self.raw_findings,
            self.failures.len()
        ));
        for (i, f) in self.failures.iter().enumerate() {
            s.push_str(&format!("\n[{}] {}\n", i + 1, f.signature));
            s.push_str(&format!("    case      : {}\n", f.finding.case));
            s.push_str(&format!("    detail    : {}\n", f.finding.detail));
            s.push_str(&format!(
                "    reproducer: {} ({} -> {} bytes)\n",
                f.file_name, f.original_bytes, f.minimized_bytes
            ));
        }
        s
    }
}

/// Runs a fuzz campaign: generate, cross-check, deduplicate, minimize.
///
/// Cases are distributed over `cfg.jobs` threads by `case % jobs`;
/// results are merged back in case order and minimization runs on the
/// calling thread, so the report and every reproducer are
/// byte-identical whatever the thread count.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let _ = std::fs::create_dir_all(&cfg.scratch);
    let jobs = cfg.jobs.max(1);

    // Phase 1: run all cases, workers striped by case index.
    let mut merged: Vec<(u64, CaseOutcome)> = if jobs == 1 || cfg.budget <= 1 {
        (0..cfg.budget).map(|c| (c, run_one(cfg, c))).collect()
    } else {
        let mut chunks: Vec<Vec<(u64, CaseOutcome)>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..jobs as u64)
                .map(|j| {
                    scope.spawn(move || {
                        (j..cfg.budget)
                            .step_by(jobs)
                            .map(|c| (c, run_one(cfg, c)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                chunks.push(h.join().expect("fuzz worker never panics"));
            }
        });
        chunks.into_iter().flatten().collect()
    };
    merged.sort_by_key(|(c, _)| *c);

    // Phase 2: count and deduplicate in case order.
    let mut completed = 0u64;
    let mut skipped = 0u64;
    let mut raw_findings = 0u64;
    let mut unique: Vec<Finding> = Vec::new();
    for (case, outcome) in merged {
        match outcome {
            CaseOutcome::SkippedLimit(_) => skipped += 1,
            CaseOutcome::Findings(findings) => {
                completed += 1;
                for mut f in findings {
                    raw_findings += 1;
                    f.case = case;
                    if !unique.iter().any(|u| u.signature() == f.signature()) {
                        unique.push(f);
                    }
                }
            }
        }
    }

    // Phase 3: minimize each unique failure and render its reproducer.
    let failures = unique
        .into_iter()
        .map(|finding| {
            let case = finding.case;
            let g = generate(cfg.seed, case, cfg.size);
            let original = print_program(&g.program);
            let vec_seed = case_seed(cfg.seed, case, 1);
            let cc = cfg.case_config(case);
            let signature = finding.signature();
            let mut keeps = |p: &zeus_syntax::Program| {
                let text = print_program(p);
                match run_case(&text, &g.top, vec_seed, &cc) {
                    CaseOutcome::Findings(fs) => fs.iter().any(|f| f.signature() == signature),
                    CaseOutcome::SkippedLimit(_) => false,
                }
            };
            let small = minimize(&g.program, cfg.max_shrink_evals, &mut keeps);
            let minimized = print_program(&small);
            let header = ReplayHeader {
                seed: cfg.seed,
                case,
                vec_seed,
                oracle: finding.oracle,
                code: finding.code.clone(),
                site: finding.site.clone(),
                top: g.top.clone(),
                cycles: cfg.cycles,
                vectors: cfg.campaign_vectors,
                atpg_max: cfg.atpg_max_vectors,
                chaos: cfg.chaos,
            };
            FuzzFailure {
                signature,
                file_name: header.file_name(),
                contents: header.render(&minimized),
                original_bytes: original.len(),
                minimized_bytes: minimized.len(),
                finding,
            }
        })
        .collect();

    FuzzReport {
        seed: cfg.seed,
        budget: cfg.budget,
        size: cfg.size,
        completed,
        skipped,
        raw_findings,
        failures,
    }
}

fn run_one(cfg: &FuzzConfig, case: u64) -> CaseOutcome {
    let g = generate(cfg.seed, case, cfg.size);
    let text = print_program(&g.program);
    run_case(
        &text,
        &g.top,
        case_seed(cfg.seed, case, 1),
        &cfg.case_config(case),
    )
}

/// The outcome of replaying one reproducer file.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The parsed replay header.
    pub header: ReplayHeader,
    /// Whether the recorded signature still reproduces.
    pub reproduced: bool,
    /// Every finding the replay produced (reproduced or not).
    pub findings: Vec<Finding>,
}

/// Replays one reproducer file (see [`corpus`] for the format).
///
/// # Errors
///
/// A human-readable message when the replay header is missing or
/// malformed. An intact header whose failure no longer reproduces is
/// *not* an error — that is the good case — so inspect
/// [`ReplayOutcome::reproduced`].
pub fn replay(text: &str, scratch: PathBuf) -> Result<ReplayOutcome, String> {
    let (header, program) = ReplayHeader::parse(text)?;
    let _ = std::fs::create_dir_all(&scratch);
    let cc = CaseConfig {
        cycles: header.cycles,
        campaign_vectors: header.vectors,
        atpg_max_vectors: header.atpg_max,
        limits: Limits::default(),
        chaos: header.chaos,
        scratch,
        tag: format!("replay-{:x}-{}", header.seed, header.case),
    };
    let outcome = run_case(&program, &header.top, header.vec_seed, &cc);
    let signature = header.signature();
    let findings = match outcome {
        CaseOutcome::Findings(fs) => fs,
        CaseOutcome::SkippedLimit(_) => Vec::new(),
    };
    let reproduced = findings.iter().any(|f| f.signature() == signature);
    Ok(ReplayOutcome {
        header,
        reproduced,
        findings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("zeus-fuzz-test-{tag}"))
    }

    /// The engines agree on a clean seeded budget: the fuzzer's
    /// baseline smoke. A failure here is a real toolchain bug.
    #[test]
    fn clean_budget_finds_nothing() {
        let cfg = FuzzConfig::new(0x2E05_1983, 6, scratch("clean"));
        let report = run_fuzz(&cfg);
        assert_eq!(report.completed + report.skipped, 6);
        assert!(
            report.failures.is_empty(),
            "engines diverged:\n{}",
            report.render()
        );
    }

    /// Mutation-style self-test: each differential oracle must detect
    /// its artificially injected divergence.
    #[test]
    fn chaos_self_test_every_differential_oracle() {
        for oracle in Oracle::DIFFERENTIAL {
            let mut cfg = FuzzConfig::new(7, 10, scratch(oracle.name()));
            cfg.chaos = Some(oracle);
            cfg.max_shrink_evals = 24;
            let report = run_fuzz(&cfg);
            assert!(
                report.failures.iter().any(|f| f.finding.oracle == oracle),
                "oracle {} missed its planted divergence:\n{}",
                oracle.name(),
                report.render()
            );
        }
    }

    /// Same findings, same report, same reproducer bytes — whatever
    /// the worker count.
    #[test]
    fn deterministic_across_runs_and_jobs() {
        let mk = |jobs: usize| {
            let mut cfg = FuzzConfig::new(21, 8, scratch(&format!("det{jobs}")));
            cfg.chaos = Some(Oracle::ScalarVsPacked);
            cfg.jobs = jobs;
            cfg.max_shrink_evals = 24;
            run_fuzz(&cfg)
        };
        let a = mk(1);
        let b = mk(3);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.failures.len(), b.failures.len());
        for (x, y) in a.failures.iter().zip(&b.failures) {
            assert_eq!(x.file_name, y.file_name);
            assert_eq!(x.contents, y.contents);
        }
    }

    /// A minimized reproducer replays to the same signature, and its
    /// minimized program is no larger than the original.
    #[test]
    fn reproducers_replay_and_shrink() {
        let mut cfg = FuzzConfig::new(13, 8, scratch("replay"));
        cfg.chaos = Some(Oracle::ScalarVsPacked);
        cfg.max_shrink_evals = 48;
        let report = run_fuzz(&cfg);
        let failure = report.failures.first().expect("chaos produces a failure");
        assert!(failure.minimized_bytes <= failure.original_bytes);
        let outcome = replay(&failure.contents, scratch("replay-rerun")).expect("header parses");
        assert!(
            outcome.reproduced,
            "reproducer lost its signature {}:\n{}",
            failure.signature, failure.contents
        );
    }
}
