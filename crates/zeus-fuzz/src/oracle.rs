//! The differential oracles and the per-case pipeline.
//!
//! One fuzz case flows through seven checks, each of which can emit a
//! [`Finding`]:
//!
//! 1. **roundtrip** — the printed program must re-parse and re-print to
//!    the identical bytes (printer fixpoint).
//! 2. **compile** — parse/check/elaborate must accept the generated
//!    program (the generator only emits well-typed subsets); resource
//!    limits (`Z9xx`) are *skips*, not findings.
//! 3. **scalar-vs-packed** — the levelized [`zeus::Simulator`] and the
//!    64-lane [`zeus::PackedSim`], driven with identical vectors, must
//!    agree on every port, lane for lane, every cycle.
//! 4. **graph-vs-switch** — on the comparable subset (combinational
//!    designs), the semantics-graph simulator and the Bryant-style
//!    switch-level simulator must agree on every port every cycle.
//! 5. **resume-prefix** — a fault campaign resumed from *every* prefix
//!    of its checkpoint journal must reproduce the fresh report byte
//!    for byte.
//! 6. **atpg-replay** — the coverage a [`zeus::run_atpg`] report claims
//!    must equal a fresh campaign replaying the emitted vector set
//!    (after a text round-trip of the set itself).
//! 7. **opt** — the equivalence-gated optimizer's output must lockstep
//!    the unoptimized design on the boolean view of every port, cycle
//!    for cycle, under the *scalar* engine — an independent re-check of
//!    the optimizer's own (packed/exhaustive) verification gate.
//!
//! Every oracle body runs behind [`zeus::catch_panic`]: a panic inside
//! any engine is downgraded to a `Z999` finding with the oracle name as
//! the divergence site instead of tearing the fuzzer down.
//!
//! The **chaos** knob artificially injects one divergence per oracle
//! (flipping an observed bit, corrupting a replayed report). It exists
//! so the oracles themselves are testable: a seeded regression proves
//! each one detects the planted divergence (mutation-style self-test).

use std::path::PathBuf;

use zeus::{
    catch_panic, enumerate_faults, optimize, run_atpg, run_campaign, run_campaign_with, AtpgConfig,
    CampaignConfig, CheckpointOptions, Design, Engine, FaultListOptions, Limits, OptConfig,
    PackedSim, Simulator, SwitchSim, Value, VectorSet, VectorStream, Zeus, LANES,
};

use crate::gen::case_seed;

/// Which check produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Oracle {
    /// Printer fixpoint through the real parser.
    Roundtrip,
    /// Parse/check/elaborate acceptance.
    Compile,
    /// Scalar vs 64-lane packed simulation.
    ScalarVsPacked,
    /// Graph vs switch-level simulation (combinational subset).
    GraphVsSwitch,
    /// Campaign resume-from-every-prefix vs fresh run.
    ResumePrefix,
    /// ATPG claimed grade vs replayed campaign.
    AtpgReplay,
    /// Optimized vs unoptimized netlist, scalar lockstep.
    OptLockstep,
}

impl Oracle {
    /// Stable name used in signatures, reports and replay headers.
    pub fn name(self) -> &'static str {
        match self {
            Oracle::Roundtrip => "roundtrip",
            Oracle::Compile => "compile",
            Oracle::ScalarVsPacked => "scalar-vs-packed",
            Oracle::GraphVsSwitch => "graph-vs-switch",
            Oracle::ResumePrefix => "resume-prefix",
            Oracle::AtpgReplay => "atpg-replay",
            Oracle::OptLockstep => "opt",
        }
    }

    /// Parses a stable name back (replay headers, `--chaos`).
    pub fn from_name(name: &str) -> Option<Oracle> {
        Some(match name {
            "roundtrip" => Oracle::Roundtrip,
            "compile" => Oracle::Compile,
            "scalar-vs-packed" => Oracle::ScalarVsPacked,
            "graph-vs-switch" => Oracle::GraphVsSwitch,
            "resume-prefix" => Oracle::ResumePrefix,
            "atpg-replay" => Oracle::AtpgReplay,
            "opt" => Oracle::OptLockstep,
            _ => return None,
        })
    }

    /// The chaos-injectable differential oracles, for self-tests.
    pub const DIFFERENTIAL: [Oracle; 5] = [
        Oracle::ScalarVsPacked,
        Oracle::GraphVsSwitch,
        Oracle::ResumePrefix,
        Oracle::AtpgReplay,
        Oracle::OptLockstep,
    ];
}

/// One deduplicable failure.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The oracle that fired.
    pub oracle: Oracle,
    /// Z-code class: the diagnostic's code for compile failures, `Z999`
    /// for caught panics, `Z301` for value/report divergences, `Z001`
    /// for round-trip breaks.
    pub code: String,
    /// Divergence site, e.g. `o0@c3`, `prefix@1`, `grade`.
    pub site: String,
    /// Human-readable one-liner.
    pub detail: String,
    /// The case that first produced it (set by the driver).
    pub case: u64,
}

impl Finding {
    /// The deduplication key: Z-code + oracle + divergence site.
    pub fn signature(&self) -> String {
        format!("{}:{}:{}", self.oracle.name(), self.code, self.site)
    }
}

/// Per-case execution knobs (shared by fresh runs, minimization and
/// corpus replay, so a reproducer reruns under identical conditions).
#[derive(Debug, Clone)]
pub struct CaseConfig {
    /// Simulation cycles per differential oracle.
    pub cycles: u32,
    /// Random vectors per fault for the campaign oracle.
    pub campaign_vectors: u32,
    /// Vector cap for the ATPG oracle.
    pub atpg_max_vectors: usize,
    /// Resource budget for elaboration and simulation.
    pub limits: Limits,
    /// Inject an artificial divergence into this oracle.
    pub chaos: Option<Oracle>,
    /// Directory for scratch checkpoint journals.
    pub scratch: PathBuf,
    /// Unique tag for this case's scratch files.
    pub tag: String,
}

impl CaseConfig {
    /// Defaults used by the CLI; `tag` must be unique per live case.
    pub fn new(scratch: PathBuf, tag: String) -> CaseConfig {
        CaseConfig {
            cycles: 6,
            campaign_vectors: 8,
            atpg_max_vectors: 16,
            limits: Limits::default(),
            chaos: None,
            scratch,
            tag,
        }
    }
}

/// What one case produced.
#[derive(Debug, Clone)]
pub enum CaseOutcome {
    /// Ran to completion; findings may be empty.
    Findings(Vec<Finding>),
    /// Hit a resource limit (`Z9xx`) — not a bug, counted separately.
    SkippedLimit(String),
}

/// Runs the whole pipeline on one program text. `vec_seed` seeds the
/// input-vector streams (derived from `(seed, case)` by the driver, but
/// kept explicit so replays are self-contained).
pub fn run_case(text: &str, top: &str, vec_seed: u64, cc: &CaseConfig) -> CaseOutcome {
    let mut findings = Vec::new();

    // 1+2: parse / fixpoint / elaborate. `Zeus::parse` runs behind the
    // facade firewall, so engine panics surface as Z999 diagnostics.
    let z = match Zeus::parse(text) {
        Ok(z) => z,
        Err(e) => {
            if e.has_resource_limit() {
                return CaseOutcome::SkippedLimit("parse".to_string());
            }
            let code = first_code(&e).unwrap_or("Z001");
            findings.push(Finding {
                oracle: Oracle::Compile,
                code: code.to_string(),
                site: "parse".to_string(),
                detail: "generated program rejected by the parser/checker".to_string(),
                case: 0,
            });
            return CaseOutcome::Findings(findings);
        }
    };
    let reprinted = z.to_canonical_text();
    if reprinted != text {
        findings.push(Finding {
            oracle: Oracle::Roundtrip,
            code: "Z001".to_string(),
            site: "printer".to_string(),
            detail: "canonical print is not a fixpoint under re-parsing".to_string(),
            case: 0,
        });
    }
    let design = match z.elaborate_limited(top, &[], &cc.limits) {
        Ok(d) => d,
        Err(e) => {
            if e.has_resource_limit() {
                return CaseOutcome::SkippedLimit("elab".to_string());
            }
            let code = first_code(&e).unwrap_or("Z201");
            findings.push(Finding {
                oracle: Oracle::Compile,
                code: code.to_string(),
                site: "elab".to_string(),
                detail: "generated program rejected by elaboration".to_string(),
                case: 0,
            });
            return CaseOutcome::Findings(findings);
        }
    };

    // 3..7: the differential oracles, each behind the panic firewall.
    let oracles: [(Oracle, OracleFn); 5] = [
        (Oracle::ScalarVsPacked, scalar_vs_packed),
        (Oracle::GraphVsSwitch, graph_vs_switch),
        (Oracle::ResumePrefix, resume_prefix),
        (Oracle::AtpgReplay, atpg_replay),
        (Oracle::OptLockstep, opt_lockstep),
    ];
    for (oracle, f) in oracles {
        match catch_panic(|| f(&design, vec_seed, cc)) {
            Ok(OracleVerdict::Agree) => {}
            Ok(OracleVerdict::Skip) => {}
            Ok(OracleVerdict::Diverged { code, site, detail }) => findings.push(Finding {
                oracle,
                code,
                site,
                detail,
                case: 0,
            }),
            Err(d) => findings.push(Finding {
                oracle,
                code: "Z999".to_string(),
                site: "panic".to_string(),
                detail: format!("engine panicked inside the {} oracle: {d}", oracle.name()),
                case: 0,
            }),
        }
    }
    CaseOutcome::Findings(findings)
}

fn first_code(e: &zeus::Diagnostics) -> Option<&'static str> {
    e.iter().find_map(|d| d.code.map(|c| c.as_str()))
}

enum OracleVerdict {
    Agree,
    /// Not applicable to this design (or a resource limit inside the
    /// oracle) — silently inconclusive.
    Skip,
    Diverged {
        code: String,
        site: String,
        detail: String,
    },
}

type OracleFn = fn(&Design, u64, &CaseConfig) -> OracleVerdict;

fn render(bits: &[Value]) -> String {
    bits.iter().map(|v| v.to_string()).collect()
}

/// Oracle 3: scalar vs packed, lane for lane.
fn scalar_vs_packed(design: &Design, vec_seed: u64, cc: &CaseConfig) -> OracleVerdict {
    let mut sc = match Simulator::with_limits(design.clone(), &cc.limits) {
        Ok(s) => s,
        Err(_) => return OracleVerdict::Skip,
    };
    let mut pk = match PackedSim::with_limits(design.clone(), &cc.limits) {
        Ok(s) => s,
        Err(_) => return OracleVerdict::Skip,
    };
    let mut stream = VectorStream::new(design, case_seed(vec_seed, 0, 1));
    // Reset cycle, then the seeded vectors.
    sc.set_rset(true);
    pk.set_rset(true);
    for cycle in 0..=cc.cycles {
        let vector = if cycle == 0 {
            stream.zero_vector()
        } else {
            sc.set_rset(false);
            pk.set_rset(false);
            stream.next_vector()
        };
        for (port, bits) in &vector {
            if sc.set_port(port, bits).is_err() || pk.set_port(port, bits).is_err() {
                return OracleVerdict::Skip;
            }
        }
        let (ra, rb) = (sc.try_step(), pk.try_step());
        match (&ra, &rb) {
            (Ok(_), Ok(_)) => {}
            (Err(a), Err(b)) if a.code == b.code => return OracleVerdict::Skip,
            (a, b) => {
                let ca = a.as_ref().err().and_then(|d| d.code).map(|c| c.as_str());
                let cb = b.as_ref().err().and_then(|d| d.code).map(|c| c.as_str());
                return OracleVerdict::Diverged {
                    code: ca.or(cb).unwrap_or("Z301").to_string(),
                    site: format!("step@c{cycle}"),
                    detail: format!(
                        "step outcome differs at cycle {cycle}: scalar {}, packed {}",
                        ca.unwrap_or("ok"),
                        cb.unwrap_or("ok")
                    ),
                };
            }
        }
        for (p, port) in design.ports.iter().enumerate() {
            let scalar = sc.port(&port.name);
            let mut lane0 = pk.port_lane(&port.name, 0);
            let lane_hi = pk.port_lane(&port.name, LANES - 1);
            if cc.chaos == Some(Oracle::ScalarVsPacked) && cycle == 1 && p == 0 {
                // Mutation self-test hook: flip the first observed bit.
                if let Some(b) = lane0.first_mut() {
                    *b = flip(*b);
                }
            }
            if lane0 != scalar || lane_hi != scalar {
                return OracleVerdict::Diverged {
                    code: "Z301".to_string(),
                    site: format!("{}@c{cycle}", port.name),
                    detail: format!(
                        "port {} at cycle {cycle}: scalar {} vs packed lane0 {} lane{} {}",
                        port.name,
                        render(&scalar),
                        render(&lane0),
                        LANES - 1,
                        render(&lane_hi)
                    ),
                };
            }
        }
    }
    OracleVerdict::Agree
}

fn flip(v: Value) -> Value {
    match v {
        Value::Zero => Value::One,
        _ => Value::Zero,
    }
}

/// Oracle 4: graph vs switch-level, on the comparable (combinational)
/// subset. Sequential designs are skipped: the switch-level engine
/// models charge storage differently enough that lockstep equality is
/// only contractual for combinational networks.
fn graph_vs_switch(design: &Design, vec_seed: u64, cc: &CaseConfig) -> OracleVerdict {
    if design.netlist.registers().count() > 0 {
        return OracleVerdict::Skip;
    }
    let mut gr = match Simulator::with_limits(design.clone(), &cc.limits) {
        Ok(s) => s,
        Err(_) => return OracleVerdict::Skip,
    };
    let mut sw = SwitchSim::with_limits(design, &cc.limits);
    let mut stream = VectorStream::new(design, case_seed(vec_seed, 0, 2));
    for cycle in 0..cc.cycles {
        let vector = stream.next_vector();
        for (port, bits) in &vector {
            if gr.set_port(port, bits).is_err() || sw.set_port(port, bits).is_err() {
                return OracleVerdict::Skip;
            }
        }
        let (ra, rb) = (gr.try_step(), sw.try_step());
        match (&ra, &rb) {
            (Ok(_), Ok(_)) => {}
            (Err(a), Err(b)) if a.code == b.code => return OracleVerdict::Skip,
            (a, b) => {
                let ca = a.as_ref().err().and_then(|d| d.code).map(|c| c.as_str());
                let cb = b.as_ref().err().and_then(|d| d.code).map(|c| c.as_str());
                return OracleVerdict::Diverged {
                    code: ca.or(cb).unwrap_or("Z301").to_string(),
                    site: format!("step@c{cycle}"),
                    detail: format!(
                        "step outcome differs at cycle {cycle}: graph {}, switch {}",
                        ca.unwrap_or("ok"),
                        cb.unwrap_or("ok")
                    ),
                };
            }
        }
        for (p, port) in design.ports.iter().enumerate() {
            let graph = gr.port(&port.name);
            let mut switch = sw.port(&port.name);
            if cc.chaos == Some(Oracle::GraphVsSwitch) && cycle == 0 && p == 0 {
                if let Some(b) = switch.first_mut() {
                    *b = flip(*b);
                }
            }
            if graph != switch {
                return OracleVerdict::Diverged {
                    code: "Z301".to_string(),
                    site: format!("{}@c{cycle}", port.name),
                    detail: format!(
                        "port {} at cycle {cycle}: graph {} vs switch {}",
                        port.name,
                        render(&graph),
                        render(&switch)
                    ),
                };
            }
        }
    }
    OracleVerdict::Agree
}

/// Oracle 5: campaign resume-from-every-prefix vs fresh run.
fn resume_prefix(design: &Design, vec_seed: u64, cc: &CaseConfig) -> OracleVerdict {
    let list = enumerate_faults(design, &FaultListOptions::default());
    if list.faults.is_empty() {
        return OracleVerdict::Skip;
    }
    let mut cfg = CampaignConfig::new(
        Engine::Graph,
        cc.campaign_vectors,
        case_seed(vec_seed, 0, 3),
    );
    cfg.limits = cc.limits.clone();
    let fresh = match run_campaign(design, &list, &cfg) {
        Ok(r) => r.to_json(),
        Err(d) => return diag_verdict(d, "campaign"),
    };

    let path = cc.scratch.join(format!("{}-resume.journal", cc.tag));
    let _ = std::fs::remove_file(&path);
    let journaled =
        match run_campaign_with(design, &list, &cfg, Some(&CheckpointOptions::new(&path))) {
            Ok(r) => r.to_json(),
            Err(d) => return diag_verdict(d, "journal"),
        };
    if journaled != fresh {
        let _ = std::fs::remove_file(&path);
        return OracleVerdict::Diverged {
            code: "Z301".to_string(),
            site: "journaled-vs-fresh".to_string(),
            detail: "a journaled campaign differs from an unjournaled one".to_string(),
        };
    }
    let Ok(full) = std::fs::read_to_string(&path) else {
        let _ = std::fs::remove_file(&path);
        return OracleVerdict::Skip;
    };
    let lines: Vec<&str> = full.lines().collect();
    let entries = lines.len().saturating_sub(1);
    for keep in 0..entries {
        let mut prefix: String = lines[..1 + keep].join("\n");
        prefix.push('\n');
        if std::fs::write(&path, prefix).is_err() {
            break;
        }
        let resumed =
            match run_campaign_with(design, &list, &cfg, Some(&CheckpointOptions::resume(&path))) {
                Ok(r) => r.to_json(),
                Err(d) => {
                    let _ = std::fs::remove_file(&path);
                    return diag_verdict(d, "resume");
                }
            };
        let resumed = if cc.chaos == Some(Oracle::ResumePrefix) && keep == 0 {
            // Mutation self-test hook: corrupt the resumed report.
            format!("{resumed}#chaos")
        } else {
            resumed
        };
        if resumed != fresh {
            let _ = std::fs::remove_file(&path);
            return OracleVerdict::Diverged {
                code: "Z301".to_string(),
                site: format!("prefix@{keep}"),
                detail: format!(
                    "campaign resumed from a {keep}-entry journal prefix differs from a fresh run"
                ),
            };
        }
    }
    let _ = std::fs::remove_file(&path);
    OracleVerdict::Agree
}

/// Oracle 6: the grade an ATPG report claims must equal a campaign
/// replaying the emitted vector set, after a text round-trip.
fn atpg_replay(design: &Design, vec_seed: u64, cc: &CaseConfig) -> OracleVerdict {
    let cfg = AtpgConfig {
        seed: case_seed(vec_seed, 0, 4),
        max_vectors: cc.atpg_max_vectors,
        limits: cc.limits.clone(),
        ..AtpgConfig::default()
    };
    let report = match run_atpg(design, &cfg) {
        Ok(r) => r,
        Err(d) => return diag_verdict(d, "atpg"),
    };
    let set = match VectorSet::parse(&report.vectors.to_text()) {
        Ok(s) => s,
        Err(_) => {
            return OracleVerdict::Diverged {
                code: "Z301".to_string(),
                site: "vector-roundtrip".to_string(),
                detail: "emitted vector set does not re-parse".to_string(),
            }
        }
    };
    let mut gcfg = CampaignConfig::replay(Engine::Graph, set);
    gcfg.limits = cc.limits.clone();
    let list = enumerate_faults(design, &FaultListOptions::default());
    let replayed = match run_campaign(design, &list, &gcfg) {
        Ok(r) => r.to_json(),
        Err(d) => return diag_verdict(d, "replay"),
    };
    let replayed = if cc.chaos == Some(Oracle::AtpgReplay) {
        format!("{replayed}#chaos")
    } else {
        replayed
    };
    if replayed != report.grade.to_json() {
        return OracleVerdict::Diverged {
            code: "Z301".to_string(),
            site: "grade".to_string(),
            detail: "replaying the emitted vector set does not reproduce the claimed grade"
                .to_string(),
        };
    }
    OracleVerdict::Agree
}

/// Oracle 7: optimized vs unoptimized lockstep under the scalar engine.
///
/// `optimize` carries its own verification gate (packed-random lockstep
/// or exhaustive enumeration); this oracle re-checks the result with an
/// engine the gate never uses, on fuzz-generated programs the bundled
/// designs don't resemble. The compared observable is the gate's own
/// contract: the *boolean view* of every port, cycle for cycle (raw
/// NOINFL-vs-UNDEF distinctions on undriven nets are not preserved by
/// contribution-exact rewrites and are invisible to every downstream
/// engine). A gate refusal (`optimize` returning `Err`) is itself a
/// finding — the pipeline produced a netlist its verifier rejected.
fn opt_lockstep(design: &Design, vec_seed: u64, cc: &CaseConfig) -> OracleVerdict {
    let ocfg = OptConfig {
        limits: cc.limits.clone(),
        ..OptConfig::default()
    };
    let optimized = match optimize(design, &ocfg) {
        Ok(o) => o.design,
        Err(d) => return diag_verdict(d, "gate"),
    };
    let mut base = match Simulator::with_limits(design.clone(), &cc.limits) {
        Ok(s) => s,
        Err(_) => return OracleVerdict::Skip,
    };
    let mut opt = match Simulator::with_limits(optimized, &cc.limits) {
        Ok(s) => s,
        Err(_) => return OracleVerdict::Skip,
    };
    // Identical RNG streams: when the design uses RANDOM the optimizer
    // leaves the netlist untouched, so both sides draw identically.
    let rng_seed = case_seed(vec_seed, 0, 5);
    base.reseed(rng_seed);
    opt.reseed(rng_seed);
    let mut stream = VectorStream::new(design, case_seed(vec_seed, 0, 6));
    base.set_rset(true);
    opt.set_rset(true);
    for cycle in 0..=cc.cycles {
        let vector = if cycle == 0 {
            stream.zero_vector()
        } else {
            base.set_rset(false);
            opt.set_rset(false);
            stream.next_vector()
        };
        for (port, bits) in &vector {
            if base.set_port(port, bits).is_err() || opt.set_port(port, bits).is_err() {
                return OracleVerdict::Skip;
            }
        }
        let (ra, rb) = (base.try_step(), opt.try_step());
        match (&ra, &rb) {
            (Ok(_), Ok(_)) => {}
            (Err(a), Err(b)) if a.code == b.code => return OracleVerdict::Skip,
            (a, b) => {
                let ca = a.as_ref().err().and_then(|d| d.code).map(|c| c.as_str());
                let cb = b.as_ref().err().and_then(|d| d.code).map(|c| c.as_str());
                return OracleVerdict::Diverged {
                    code: ca.or(cb).unwrap_or("Z301").to_string(),
                    site: format!("step@c{cycle}"),
                    detail: format!(
                        "step outcome differs at cycle {cycle}: unoptimized {}, optimized {}",
                        ca.unwrap_or("ok"),
                        cb.unwrap_or("ok")
                    ),
                };
            }
        }
        for (p, port) in design.ports.iter().enumerate() {
            let want: Vec<Value> = base
                .port(&port.name)
                .iter()
                .map(|v| v.to_boolean())
                .collect();
            let mut got: Vec<Value> = opt
                .port(&port.name)
                .iter()
                .map(|v| v.to_boolean())
                .collect();
            if cc.chaos == Some(Oracle::OptLockstep) && cycle == 1 && p == 0 {
                // Mutation self-test hook: flip the first observed bit.
                if let Some(b) = got.first_mut() {
                    *b = flip(*b);
                }
            }
            if want != got {
                return OracleVerdict::Diverged {
                    code: "Z301".to_string(),
                    site: format!("{}@c{cycle}", port.name),
                    detail: format!(
                        "port {} at cycle {cycle}: unoptimized {} vs optimized {}",
                        port.name,
                        render(&want),
                        render(&got)
                    ),
                };
            }
        }
    }
    OracleVerdict::Agree
}

/// Classifies a diagnostic escaping a campaign/ATPG oracle: resource
/// limits are skips, anything else is a finding carrying its Z-code.
fn diag_verdict(d: zeus::Diagnostic, site: &str) -> OracleVerdict {
    if d.is_resource_limit() {
        return OracleVerdict::Skip;
    }
    OracleVerdict::Diverged {
        code: d.code.map(|c| c.as_str()).unwrap_or("Z301").to_string(),
        site: site.to_string(),
        detail: format!("unexpected diagnostic: {d}"),
    }
}
