//! Reproducer files: standalone `.zeus` programs with a replay header.
//!
//! A reproducer is a normal Zeus source file whose leading comment
//! (`<* … *>`) records everything needed to re-run the failing check
//! without the original fuzz campaign:
//!
//! ```text
//! <* zeus-fuzz reproducer v1
//!    seed      : 42
//!    case      : 17
//!    vec-seed  : 9857773963747261489
//!    oracle    : scalar-vs-packed
//!    code      : Z301
//!    site      : o0@c3
//!    top       : c2
//!    cycles    : 6
//!    vectors   : 8
//!    atpg-max  : 16
//!    chaos     : -
//! *>
//! TYPE c2 = COMPONENT … ;
//! ```
//!
//! `zeusc fuzz --replay FILE` parses the header, runs
//! [`run_case`](crate::oracle::run_case) on the program below it with
//! the recorded knobs, and reports whether the recorded signature still
//! reproduces. Because the header is a comment, the file also remains
//! directly usable with every other `zeusc` subcommand.
//!
//! File names are content-addressed by signature —
//! `zf-<fnv64(signature)>.zeus` — so re-finding a known failure
//! overwrites its reproducer instead of multiplying files.

use zeus::StableHasher;

use crate::oracle::Oracle;

/// The parsed replay header of a reproducer file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayHeader {
    /// Campaign seed the failure was found under.
    pub seed: u64,
    /// Case index within the campaign.
    pub case: u64,
    /// Derived seed for the oracle input-vector streams.
    pub vec_seed: u64,
    /// The oracle that fired.
    pub oracle: Oracle,
    /// Z-code class of the failure.
    pub code: String,
    /// Divergence site.
    pub site: String,
    /// Top component to elaborate.
    pub top: String,
    /// Simulation cycles per differential oracle.
    pub cycles: u32,
    /// Campaign vectors per fault.
    pub vectors: u32,
    /// ATPG vector cap.
    pub atpg_max: usize,
    /// Chaos injection the failure was recorded under (`-` = none).
    pub chaos: Option<Oracle>,
}

impl ReplayHeader {
    /// The deduplication signature this reproducer must re-trigger.
    pub fn signature(&self) -> String {
        format!("{}:{}:{}", self.oracle.name(), self.code, self.site)
    }

    /// Content-addressed file name for this failure class.
    pub fn file_name(&self) -> String {
        let mut h = StableHasher::new();
        h.write_bytes(self.signature().as_bytes());
        format!("zf-{:016x}.zeus", h.finish())
    }

    /// Renders the reproducer file: header comment plus program text.
    pub fn render(&self, program: &str) -> String {
        let chaos = self.chaos.map(Oracle::name).unwrap_or("-");
        format!(
            "<* zeus-fuzz reproducer v1\n   \
             seed      : {}\n   \
             case      : {}\n   \
             vec-seed  : {}\n   \
             oracle    : {}\n   \
             code      : {}\n   \
             site      : {}\n   \
             top       : {}\n   \
             cycles    : {}\n   \
             vectors   : {}\n   \
             atpg-max  : {}\n   \
             chaos     : {}\n\
             *>\n{}",
            self.seed,
            self.case,
            self.vec_seed,
            self.oracle.name(),
            self.code,
            self.site,
            self.top,
            self.cycles,
            self.vectors,
            self.atpg_max,
            chaos,
            program,
        )
    }

    /// Parses a reproducer file back into `(header, program text)`.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the missing or malformed field;
    /// never panics, whatever the input.
    pub fn parse(text: &str) -> Result<(ReplayHeader, String), String> {
        let rest = text
            .strip_prefix("<* zeus-fuzz reproducer v1")
            .ok_or("not a zeus-fuzz reproducer (missing '<* zeus-fuzz reproducer v1' header)")?;
        let end = rest
            .find("*>")
            .ok_or("unterminated reproducer header (no '*>')")?;
        let (head, tail) = rest.split_at(end);
        let program = tail["*>".len()..].trim_start_matches('\n').to_string();

        let field = |key: &str| -> Result<String, String> {
            for line in head.lines() {
                let line = line.trim();
                if let Some(v) = line.strip_prefix(key) {
                    let v = v.trim_start();
                    if let Some(v) = v.strip_prefix(':') {
                        return Ok(v.trim().to_string());
                    }
                }
            }
            Err(format!("reproducer header is missing '{key}'"))
        };
        let uint = |key: &str, v: String| {
            v.parse::<u64>()
                .map_err(|_| format!("reproducer field '{key}' is not a number: '{v}'"))
        };

        let seed = uint("seed", field("seed")?)?;
        let case = uint("case", field("case")?)?;
        let vec_seed = uint("vec-seed", field("vec-seed")?)?;
        let oracle_name = field("oracle")?;
        let oracle = Oracle::from_name(&oracle_name)
            .ok_or_else(|| format!("unknown oracle '{oracle_name}' in reproducer header"))?;
        let code = field("code")?;
        let site = field("site")?;
        let top = field("top")?;
        let cycles = uint("cycles", field("cycles")?)? as u32;
        let vectors = uint("vectors", field("vectors")?)? as u32;
        let atpg_max = uint("atpg-max", field("atpg-max")?)? as usize;
        let chaos_name = field("chaos")?;
        let chaos = if chaos_name == "-" {
            None
        } else {
            Some(
                Oracle::from_name(&chaos_name)
                    .ok_or_else(|| format!("unknown chaos oracle '{chaos_name}'"))?,
            )
        };
        Ok((
            ReplayHeader {
                seed,
                case,
                vec_seed,
                oracle,
                code,
                site,
                top,
                cycles,
                vectors,
                atpg_max,
                chaos,
            },
            program,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReplayHeader {
        ReplayHeader {
            seed: 42,
            case: 17,
            vec_seed: 985777,
            oracle: Oracle::ScalarVsPacked,
            code: "Z301".to_string(),
            site: "o0@c3".to_string(),
            top: "c2".to_string(),
            cycles: 6,
            vectors: 8,
            atpg_max: 16,
            chaos: None,
        }
    }

    #[test]
    fn header_round_trips() {
        let h = sample();
        let text =
            h.render("TYPE c2 = COMPONENT (IN a: boolean; OUT o: boolean) IS\nBEGIN o := a END;\n");
        let (h2, program) = ReplayHeader::parse(&text).expect("parses");
        assert_eq!(h, h2);
        assert!(program.starts_with("TYPE c2"));
        // The header is a legal Zeus comment: the whole file parses.
        zeus::Zeus::parse(&text).expect("reproducer is valid Zeus source");
    }

    #[test]
    fn chaos_field_round_trips() {
        let mut h = sample();
        h.chaos = Some(Oracle::AtpgReplay);
        let text = h.render("X");
        let (h2, _) = ReplayHeader::parse(&text).expect("parses");
        assert_eq!(h2.chaos, Some(Oracle::AtpgReplay));
    }

    #[test]
    fn file_name_depends_only_on_signature() {
        let a = sample();
        let mut b = sample();
        b.seed = 999;
        b.case = 0;
        assert_eq!(a.file_name(), b.file_name());
        let mut c = sample();
        c.site = "o1@c0".to_string();
        assert_ne!(a.file_name(), c.file_name());
    }

    #[test]
    fn hostile_headers_error_without_panicking() {
        for bad in [
            "",
            "<* zeus-fuzz reproducer v1",
            "<* zeus-fuzz reproducer v1 *>",
            "<* zeus-fuzz reproducer v1\n   seed : x\n*>",
            "garbage",
        ] {
            assert!(ReplayHeader::parse(bad).is_err(), "{bad:?}");
        }
    }
}
