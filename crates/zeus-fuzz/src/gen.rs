//! Seeded grammar-based generator of well-typed Zeus programs.
//!
//! The generator builds [`zeus_syntax::ast`] trees directly — never raw
//! text — so every emitted program is well-formed by construction and
//! the canonical printer ([`zeus_syntax::print_program`]) turns it into
//! source that must round-trip through the real parser. Determinism is
//! absolute: the same `(seed, case)` pair produces the same program on
//! every run, platform and thread count, because the only entropy
//! source is the in-tree `StdRng` (xoshiro256**, splitmix-seeded).
//!
//! The grammar is a conservative, *semantically safe* subset of Zeus:
//!
//! * one `TYPE` section holding 1..=3 component definitions; the last
//!   one is the top,
//! * boolean and `ARRAY [1..w] OF boolean` ports (IN and OUT),
//! * single-assignment bodies: each local wire and each OUT bit has
//!   exactly one driver, built from `AND`/`OR`/`XOR`/`NAND`/`NOR`
//!   call expressions and prefix `NOT` over earlier-defined signals
//!   (no combinational cycles by construction),
//! * optional `REG` state with reset-clearable inputs
//!   (`r.in := AND(e, NOT RSET)`, the paper's counter idiom), so the
//!   post-reset state is defined in every engine,
//! * optional instantiation of a previously defined boolean-only
//!   component through a connection statement,
//! * optional `FOR` replication over same-width array ports.
//!
//! The *budget* knob of `zeusc fuzz` is the number of cases, not the
//! size of one case: each case derives its private RNG from
//! `(seed, case)` and draws a fresh program.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zeus_syntax::ast::{
    AssignOp, ComponentBody, ComponentType, ConstExpr, Decl, Expr, FParams, Ident, Mode, Program,
    Selector, Signal, SignalDef, SignalRef, Stmt, Type, TypeDef,
};
use zeus_syntax::Span;

/// How large one generated case may grow. `0` is minimal (one small
/// combinational component); higher classes unlock state, instances,
/// replication and wider ports. The CLI default is 2.
pub const DEFAULT_SIZE: u32 = 2;

/// A generated case: the AST, its printed form's top component name.
#[derive(Debug, Clone)]
pub struct GenProgram {
    /// The program tree (kept for the minimizer).
    pub program: Program,
    /// Name of the component type to elaborate.
    pub top: String,
}

/// Mixes the campaign seed and case index into one 64-bit stream seed.
/// `lane` separates independent consumers (generator vs input vectors)
/// so shrinking one never perturbs the other.
pub fn case_seed(seed: u64, case: u64, lane: u64) -> u64 {
    // splitmix64-style finalizer over the three inputs.
    let mut z = seed
        .wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(lane.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn ident(name: impl Into<String>) -> Ident {
    Ident::synthetic(name)
}

fn num(n: i64) -> ConstExpr {
    ConstExpr::Num(n, Span::dummy())
}

fn boolean() -> Type {
    Type::Named {
        name: ident("boolean"),
        args: Vec::new(),
    }
}

fn bool_array(width: i64) -> Type {
    Type::Array {
        lo: num(1),
        hi: num(width),
        elem: Box::new(boolean()),
        span: Span::dummy(),
    }
}

fn sig(base: &str, sels: Vec<Selector>) -> SignalRef {
    SignalRef {
        base: ident(base),
        sels,
        span: Span::dummy(),
    }
}

fn sig_expr(r: &SignalRef) -> Expr {
    Expr::Sig(r.clone())
}

/// One port of a generated component.
#[derive(Debug, Clone)]
struct GenPort {
    name: String,
    /// 0 = plain boolean, otherwise the array width.
    width: i64,
}

impl GenPort {
    fn ty(&self) -> Type {
        if self.width == 0 {
            boolean()
        } else {
            bool_array(self.width)
        }
    }

    /// All 1-bit references this port contributes to the operand pool.
    fn bit_refs(&self) -> Vec<SignalRef> {
        if self.width == 0 {
            vec![sig(&self.name, Vec::new())]
        } else {
            (1..=self.width)
                .map(|i| sig(&self.name, vec![Selector::Index(num(i))]))
                .collect()
        }
    }
}

/// Interface summary of an already-generated component, used when a
/// later component instantiates it.
#[derive(Debug, Clone)]
struct GenComponent {
    name: String,
    ins: Vec<GenPort>,
    outs: Vec<GenPort>,
}

impl GenComponent {
    /// Only boolean-only components are instantiated (keeps actual
    /// parameter lists trivially well-typed).
    fn instantiable(&self) -> bool {
        self.ins.iter().chain(&self.outs).all(|p| p.width == 0)
    }
}

const GATES: [&str; 5] = ["AND", "OR", "XOR", "NAND", "NOR"];

/// A random expression over the operand pool, at most `depth` gates deep.
fn gen_expr(rng: &mut StdRng, pool: &[SignalRef], depth: u32) -> Expr {
    if depth == 0 || pool.is_empty() || rng.gen_bool(0.35) {
        let r = &pool[rng.gen_range(0..pool.len())];
        return sig_expr(r);
    }
    if rng.gen_bool(0.2) {
        return Expr::Not(Box::new(gen_expr(rng, pool, depth - 1)), Span::dummy());
    }
    let gate = GATES[rng.gen_range(0..GATES.len())];
    let args = vec![
        gen_expr(rng, pool, depth - 1),
        gen_expr(rng, pool, depth - 1),
    ];
    Expr::Call {
        name: ident(gate),
        type_args: Vec::new(),
        args,
        span: Span::dummy(),
    }
}

/// `AND(e, NOT RSET)` — the reset-clearable register input idiom.
fn reset_clearable(e: Expr) -> Expr {
    let rset = Expr::Sig(sig("RSET", Vec::new()));
    Expr::Call {
        name: ident("AND"),
        type_args: Vec::new(),
        args: vec![e, Expr::Not(Box::new(rset), Span::dummy())],
        span: Span::dummy(),
    }
}

fn assign(lhs: SignalRef, rhs: Expr) -> Stmt {
    Stmt::Assign {
        lhs: Signal::Ref(lhs),
        op: AssignOp::Define,
        rhs,
        span: Span::dummy(),
    }
}

/// Generates one component, returning its TypeDef and interface.
fn gen_component(
    rng: &mut StdRng,
    name: &str,
    size: u32,
    earlier: &[GenComponent],
) -> (TypeDef, GenComponent) {
    let widths_allowed = size >= 1;
    let n_in = rng.gen_range(1..=3usize);
    let ins: Vec<GenPort> = (0..n_in)
        .map(|i| GenPort {
            name: format!("i{i}"),
            width: if widths_allowed && rng.gen_bool(0.3) {
                rng.gen_range(2..=4i64)
            } else {
                0
            },
        })
        .collect();
    let n_out = rng.gen_range(1..=2usize);
    let outs: Vec<GenPort> = (0..n_out)
        .map(|i| GenPort {
            name: format!("o{i}"),
            width: if widths_allowed && rng.gen_bool(0.25) {
                rng.gen_range(2..=3i64)
            } else {
                0
            },
        })
        .collect();

    // Operand pool: every input bit, then register outputs, then locals
    // as they acquire drivers (no forward references → no cycles).
    let mut pool: Vec<SignalRef> = ins.iter().flat_map(|p| p.bit_refs()).collect();

    let n_reg = if size >= 1 && rng.gen_bool(0.4) {
        rng.gen_range(1..=2usize)
    } else {
        0
    };
    for r in 0..n_reg {
        pool.push(sig(&format!("r{r}"), vec![Selector::Field(ident("out"))]));
    }

    let mut decls: Vec<SignalDef> = Vec::new();
    if n_reg > 0 {
        decls.push(SignalDef {
            names: (0..n_reg).map(|r| ident(format!("r{r}"))).collect(),
            ty: Type::Named {
                name: ident("REG"),
                args: Vec::new(),
            },
        });
    }

    let mut stmts: Vec<Stmt> = Vec::new();

    // Optional instance of an earlier boolean-only component.
    let candidates: Vec<&GenComponent> = earlier.iter().filter(|c| c.instantiable()).collect();
    if size >= 2 && !candidates.is_empty() && rng.gen_bool(0.5) {
        let inst_of = candidates[rng.gen_range(0..candidates.len())];
        decls.push(SignalDef {
            names: vec![ident("g0")],
            ty: Type::Named {
                name: ident(inst_of.name.clone()),
                args: Vec::new(),
            },
        });
        // IN actuals come from the current pool; OUT actuals are fresh
        // local wires that join the pool afterwards.
        let mut actuals: Vec<Expr> = Vec::new();
        for _ in &inst_of.ins {
            let r = &pool[rng.gen_range(0..pool.len())];
            actuals.push(sig_expr(r));
        }
        let mut fresh = Vec::new();
        for (j, _) in inst_of.outs.iter().enumerate() {
            let w = sig(&format!("t{j}"), Vec::new());
            actuals.push(sig_expr(&w));
            fresh.push(w);
        }
        decls.push(SignalDef {
            names: fresh.iter().map(|w| w.base.clone()).collect(),
            ty: boolean(),
        });
        stmts.push(Stmt::Connection {
            target: sig("g0", Vec::new()),
            args: Some(Expr::Tuple(actuals, Span::dummy())),
            span: Span::dummy(),
        });
        pool.extend(fresh);
    }

    // Local wires, each driven once, joining the pool in order.
    let n_local = rng.gen_range(0..=3usize);
    if n_local > 0 {
        decls.push(SignalDef {
            names: (0..n_local).map(|l| ident(format!("w{l}"))).collect(),
            ty: boolean(),
        });
        for l in 0..n_local {
            let w = sig(&format!("w{l}"), Vec::new());
            let rhs = gen_expr(rng, &pool, 2);
            stmts.push(assign(w.clone(), rhs));
            pool.push(w);
        }
    }

    // Register inputs: reset-clearable so the post-reset state is
    // defined, and self-feeding (`OR(e, r.out)`) so every register's
    // `out` port is provably used — Zeus rejects instances with open
    // unconnected ports.
    for r in 0..n_reg {
        let lhs = sig(&format!("r{r}"), vec![Selector::Field(ident("in"))]);
        let own_out = sig_expr(&sig(&format!("r{r}"), vec![Selector::Field(ident("out"))]));
        let fed = Expr::Call {
            name: ident("OR"),
            type_args: Vec::new(),
            args: vec![gen_expr(rng, &pool, 2), own_out],
            span: Span::dummy(),
        };
        stmts.push(assign(lhs, reset_clearable(fed)));
    }

    // Every OUT bit gets exactly one driver. Same-width array-in /
    // array-out pairs may use a FOR replication instead.
    for out in &outs {
        if out.width == 0 {
            stmts.push(assign(sig(&out.name, Vec::new()), gen_expr(rng, &pool, 2)));
            continue;
        }
        let matching: Vec<&GenPort> = ins.iter().filter(|p| p.width == out.width).collect();
        if size >= 1 && !matching.is_empty() && rng.gen_bool(0.5) {
            let src = matching[rng.gen_range(0..matching.len())];
            let i = ident("i");
            let idx = ConstExpr::Name(i.clone());
            let body = vec![assign(
                sig(&out.name, vec![Selector::Index(idx.clone())]),
                Expr::Not(
                    Box::new(sig_expr(&sig(&src.name, vec![Selector::Index(idx)]))),
                    Span::dummy(),
                ),
            )];
            stmts.push(Stmt::For {
                var: i,
                from: num(1),
                to: num(out.width),
                downto: false,
                sequentially: false,
                body,
                span: Span::dummy(),
            });
        } else {
            for b in 1..=out.width {
                stmts.push(assign(
                    sig(&out.name, vec![Selector::Index(num(b))]),
                    gen_expr(rng, &pool, 2),
                ));
            }
        }
    }

    let mut params = Vec::new();
    for p in &ins {
        params.push(FParams {
            mode: Mode::In,
            names: vec![ident(p.name.clone())],
            ty: p.ty(),
        });
    }
    for p in &outs {
        params.push(FParams {
            mode: Mode::Out,
            names: vec![ident(p.name.clone())],
            ty: p.ty(),
        });
    }

    let body = ComponentBody {
        uses: None,
        decls: if decls.is_empty() {
            Vec::new()
        } else {
            vec![Decl::Signal(decls)]
        },
        layout: Vec::new(),
        stmts,
    };
    let def = TypeDef {
        name: ident(name),
        params: Vec::new(),
        ty: Type::Component(Box::new(ComponentType {
            params,
            header_layout: Vec::new(),
            result: None,
            body: Some(body),
            span: Span::dummy(),
        })),
    };
    let iface = GenComponent {
        name: name.to_string(),
        ins,
        outs,
    };
    (def, iface)
}

/// Generates the program for one fuzz case.
pub fn generate(seed: u64, case: u64, size: u32) -> GenProgram {
    let mut rng = StdRng::seed_from_u64(case_seed(seed, case, 0));
    let n_comps = 1 + rng.gen_range(0..=size.min(2)) as usize;
    let mut defs = Vec::new();
    let mut comps: Vec<GenComponent> = Vec::new();
    for k in 0..n_comps {
        let name = format!("c{k}");
        let (def, iface) = gen_component(&mut rng, &name, size, &comps);
        defs.push(def);
        comps.push(iface);
    }
    let top = comps.last().expect("at least one component").name.clone();
    GenProgram {
        program: Program {
            decls: vec![Decl::Type(defs)],
        },
        top,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_syntax::print_program;

    #[test]
    fn generation_is_deterministic() {
        for case in 0..16 {
            let a = generate(42, case, DEFAULT_SIZE);
            let b = generate(42, case, DEFAULT_SIZE);
            assert_eq!(print_program(&a.program), print_program(&b.program));
            assert_eq!(a.top, b.top);
        }
    }

    #[test]
    fn different_cases_differ() {
        let a = print_program(&generate(42, 0, DEFAULT_SIZE).program);
        let b = print_program(&generate(42, 1, DEFAULT_SIZE).program);
        assert_ne!(a, b, "case index must perturb the program");
    }

    #[test]
    fn generated_programs_parse_check_and_elaborate() {
        for case in 0..32 {
            let g = generate(7, case, DEFAULT_SIZE);
            let text = print_program(&g.program);
            let z = zeus::Zeus::parse(&text)
                .unwrap_or_else(|e| panic!("case {case} does not re-parse:\n{text}\n{e}"));
            z.elaborate(&g.top, &[])
                .unwrap_or_else(|e| panic!("case {case} does not elaborate:\n{text}\n{e}"));
        }
    }
}
