//! Delta-debugging minimizer.
//!
//! Shrinks a failing program while preserving its failure *signature*
//! (oracle + Z-code + divergence site — see
//! [`Finding::signature`](crate::oracle::Finding::signature)). The
//! caller supplies the predicate; this module only enumerates candidate
//! edits and drives the greedy first-improvement loop, so it stays
//! byte-deterministic: candidates are tried in a fixed structural order
//! and the first one that still fails with the same signature wins each
//! round.
//!
//! Candidate edits, coarse to fine:
//!
//! 1. drop a whole `TYPE` definition,
//! 2. drop a statement (recursing into `FOR` bodies),
//! 3. inline an instance (replace a connection statement with a direct
//!    assignment of its first actual to its last),
//! 4. drop a `SIGNAL` declaration, or one name from a multi-name one,
//! 5. narrow an array bound (`[1..4]` → `[1..1]`, then `[1..3]`),
//! 6. hoist a subexpression over its operator (`AND(a,b)` → `a`,
//!    `NOT a` → `a`).
//!
//! Invalid candidates need no special casing: a program that no longer
//! parses or elaborates produces a *different* signature when re-run,
//! so the predicate rejects it.

use zeus_syntax::ast::{
    AssignOp, ComponentBody, ConstExpr, Decl, Expr, Program, Signal, Stmt, Type,
};
use zeus_syntax::Span;

/// Greedy first-improvement delta debugging. Applies the first
/// candidate edit that `keeps_failing` accepts, restarts from the
/// smaller program, and stops when a full round yields nothing or
/// `max_evals` predicate calls have been spent.
pub fn minimize(
    program: &Program,
    max_evals: u32,
    keeps_failing: &mut dyn FnMut(&Program) -> bool,
) -> Program {
    let mut best = program.clone();
    let mut evals = 0u32;
    'outer: loop {
        for cand in shrink_candidates(&best) {
            if evals >= max_evals {
                break 'outer;
            }
            evals += 1;
            if keeps_failing(&cand) {
                best = cand;
                continue 'outer;
            }
        }
        break;
    }
    best
}

/// All single-step shrink candidates of `p`, in a fixed order.
pub fn shrink_candidates(p: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    drop_typedefs(p, &mut out);
    edit_bodies(p, &mut out, &mut drop_stmt_candidates);
    edit_bodies(p, &mut out, &mut inline_instance_candidates);
    edit_bodies(p, &mut out, &mut drop_signal_candidates);
    narrow_widths(p, &mut out);
    edit_bodies(p, &mut out, &mut hoist_expr_candidates);
    out
}

/// Drops one `TYPE` definition at a time (only when more than one
/// exists somewhere — an empty program can't reproduce anything).
fn drop_typedefs(p: &Program, out: &mut Vec<Program>) {
    let total: usize = p
        .decls
        .iter()
        .map(|d| match d {
            Decl::Type(defs) => defs.len(),
            _ => 0,
        })
        .sum();
    if total <= 1 {
        return;
    }
    for (di, d) in p.decls.iter().enumerate() {
        let Decl::Type(defs) = d else { continue };
        for ti in 0..defs.len() {
            let mut q = p.clone();
            let Decl::Type(defs) = &mut q.decls[di] else {
                unreachable!()
            };
            defs.remove(ti);
            out.push(q);
        }
    }
}

/// Runs `f` over every component body, collecting one candidate program
/// per edit `f` reports. `f` receives the body and pushes edited copies
/// of it; this wrapper splices each copy back into a clone of `p`.
fn edit_bodies(
    p: &Program,
    out: &mut Vec<Program>,
    f: &mut dyn FnMut(&ComponentBody, &mut Vec<ComponentBody>),
) {
    for (di, d) in p.decls.iter().enumerate() {
        let Decl::Type(defs) = d else { continue };
        for (ti, def) in defs.iter().enumerate() {
            let Type::Component(ct) = &def.ty else {
                continue;
            };
            let Some(body) = &ct.body else { continue };
            let mut edited = Vec::new();
            f(body, &mut edited);
            for b in edited {
                let mut q = p.clone();
                let Decl::Type(defs) = &mut q.decls[di] else {
                    unreachable!()
                };
                let Type::Component(ct) = &mut defs[ti].ty else {
                    unreachable!()
                };
                ct.body = Some(b);
                out.push(q);
            }
        }
    }
}

/// Paths of every statement, depth-first, recursing into `FOR` bodies.
fn stmt_paths(stmts: &[Stmt], prefix: &[usize], out: &mut Vec<Vec<usize>>) {
    for (i, s) in stmts.iter().enumerate() {
        let mut path = prefix.to_vec();
        path.push(i);
        if let Stmt::For { body, .. } = s {
            stmt_paths(body, &path, out);
        }
        out.push(path);
    }
}

fn stmt_at_mut<'a>(stmts: &'a mut Vec<Stmt>, path: &[usize]) -> Option<&'a mut Vec<Stmt>> {
    if path.len() == 1 {
        return Some(stmts);
    }
    match &mut stmts[path[0]] {
        Stmt::For { body, .. } => stmt_at_mut(body, &path[1..]),
        _ => None,
    }
}

fn drop_stmt_candidates(body: &ComponentBody, out: &mut Vec<ComponentBody>) {
    let mut paths = Vec::new();
    stmt_paths(&body.stmts, &[], &mut paths);
    for path in paths {
        let mut b = body.clone();
        if let Some(list) = stmt_at_mut(&mut b.stmts, &path) {
            list.remove(*path.last().expect("non-empty path"));
            out.push(b);
        }
    }
}

/// Replaces `g0(a, ..., t)` with `t := a`: severs the instance while
/// keeping its last actual (an output wire in generated programs)
/// driven, so downstream readers stay legal.
fn inline_instance_candidates(body: &ComponentBody, out: &mut Vec<ComponentBody>) {
    for (i, s) in body.stmts.iter().enumerate() {
        let Stmt::Connection {
            args: Some(Expr::Tuple(actuals, _)),
            ..
        } = s
        else {
            continue;
        };
        if actuals.len() < 2 {
            continue;
        }
        let Expr::Sig(last) = actuals.last().expect("len >= 2") else {
            continue;
        };
        let mut b = body.clone();
        b.stmts[i] = Stmt::Assign {
            lhs: Signal::Ref(last.clone()),
            op: AssignOp::Define,
            rhs: actuals[0].clone(),
            span: Span::dummy(),
        };
        out.push(b);
    }
}

fn drop_signal_candidates(body: &ComponentBody, out: &mut Vec<ComponentBody>) {
    for (di, d) in body.decls.iter().enumerate() {
        let Decl::Signal(defs) = d else { continue };
        for (si, def) in defs.iter().enumerate() {
            // Drop the whole declaration line.
            let mut b = body.clone();
            let Decl::Signal(defs) = &mut b.decls[di] else {
                unreachable!()
            };
            defs.remove(si);
            if defs.is_empty() {
                b.decls.remove(di);
            }
            out.push(b);
            // Drop one name from a multi-name line.
            if def.names.len() > 1 {
                for ni in 0..def.names.len() {
                    let mut b = body.clone();
                    let Decl::Signal(defs) = &mut b.decls[di] else {
                        unreachable!()
                    };
                    defs[si].names.remove(ni);
                    out.push(b);
                }
            }
        }
    }
}

/// Collects every `ARRAY [Num..Num]` site (params and locals) and emits
/// one candidate per site per narrowing step: first collapse to the low
/// bound, then shave one element.
fn narrow_widths(p: &Program, out: &mut Vec<Program>) {
    let sites = count_array_sites(p);
    for site in 0..sites {
        for collapse in [true, false] {
            let mut q = p.clone();
            let mut k = 0usize;
            let mut changed = false;
            visit_types_mut(&mut q, &mut |ty| {
                if let Type::Array { lo, hi, .. } = ty {
                    if let (ConstExpr::Num(l, _), ConstExpr::Num(h, hs)) = (&*lo, &mut *hi) {
                        if *h > *l {
                            if k == site {
                                *h = if collapse { *l } else { *h - 1 };
                                let _ = hs;
                                changed = true;
                            }
                            k += 1;
                        }
                    }
                }
            });
            if changed {
                out.push(q);
            }
        }
    }
}

fn count_array_sites(p: &Program) -> usize {
    let mut q = p.clone();
    let mut k = 0usize;
    visit_types_mut(&mut q, &mut |ty| {
        if let Type::Array { lo, hi, .. } = ty {
            if let (ConstExpr::Num(l, _), ConstExpr::Num(h, _)) = (&*lo, &*hi) {
                if *h > *l {
                    k += 1;
                }
            }
        }
    });
    k
}

/// Visits every type node in the program, including array elements and
/// component parameter/local types, in declaration order.
fn visit_types_mut(p: &mut Program, f: &mut dyn FnMut(&mut Type)) {
    fn visit_ty(ty: &mut Type, f: &mut dyn FnMut(&mut Type)) {
        f(ty);
        match ty {
            Type::Array { elem, .. } => visit_ty(elem, f),
            Type::Component(ct) => {
                for param in &mut ct.params {
                    visit_ty(&mut param.ty, f);
                }
                if let Some(body) = &mut ct.body {
                    visit_decls(&mut body.decls, f);
                }
            }
            _ => {}
        }
    }
    fn visit_decls(decls: &mut [Decl], f: &mut dyn FnMut(&mut Type)) {
        for d in decls {
            match d {
                Decl::Type(defs) => {
                    for def in defs {
                        visit_ty(&mut def.ty, f);
                    }
                }
                Decl::Signal(defs) => {
                    for def in defs {
                        visit_ty(&mut def.ty, f);
                    }
                }
                Decl::Const(_) => {}
            }
        }
    }
    visit_decls(&mut p.decls, f);
}

/// `AND(a,b) := …` right-hand sides shrink toward their first operand;
/// `NOT e` unwraps. One candidate per assignment with a shrinkable rhs.
fn hoist_expr_candidates(body: &ComponentBody, out: &mut Vec<ComponentBody>) {
    let mut paths = Vec::new();
    stmt_paths(&body.stmts, &[], &mut paths);
    for path in paths {
        let mut b = body.clone();
        let Some(list) = stmt_at_mut(&mut b.stmts, &path) else {
            continue;
        };
        let idx = *path.last().expect("non-empty path");
        let Stmt::Assign { rhs, .. } = &mut list[idx] else {
            continue;
        };
        let smaller = match rhs {
            Expr::Call { args, .. } if !args.is_empty() => args[0].clone(),
            Expr::Not(inner, _) => (**inner).clone(),
            _ => continue,
        };
        *rhs = smaller;
        out.push(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, DEFAULT_SIZE};
    use zeus_syntax::print_program;

    #[test]
    fn candidates_are_deterministic_and_strictly_smaller_or_equal() {
        let g = generate(3, 5, DEFAULT_SIZE);
        let a = shrink_candidates(&g.program);
        let b = shrink_candidates(&g.program);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(print_program(x), print_program(y));
        }
        assert!(!a.is_empty(), "a generated program offers shrink steps");
    }

    #[test]
    fn minimize_reaches_a_local_minimum_under_a_text_predicate() {
        // Predicate: "the text still mentions o0". The minimizer must
        // keep shrinking while preserving it, deterministically.
        let g = generate(11, 2, DEFAULT_SIZE);
        let mut pred = |p: &Program| print_program(p).contains("o0");
        let small = minimize(&g.program, 512, &mut pred);
        let small2 = minimize(&g.program, 512, &mut pred);
        assert_eq!(print_program(&small), print_program(&small2));
        assert!(print_program(&small).len() <= print_program(&g.program).len());
        assert!(print_program(&small).contains("o0"));
    }
}
