//! `VectorSet::parse` must be total over hostile text: any input — a
//! truncated file, injected whitespace, raw ASCII noise — yields either
//! a parsed set or a `Z301`-coded diagnostic. A panic is a bug (the
//! daemon and the fuzzer both feed this parser attacker-shaped bytes).

use proptest::prelude::*;
use zeus_sim::VectorSet;
use zeus_syntax::diag::codes;

/// A well-formed two-port, three-vector file to mutate.
const GOOD: &str = "zeus-vectors v1 top=t seed=42\nports a:1 b:3\n0 101\n1 UZ0\n# note\nU 111\n";

/// The property every input must satisfy: parse returns, and an error
/// carries the simulator format code — never a bare or foreign code.
fn parses_totally(input: &str) {
    match VectorSet::parse(input) {
        Ok(set) => {
            // A successful parse must re-serialize without panicking.
            let _ = set.to_text();
        }
        Err(d) => assert_eq!(
            d.code,
            Some(codes::SIM),
            "malformed vector text produced a non-Z301 error for {input:?}"
        ),
    }
}

/// Every prefix of a valid file — a write cut short at any byte — is
/// exhaustively checked, not sampled: truncation is the most likely
/// real-world corruption and the cheapest to cover completely.
#[test]
fn every_truncation_of_a_valid_file_is_handled() {
    for cut in 0..=GOOD.len() {
        parses_totally(&GOOD[..cut]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Raw printable-ASCII noise (plus newlines and tabs).
    #[test]
    fn ascii_noise_never_panics(input in "[ -~\n\t]{0,160}") {
        parses_totally(&input);
    }

    /// Noise that keeps the magic header, exercising the field, port
    /// and vector line parsers rather than bailing at the magic check.
    #[test]
    fn noise_behind_a_valid_magic_never_panics(tail in "[ -~\n\t]{0,120}") {
        parses_totally(&format!("zeus-vectors v1 {tail}"));
        parses_totally(&format!("zeus-vectors v1 top=t seed=0\n{tail}"));
        parses_totally(&format!("zeus-vectors v1 top=t seed=0\nports a:2\n{tail}"));
    }

    /// Hostile whitespace: splice runs of spaces, tabs, CR and LF into
    /// a valid file at a random position. CRLF line endings in
    /// particular must not slip a `\r` into a bit group silently.
    #[test]
    fn whitespace_injection_never_panics(
        at in 0usize..=GOOD.len(),
        ws in "[ \t\r\n]{1,6}",
    ) {
        let mut text = String::with_capacity(GOOD.len() + ws.len());
        text.push_str(&GOOD[..at]);
        text.push_str(&ws);
        text.push_str(&GOOD[at..]);
        parses_totally(&text);
    }

    /// Truncation composed with a corrupted tail byte, covering torn
    /// writes that also flipped the last landed character.
    #[test]
    fn truncation_with_corrupt_tail_never_panics(
        cut in 0usize..GOOD.len(),
        junk in "[ -~]{1,3}",
    ) {
        parses_totally(&format!("{}{junk}", &GOOD[..cut]));
    }
}
