//! Exhaustive combinational equivalence checking.
//!
//! The paper asserts equivalences between formulations ("is equivalent to
//! (if length = 4)" for the two ripple-carry adders; the iterative and
//! recursive binary trees). This module mechanizes such claims for
//! combinational designs by exhausting the input space.

use crate::vectors::VectorStream;
use crate::Simulator;
use zeus_elab::{Design, Limits};
use zeus_sema::value::Value;
use zeus_syntax::diag::{codes, Diagnostic};
use zeus_syntax::span::Span;

/// A disproof of equivalence: the input assignment and the first output
/// port on which the designs disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterExample {
    /// `(port name, forced bits LSB-first)` for every IN port.
    pub inputs: Vec<(String, Vec<Value>)>,
    /// The output port that differs.
    pub port: String,
    /// The two observed values (design a, design b).
    pub got: (Vec<Value>, Vec<Value>),
}

impl std::fmt::Display for CounterExample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "designs differ on '{}' for", self.port)?;
        for (name, bits) in &self.inputs {
            write!(f, " {name}=")?;
            for b in bits {
                write!(f, "{b}")?;
            }
        }
        write!(f, ": ")?;
        for b in &self.got.0 {
            write!(f, "{b}")?;
        }
        write!(f, " vs ")?;
        for b in &self.got.1 {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

/// Checks two combinational designs for exhaustive input/output
/// equivalence. The designs must have identically named and sized IN and
/// OUT ports.
///
/// Returns `Ok(None)` when equivalent, `Ok(Some(ce))` with a counter
/// example otherwise.
///
/// # Errors
///
/// Returns a diagnostic when the interfaces differ, a design contains
/// registers (sequential equivalence is out of scope), or the total
/// input width exceeds `max_input_bits` (default cap callers should pass:
/// 20 → about a million vectors).
pub fn check_equivalent(
    a: &Design,
    b: &Design,
    max_input_bits: u32,
) -> Result<Option<CounterExample>, Diagnostic> {
    let limits = Limits {
        max_input_bits,
        ..Limits::default()
    };
    check_equivalent_with(a, b, &limits)
}

/// Like [`check_equivalent`], but governed by a full [`Limits`] budget:
/// the input cap comes from `limits.max_input_bits` (violations are tagged
/// `Z909`), and each simulated input vector charges fuel and checks the
/// deadline, so a large exhaustive sweep can be cancelled mid-flight.
///
/// # Errors
///
/// See [`check_equivalent`]; additionally `Z904`/`Z905` when the fuel or
/// deadline budget runs out during the sweep.
pub fn check_equivalent_with(
    a: &Design,
    b: &Design,
    limits: &Limits,
) -> Result<Option<CounterExample>, Diagnostic> {
    let max_input_bits = limits.max_input_bits;
    let err = |msg: String| Diagnostic::error(Span::dummy(), msg);
    if a.netlist.registers().count() != 0 || b.netlist.registers().count() != 0 {
        return Err(err(
            "equivalence checking is combinational only (designs contain registers)".into(),
        ));
    }
    let ins_a: Vec<_> = a.inputs().collect();
    let ins_b: Vec<_> = b.inputs().collect();
    let outs_a: Vec<_> = a.outputs().collect();
    let outs_b: Vec<_> = b.outputs().collect();
    if ins_a.len() != ins_b.len() || outs_a.len() != outs_b.len() {
        return Err(err("designs have different port counts".into()));
    }
    for (pa, pb) in ins_a.iter().zip(&ins_b).chain(outs_a.iter().zip(&outs_b)) {
        if pa.name != pb.name || pa.width() != pb.width() {
            return Err(err(format!(
                "port mismatch: {}[{}] vs {}[{}]",
                pa.name,
                pa.width(),
                pb.name,
                pb.width()
            )));
        }
    }
    let total_bits: usize = ins_a.iter().map(|p| p.width()).sum();
    if total_bits as u32 > max_input_bits {
        return Err(err(format!(
            "{total_bits} input bits exceed the exhaustive cap of {max_input_bits}"
        ))
        .with_code(codes::LIMIT_INPUT_BITS));
    }
    let in_names: Vec<(String, usize)> =
        ins_a.iter().map(|p| (p.name.clone(), p.width())).collect();
    let out_names: Vec<String> = outs_a.iter().map(|p| p.name.clone()).collect();

    let mut sa = Simulator::new(a.clone()).map_err(|e| err(e.to_string()))?;
    let mut sb = Simulator::new(b.clone()).map_err(|e| err(e.to_string()))?;
    let mut gov = limits.governor();
    for vector in 0u64..(1u64 << total_bits) {
        gov.charge(1, Span::dummy())?;
        let mut offset = 0usize;
        let mut assignment = Vec::with_capacity(in_names.len());
        for (name, width) in &in_names {
            let bits: Vec<Value> = (0..*width)
                .map(|i| Value::from_bool((vector >> (offset + i)) & 1 == 1))
                .collect();
            sa.set_port(name, &bits).map_err(|e| err(e.to_string()))?;
            sb.set_port(name, &bits).map_err(|e| err(e.to_string()))?;
            assignment.push((name.clone(), bits));
            offset += width;
        }
        sa.step();
        sb.step();
        for name in &out_names {
            let (va, vb) = (sa.port(name), sb.port(name));
            if va != vb {
                return Ok(Some(CounterExample {
                    inputs: assignment,
                    port: name.clone(),
                    got: (va, vb),
                }));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_elab::elaborate;
    use zeus_syntax::parse_program;

    fn design(src: &str, top: &str, args: &[i64]) -> Design {
        elaborate(&parse_program(src).unwrap(), top, args).unwrap()
    }

    const ADDERS: &str = "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS \
         BEGIN s := XOR(a,b); cout := AND(a,b) END; \
         sum2 = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS \
         BEGIN s := AND(OR(a,b), NAND(a,b)); cout := AND(a,b) END; \
         broken = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS \
         BEGIN s := OR(a,b); cout := AND(a,b) END;";

    #[test]
    fn equivalent_formulations_verify() {
        let a = design(ADDERS, "halfadder", &[]);
        let b = design(ADDERS, "sum2", &[]);
        assert_eq!(check_equivalent(&a, &b, 20).unwrap(), None);
    }

    #[test]
    fn inequivalence_yields_counterexample() {
        let a = design(ADDERS, "halfadder", &[]);
        let b = design(ADDERS, "broken", &[]);
        let ce = check_equivalent(&a, &b, 20).unwrap().expect("differs");
        assert_eq!(ce.port, "s");
        // OR differs from XOR exactly on a=b=1.
        assert!(ce.inputs.iter().all(|(_, bits)| bits == &vec![Value::One]));
        assert!(!ce.to_string().is_empty());
    }

    #[test]
    fn interface_mismatch_is_an_error() {
        let a = design(ADDERS, "halfadder", &[]);
        let b = design(
            "TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS BEGIN s := a END;",
            "t",
            &[],
        );
        assert!(check_equivalent(&a, &b, 20).is_err());
    }

    #[test]
    fn sequential_designs_are_rejected() {
        let a = design(
            "TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
             SIGNAL r: REG; BEGIN r(a, s) END;",
            "t",
            &[],
        );
        assert!(check_equivalent(&a, &a, 20).is_err());
    }

    #[test]
    fn input_cap_is_enforced() {
        let a = design(
            "TYPE t = COMPONENT (IN a: ARRAY[1..30] OF boolean; OUT s: boolean) IS \
             BEGIN s := a[1] END;",
            "t",
            &[],
        );
        assert!(check_equivalent(&a, &a, 20).is_err());
    }
}

/// The first observed disagreement between two simulators driven with the
/// same input stream: which cycle, which OUT port, under which inputs.
///
/// This is the sequential analogue of [`CounterExample`]; fault campaigns
/// use it to pin a fault's detection cycle and observation point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Zero-based cycle (of the differential run) in which the outputs
    /// first differed.
    pub cycle: u64,
    /// The output port that differs.
    pub port: String,
    /// `(port name, forced bits LSB-first)` driven in that cycle.
    pub inputs: Vec<(String, Vec<Value>)>,
    /// The two observed values (simulator a, simulator b).
    pub got: (Vec<Value>, Vec<Value>),
}

/// Runs two simulators in lock-step on the same [`VectorStream`] for up
/// to `cycles` cycles, comparing every OUT port of `sa`'s design after
/// each cycle. Returns the first [`Divergence`], or `None` when the pair
/// agreed throughout.
///
/// Both simulators advance via [`Simulator::try_step`], so each one's
/// [`Limits`] budget is honored — a hyperactive faulty circuit runs out
/// of fuel instead of hanging the campaign.
///
/// # Errors
///
/// Propagates budget diagnostics (`Z904`/`Z905`/`Z908`) and port-shape
/// mismatches between the stream and the designs.
pub fn run_differential(
    sa: &mut Simulator,
    sb: &mut Simulator,
    stream: &mut VectorStream,
    cycles: u32,
) -> Result<Option<Divergence>, Diagnostic> {
    let err = |msg: String| Diagnostic::error(Span::dummy(), msg);
    let out_names: Vec<String> = sa.design().outputs().map(|p| p.name.clone()).collect();
    for cycle in 0..cycles {
        let assignment = stream.next_vector();
        for (name, bits) in &assignment {
            sa.set_port(name, bits).map_err(|e| err(e.to_string()))?;
            sb.set_port(name, bits).map_err(|e| err(e.to_string()))?;
        }
        sa.try_step()?;
        sb.try_step()?;
        for name in &out_names {
            let (va, vb) = (sa.port(name), sb.port(name));
            if va != vb {
                return Ok(Some(Divergence {
                    cycle: cycle as u64,
                    port: name.clone(),
                    inputs: assignment,
                    got: (va, vb),
                }));
            }
        }
    }
    Ok(None)
}

/// Sequential equivalence by random bounded simulation: both designs are
/// reset (RSET high for `reset_cycles`), then driven with the same
/// pseudo-random input streams for `cycles` cycles per trial; all OUT
/// ports must agree every cycle.
///
/// This is a falsifier, not a proof — it catches divergence with high
/// probability for the register counts Zeus programs have.
///
/// Returns `Ok(None)` when no divergence was observed.
///
/// # Errors
///
/// Returns a diagnostic when the interfaces differ.
pub fn check_equivalent_sequential(
    a: &Design,
    b: &Design,
    trials: u32,
    cycles: u32,
    seed: u64,
) -> Result<Option<CounterExample>, Diagnostic> {
    let err = |msg: String| Diagnostic::error(Span::dummy(), msg);
    let ins_a: Vec<_> = a.inputs().collect();
    let ins_b: Vec<_> = b.inputs().collect();
    if ins_a.len() != ins_b.len() {
        return Err(err("designs have different input ports".into()));
    }
    for (pa, pb) in ins_a.iter().zip(&ins_b) {
        if pa.name != pb.name || pa.width() != pb.width() {
            return Err(err(format!(
                "input port mismatch: {} vs {}",
                pa.name, pb.name
            )));
        }
    }
    // One stream across all trials: each trial resets the circuits but
    // continues the pseudo-random input sequence, so trials explore
    // different behavior.
    let mut stream = VectorStream::new(a, seed);
    for _ in 0..trials {
        let mut sa = Simulator::new(a.clone()).map_err(|e| err(e.to_string()))?;
        let mut sb = Simulator::new(b.clone()).map_err(|e| err(e.to_string()))?;
        sa.set_rset(true);
        sb.set_rset(true);
        for (name, bits) in stream.zero_vector() {
            let _ = sa.set_port(&name, &bits);
            let _ = sb.set_port(&name, &bits);
        }
        sa.step();
        sb.step();
        sa.set_rset(false);
        sb.set_rset(false);
        if let Some(d) = run_differential(&mut sa, &mut sb, &mut stream, cycles)? {
            return Ok(Some(CounterExample {
                inputs: d.inputs,
                port: d.port,
                got: d.got,
            }));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod seq_tests {
    use super::*;
    use zeus_elab::elaborate;
    use zeus_syntax::parse_program;

    fn design(src: &str, top: &str) -> Design {
        elaborate(&parse_program(src).unwrap(), top, &[]).unwrap()
    }

    const TOGGLERS: &str = "TYPE t1 = COMPONENT (IN en: boolean; OUT q: boolean) IS \
         SIGNAL r: REG; \
         BEGIN IF RSET THEN r.in := 0 \
               ELSIF en THEN r.in := NOT r.out END; q := r.out END; \
         t2 = COMPONENT (IN en: boolean; OUT q: boolean) IS \
         SIGNAL r: REG; \
         BEGIN r.in := AND(XOR(r.out, en), NOT RSET); q := r.out END; \
         t3 = COMPONENT (IN en: boolean; OUT q: boolean) IS \
         SIGNAL r: REG; \
         BEGIN r.in := AND(OR(r.out, en), NOT RSET); q := r.out END;";

    #[test]
    fn equivalent_togglers_pass() {
        let a = design(TOGGLERS, "t1");
        let b = design(TOGGLERS, "t2");
        assert_eq!(check_equivalent_sequential(&a, &b, 4, 64, 1).unwrap(), None);
    }

    #[test]
    fn divergent_state_machines_are_caught() {
        let a = design(TOGGLERS, "t1");
        let b = design(TOGGLERS, "t3"); // sticky, not toggling
        let ce = check_equivalent_sequential(&a, &b, 4, 64, 1)
            .unwrap()
            .expect("divergence");
        assert_eq!(ce.port, "q");
    }
}
