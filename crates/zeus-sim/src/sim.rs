//! The Zeus simulator (§8).
//!
//! The semantics of Zeus are defined by a simulator over the semantics
//! graph: signal values propagate by firing rules over the four-valued
//! domain; registers latch at the end of each clock cycle; and at runtime
//! "at most one (0,1,UNDEF)-assignment" may be active per signal — the
//! check that "safeguards against burning transistors".
//!
//! This implementation evaluates the combinational nodes once per cycle
//! in a topological order (computed once), which realizes the firing
//! rules deterministically: "there are many ways of propagating the
//! signals sequentially; however all will lead to the same result".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use zeus_elab::{Design, Fault, FaultKind, Governor, Limits, NetId, NodeId, NodeOp};
use zeus_sema::value::{self, Value};
use zeus_syntax::diag::{codes, Diagnostic};
use zeus_syntax::span::Span;

/// Shared budget bookkeeping for the budgeted (`try_*`) stepping APIs of
/// both simulators: a step counter against `Limits::max_steps` plus the
/// fuel/deadline governor.
#[derive(Debug, Clone)]
pub(crate) struct StepBudget {
    max_steps: Option<u64>,
    steps: u64,
    gov: Governor,
}

impl StepBudget {
    pub(crate) fn new(limits: &Limits) -> StepBudget {
        StepBudget {
            max_steps: limits.max_steps,
            steps: 0,
            gov: limits.governor(),
        }
    }

    /// Pre-cycle check: step budget and deadline.
    pub(crate) fn begin_cycle(&mut self) -> Result<(), Diagnostic> {
        if let Some(max) = self.max_steps {
            if self.steps >= max {
                return Err(Diagnostic::error(
                    Span::dummy(),
                    format!(
                        "simulation step budget exhausted (limit {max} cycles); raise \
                         the step limit to continue"
                    ),
                )
                .with_code(codes::LIMIT_STEPS));
            }
        }
        self.steps += 1;
        self.gov.check_deadline(Span::dummy())
    }

    /// Post-cycle accounting: one fuel unit per node evaluation.
    pub(crate) fn charge_work(&mut self, evals: u64) -> Result<(), Diagnostic> {
        self.gov.charge(evals + 1, Span::dummy())
    }
}

/// A runtime violation of the single-active-assignment rule (§8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The clock cycle in which the conflict occurred.
    pub cycle: u64,
    /// The conflicting net.
    pub net: NetId,
    /// Its hierarchical name.
    pub name: String,
    /// How many active assignments were simultaneously live.
    pub active: u32,
}

/// Result of simulating one clock cycle.
#[derive(Debug, Clone, Default)]
pub struct CycleReport {
    /// The cycle number just completed (starting at 0).
    pub cycle: u64,
    /// Runtime single-assignment violations detected this cycle.
    pub conflicts: Vec<Conflict>,
}

impl CycleReport {
    /// True when no runtime check fired.
    pub fn is_clean(&self) -> bool {
        self.conflicts.is_empty()
    }
}

/// The reference Zeus simulator: full levelized evaluation per cycle.
#[derive(Debug, Clone)]
pub struct Simulator {
    design: Design,
    order: Vec<NodeId>,
    /// Resolved value per net this cycle.
    values: Vec<Value>,
    /// Active-driver count per net (saturates at 2).
    active: Vec<u8>,
    /// Stored value per register node (dense, indexed by position in
    /// `regs`).
    regs: Vec<(NodeId, Value)>,
    /// Externally forced nets (primary inputs, CLK, RSET).
    forced: HashMap<NetId, Value>,
    cycle: u64,
    rng: StdRng,
    check_conflicts: bool,
    conflicts_total: u64,
    budget: StepBudget,
    /// Injected faults (canonicalized), in injection order.
    faults: Vec<Fault>,
    /// Stuck-at clamp per net index.
    stuck: HashMap<usize, Value>,
    /// Transient-flip cycle per net index.
    flips: HashMap<usize, u64>,
    /// Injected bridges as canonical net-index pairs.
    bridges: Vec<(usize, usize)>,
    /// Resolved bridge value per bridged net index (this cycle).
    bridge_clamp: HashMap<usize, Value>,
    /// Natural (pre-clamp) value per bridged net index (this cycle).
    bridge_natural: HashMap<usize, Value>,
    /// Evaluation sweeps used by the last cycle (1 unless bridges forced
    /// a fixpoint iteration).
    sweeps_last_cycle: u32,
    /// True when the last cycle's bridge resolution failed to converge.
    fault_unstable: bool,
    /// First cycle in which bridge resolution failed to converge.
    first_unstable_cycle: Option<u64>,
}

impl Simulator {
    /// Builds a simulator for a finished design with unlimited budgets.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic if the design's netlist has a combinational
    /// cycle (cannot happen for designs produced by `zeus-elab`).
    pub fn new(design: Design) -> Result<Simulator, Diagnostic> {
        Simulator::with_limits(design, &Limits::default())
    }

    /// [`Simulator::new`] with explicit resource limits; the budgets are
    /// enforced by [`Simulator::try_step`] / [`Simulator::try_run`].
    ///
    /// # Errors
    ///
    /// See [`Simulator::new`].
    pub fn with_limits(design: Design, limits: &Limits) -> Result<Simulator, Diagnostic> {
        let order = design.netlist.topo_order()?;
        let regs = design
            .netlist
            .registers()
            .map(|id| (id, Value::Undef))
            .collect();
        let n = design.netlist.net_count();
        let mut sim = Simulator {
            design,
            order,
            values: vec![Value::NoInfl; n],
            active: vec![0; n],
            regs,
            forced: HashMap::new(),
            cycle: 0,
            rng: StdRng::seed_from_u64(0x2E05_1983),
            check_conflicts: true,
            conflicts_total: 0,
            budget: StepBudget::new(limits),
            faults: Vec::new(),
            stuck: HashMap::new(),
            flips: HashMap::new(),
            bridges: Vec::new(),
            bridge_clamp: HashMap::new(),
            bridge_natural: HashMap::new(),
            sweeps_last_cycle: 1,
            fault_unstable: false,
            first_unstable_cycle: None,
        };
        // The clock reads 1 and reset 0 unless the testbench drives them.
        if let Some(clk) = sim.design.clk {
            sim.forced.insert(clk, Value::One);
        }
        if let Some(rset) = sim.design.rset {
            sim.forced.insert(rset, Value::Zero);
        }
        Ok(sim)
    }

    /// The elaborated design being simulated.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Reseeds the RANDOM source (deterministic by default).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Enables or disables the runtime single-assignment check — the
    /// paper argues the check is needed because the static question is
    /// NP-complete (§4.7); disabling it is only for measuring its cost.
    pub fn set_conflict_checking(&mut self, on: bool) {
        self.check_conflicts = on;
    }

    /// Forces a net to a value (holds until changed).
    pub fn force(&mut self, net: NetId, v: Value) {
        self.forced.insert(net, v);
    }

    /// Stops forcing a net.
    pub fn release(&mut self, net: NetId) {
        self.forced.remove(&net);
    }

    /// The nets currently forced (testbench drives, CLK, RSET), sorted by
    /// id so callers — the fault engine in particular — can enumerate and
    /// restore them deterministically.
    pub fn forced_nets(&self) -> Vec<NetId> {
        let mut nets: Vec<NetId> = self.forced.keys().copied().collect();
        nets.sort();
        nets
    }

    /// Injects a physical fault (see [`Fault`]). The site (and bridge
    /// peer) may be any alias of the net; it is canonicalized here.
    ///
    /// Unlike [`Simulator::force`], an injected fault *clamps* the net: it
    /// overrides whatever the design drives without counting as an extra
    /// active driver, and it survives [`Simulator::reset_state`] — a
    /// defect does not heal when the circuit is reset.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic when the site (or bridge peer) is not a net of
    /// this design.
    pub fn inject(&mut self, fault: Fault) -> Result<(), Diagnostic> {
        let n = self.design.netlist.net_count();
        let canon = |net: NetId| -> Result<NetId, Diagnostic> {
            if net.index() >= n {
                return Err(Diagnostic::error(
                    Span::dummy(),
                    format!("fault site {net} is not a net of this design ({n} nets)"),
                ));
            }
            Ok(self.design.netlist.find_ref(net))
        };
        let site = canon(fault.site)?;
        let kind = match fault.kind {
            FaultKind::BridgeWith(other) => FaultKind::BridgeWith(canon(other)?),
            k => k,
        };
        match kind {
            FaultKind::StuckAt0 => {
                self.stuck.insert(site.index(), Value::Zero);
            }
            FaultKind::StuckAt1 => {
                self.stuck.insert(site.index(), Value::One);
            }
            FaultKind::TransientFlip { cycle } => {
                self.flips.insert(site.index(), cycle);
            }
            FaultKind::BridgeWith(other) => {
                if other != site {
                    self.bridges.push((site.index(), other.index()));
                    self.bridge_natural.insert(site.index(), Value::NoInfl);
                    self.bridge_natural.insert(other.index(), Value::NoInfl);
                }
            }
        }
        self.faults.push(Fault { site, kind });
        Ok(())
    }

    /// Removes all injected faults (the repaired-circuit view).
    pub fn clear_faults(&mut self) {
        self.faults.clear();
        self.stuck.clear();
        self.flips.clear();
        self.bridges.clear();
        self.bridge_clamp.clear();
        self.bridge_natural.clear();
        self.fault_unstable = false;
        self.first_unstable_cycle = None;
    }

    /// The currently injected faults (canonicalized), in injection order.
    pub fn injected_faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True when the last cycle's bridge-fault resolution oscillated
    /// instead of converging (the affected nets were left UNDEF). The
    /// fault engine classifies such faults as Hyperactive.
    pub fn fault_unstable_last_cycle(&self) -> bool {
        self.fault_unstable
    }

    /// The first cycle in which an injected bridge failed to settle, if
    /// any did since construction or [`Simulator::reset_state`].
    pub fn first_unstable_cycle(&self) -> Option<u64> {
        self.first_unstable_cycle
    }

    /// How many full evaluation sweeps the last cycle needed (1 unless
    /// injected bridges forced fixpoint re-sweeps). This is the number
    /// [`Simulator::try_step`] bills fuel by; the packed engine exposes
    /// its per-lane counterpart for equivalence checks.
    pub fn sweeps_last_cycle(&self) -> u32 {
        self.sweeps_last_cycle
    }

    /// Drives the predefined RSET signal.
    pub fn set_rset(&mut self, v: bool) {
        if let Some(r) = self.design.rset {
            self.forced.insert(r, Value::from_bool(v));
        }
    }

    /// Drives the predefined CLK signal's sampled value.
    pub fn set_clk(&mut self, v: bool) {
        if let Some(c) = self.design.clk {
            self.forced.insert(c, Value::from_bool(v));
        }
    }

    /// Sets a whole port (bit 1 first — LSB-first for numeric ports).
    ///
    /// # Errors
    ///
    /// Returns a diagnostic if the port does not exist or the width does
    /// not match.
    pub fn set_port(&mut self, name: &str, bits: &[Value]) -> Result<(), Diagnostic> {
        let port = self
            .design
            .port(name)
            .ok_or_else(|| Diagnostic::error(Span::dummy(), format!("no port named '{name}'")))?;
        if port.nets.len() != bits.len() {
            return Err(Diagnostic::error(
                Span::dummy(),
                format!(
                    "port '{name}' has {} bits but {} values were given",
                    port.nets.len(),
                    bits.len()
                ),
            ));
        }
        let nets = port.nets.clone();
        for (net, &v) in nets.into_iter().zip(bits) {
            self.forced.insert(net, v);
        }
        Ok(())
    }

    /// Sets a single-bit port.
    ///
    /// # Errors
    ///
    /// See [`Simulator::set_port`].
    pub fn set_port_bit(&mut self, name: &str, v: Value) -> Result<(), Diagnostic> {
        self.set_port(name, &[v])
    }

    /// Sets a port from an unsigned number (LSB at bit 1, like `BIN`).
    ///
    /// # Errors
    ///
    /// See [`Simulator::set_port`]; also errors when the value does not
    /// fit.
    pub fn set_port_num(&mut self, name: &str, v: u64) -> Result<(), Diagnostic> {
        let width = self
            .design
            .port(name)
            .ok_or_else(|| Diagnostic::error(Span::dummy(), format!("no port named '{name}'")))?
            .nets
            .len();
        if width < 64 && v >= (1u64 << width) {
            return Err(Diagnostic::error(
                Span::dummy(),
                format!("value {v} does not fit in the {width}-bit port '{name}'"),
            ));
        }
        let bits: Vec<Value> = (0..width)
            .map(|i| Value::from_bool((v >> i) & 1 == 1))
            .collect();
        self.set_port(name, &bits)
    }

    /// Reads a port's current resolved values (boolean view: NOINFL reads
    /// as UNDEF, matching the implicit conversion of §4.1).
    pub fn port(&self, name: &str) -> Vec<Value> {
        match self.design.port(name) {
            Some(p) => p.nets.iter().map(|&n| self.value(n).to_boolean()).collect(),
            None => Vec::new(),
        }
    }

    /// Reads a port as a number; `None` if any bit is undefined.
    pub fn port_num(&self, name: &str) -> Option<i64> {
        let bits = self.port(name);
        if bits.is_empty() {
            return None;
        }
        zeus_sema::num(&bits)
    }

    /// Raw resolved value of a net in the current cycle.
    pub fn value(&self, net: NetId) -> Value {
        let rep = self.design.netlist.find_ref(net);
        self.values[rep.index()]
    }

    /// Resolved value of a named signal bit (boolean view).
    pub fn value_by_name(&self, name: &str) -> Option<Value> {
        self.design
            .names
            .get(name)
            .map(|&n| self.value(n).to_boolean())
    }

    /// The *stored* value of the register whose output bit has the given
    /// hierarchical name (e.g. `blackjack.state[1].out`). Unlike
    /// [`Simulator::value_by_name`], this reflects the value latched at
    /// the end of the last cycle, i.e. what the register will present in
    /// the next cycle.
    pub fn register_by_name(&self, name: &str) -> Option<Value> {
        let target = self.design.names.get(name)?;
        let target = self.design.netlist.find_ref(*target);
        self.regs.iter().find_map(|&(node, v)| {
            let out = self.design.netlist.nodes[node.index()].output;
            (out == target).then_some(v)
        })
    }

    /// Number of cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Total conflicts across all cycles.
    pub fn conflicts_total(&self) -> u64 {
        self.conflicts_total
    }

    /// Resets all registers to UNDEF, the cycle counter to 0, and clears
    /// every outstanding [`Simulator::force`] (restoring the default CLK/
    /// RSET drives), so a reset simulator behaves exactly like a freshly
    /// built one. Injected faults are *not* cleared — a physical defect
    /// survives a circuit reset; use [`Simulator::clear_faults`] for that.
    pub fn reset_state(&mut self) {
        for (_, v) in &mut self.regs {
            *v = Value::Undef;
        }
        self.cycle = 0;
        self.conflicts_total = 0;
        self.forced.clear();
        if let Some(clk) = self.design.clk {
            self.forced.insert(clk, Value::One);
        }
        if let Some(rset) = self.design.rset {
            self.forced.insert(rset, Value::Zero);
        }
        self.bridge_clamp.clear();
        self.bridge_natural.clear();
        self.fault_unstable = false;
        self.first_unstable_cycle = None;
    }

    /// Simulates one clock cycle: evaluates every node in a generalized
    /// topological order, resolves all nets, latches the registers, and
    /// reports runtime violations.
    ///
    /// With injected faults the evaluation additionally clamps faulted
    /// nets; bridge faults are resolved to a fixpoint (re-sweeping until
    /// the bridged pair settles), and a non-converging bridge leaves its
    /// nets UNDEF with [`Simulator::fault_unstable_last_cycle`] set.
    pub fn step(&mut self) -> CycleReport {
        if self.faults.is_empty() {
            self.sweeps_last_cycle = 1;
            self.eval_cycle(false);
        } else {
            self.eval_cycle_faulty();
        }

        // Latch registers: "If 'in' is not changed during a clock cycle,
        // it keeps its value" (§5.1).
        for i in 0..self.regs.len() {
            let (node, _) = self.regs[i];
            let inp = self.design.netlist.nodes[node.index()].inputs[0];
            let v = self.values[inp.index()];
            if v != Value::NoInfl {
                self.regs[i].1 = v;
            }
        }

        // Collect runtime violations.
        let mut conflicts = Vec::new();
        if self.check_conflicts {
            for (i, &a) in self.active.iter().enumerate() {
                if a > 1 {
                    conflicts.push(Conflict {
                        cycle: self.cycle,
                        net: NetId(i as u32),
                        name: self.design.netlist.nets[i].name.clone(),
                        active: a as u32,
                    });
                }
            }
            self.conflicts_total += conflicts.len() as u64;
        }
        let report = CycleReport {
            cycle: self.cycle,
            conflicts,
        };
        self.cycle += 1;
        report
    }

    /// One full evaluation sweep: clears net state, drives the sources
    /// (forced nets and register outputs), then evaluates the
    /// combinational nodes in topological order. With `faulty` set, every
    /// drive is filtered through the fault clamps.
    fn eval_cycle(&mut self, faulty: bool) {
        self.values.fill(Value::NoInfl);
        self.active.fill(0);
        if faulty {
            // Clamps apply even to nets nothing drives this cycle.
            for (&i, &v) in &self.stuck {
                self.values[i] = v;
            }
            for (&i, &v) in &self.bridge_clamp {
                self.values[i] = v;
            }
            // Flips of never-driven nets are no-ops (NOINFL has no charge
            // to upset), so only the natural records need resetting here.
            for k in self.bridge_natural.values_mut() {
                *k = Value::NoInfl;
            }
        }

        // Sources: forced inputs and register outputs.
        let forced: Vec<(NetId, Value)> = self.forced.iter().map(|(&n, &v)| (n, v)).collect();
        for (net, v) in forced {
            self.drive(net, v, faulty);
        }
        for i in 0..self.regs.len() {
            let (node, v) = self.regs[i];
            let out = self.design.netlist.nodes[node.index()].output;
            self.drive(out, v, faulty);
        }

        // Combinational sweep in topological order.
        for i in 0..self.order.len() {
            let node_id = self.order[i];
            let node = &self.design.netlist.nodes[node_id.index()];
            let out = node.output;
            let v = match &node.op {
                NodeOp::And => value::and(node.inputs.iter().map(|&n| self.values[n.index()])),
                NodeOp::Or => value::or(node.inputs.iter().map(|&n| self.values[n.index()])),
                NodeOp::Nand => value::nand(node.inputs.iter().map(|&n| self.values[n.index()])),
                NodeOp::Nor => value::nor(node.inputs.iter().map(|&n| self.values[n.index()])),
                NodeOp::Xor => value::xor(node.inputs.iter().map(|&n| self.values[n.index()])),
                NodeOp::Not => self.values[node.inputs[0].index()].not(),
                NodeOp::Equal { width } => {
                    let (a, b) = node.inputs.split_at(*width);
                    let av: Vec<Value> = a.iter().map(|&n| self.values[n.index()]).collect();
                    let bv: Vec<Value> = b.iter().map(|&n| self.values[n.index()]).collect();
                    value::equal(&av, &bv)
                }
                NodeOp::Buf => self.values[node.inputs[0].index()],
                NodeOp::If => {
                    let cond = self.values[node.inputs[0].index()];
                    match cond {
                        Value::Zero => Value::NoInfl,
                        Value::One => self.values[node.inputs[1].index()],
                        // "If b=NOINFL then s has value UNDEF" (§8); an
                        // undefined condition is undefined too.
                        _ => Value::Undef,
                    }
                }
                NodeOp::Const(v) => *v,
                NodeOp::Random => Value::from_bool(self.rng.gen()),
                NodeOp::Reg => continue,
            };
            self.drive(out, v, faulty);
        }
    }

    /// Evaluation under injected faults: sweeps until every bridged pair
    /// settles on a common resolved value, restoring the RNG before each
    /// re-sweep so RANDOM streams stay identical to a fault-free run. A
    /// bridge that refuses to settle within `2*bridges+2` sweeps is
    /// declared unstable: its nets are X-filled (UNDEF) and
    /// [`Simulator::fault_unstable_last_cycle`] is raised instead of
    /// aborting — the campaign layer classifies the fault as Hyperactive.
    fn eval_cycle_faulty(&mut self) {
        let rng_start = self.rng.clone();
        self.fault_unstable = false;
        self.bridge_clamp.clear();
        let cap = 2 * self.bridges.len() as u32 + 2;
        let mut sweeps: u32 = 0;
        loop {
            self.rng = rng_start.clone();
            self.eval_cycle(true);
            sweeps += 1;
            if self.bridges.is_empty() {
                break;
            }
            let mut stable = true;
            let bridges = self.bridges.clone();
            for (a, b) in bridges {
                let na = *self.bridge_natural.get(&a).unwrap_or(&Value::NoInfl);
                let nb = *self.bridge_natural.get(&b).unwrap_or(&Value::NoInfl);
                let resolved = resolve_bridge(na, nb);
                for i in [a, b] {
                    if self.values[i] != resolved {
                        stable = false;
                    }
                    if resolved == Value::NoInfl {
                        self.bridge_clamp.remove(&i);
                    } else {
                        self.bridge_clamp.insert(i, resolved);
                    }
                }
            }
            if stable {
                break;
            }
            if sweeps >= cap {
                // Oscillating bridge: X-fill both ends and do one final
                // sweep so downstream logic sees the UNDEF.
                self.fault_unstable = true;
                if self.first_unstable_cycle.is_none() {
                    self.first_unstable_cycle = Some(self.cycle);
                }
                let bridges = self.bridges.clone();
                for (a, b) in bridges {
                    self.bridge_clamp.insert(a, Value::Undef);
                    self.bridge_clamp.insert(b, Value::Undef);
                }
                self.rng = rng_start.clone();
                self.eval_cycle(true);
                sweeps += 1;
                break;
            }
        }
        self.sweeps_last_cycle = sweeps;
    }

    /// Runs `n` cycles, returning the last report.
    pub fn run(&mut self, n: usize) -> CycleReport {
        let mut last = CycleReport::default();
        for _ in 0..n {
            last = self.step();
        }
        last
    }

    /// Budget-checked [`Simulator::step`]: enforces the step budget, fuel
    /// and deadline of the [`Limits`] the simulator was built with.
    ///
    /// # Errors
    ///
    /// `Z908` when the step budget is exhausted, `Z904`/`Z905` for fuel
    /// and deadline.
    pub fn try_step(&mut self) -> Result<CycleReport, Diagnostic> {
        self.budget.begin_cycle()?;
        self.budget.charge_work(self.order.len() as u64)?;
        let report = self.step();
        // Bridge fixpoint re-sweeps are real work: bill them after the
        // fact so an oscillation-prone fault drains fuel instead of
        // stretching the budget.
        if self.sweeps_last_cycle > 1 {
            self.budget
                .charge_work((self.sweeps_last_cycle as u64 - 1) * self.order.len() as u64)?;
        }
        Ok(report)
    }

    /// Budget-checked [`Simulator::run`].
    ///
    /// # Errors
    ///
    /// See [`Simulator::try_step`].
    pub fn try_run(&mut self, n: usize) -> Result<CycleReport, Diagnostic> {
        let mut last = CycleReport::default();
        for _ in 0..n {
            last = self.try_step()?;
        }
        Ok(last)
    }

    #[inline]
    fn drive(&mut self, net: NetId, v: Value, faulty: bool) {
        if v == Value::NoInfl {
            return;
        }
        let i = net.index();
        if self.check_conflicts {
            let a = self.active[i].saturating_add(1);
            self.active[i] = a;
            self.values[i] = if a > 1 { Value::Undef } else { v };
        } else {
            self.values[i] = v;
        }
        if faulty {
            self.apply_fault_clamp(i);
        }
    }

    /// Re-applies the fault clamps to net `i` after a natural drive.
    /// Stuck faults win outright; a transient flip inverts the natural
    /// value in its one cycle; bridges record the natural value (for the
    /// fixpoint in [`Simulator::eval_cycle_faulty`]) and then present the
    /// currently resolved bridge value.
    #[cold]
    fn apply_fault_clamp(&mut self, i: usize) {
        if let Some(&v) = self.stuck.get(&i) {
            self.values[i] = v;
        } else if let Some(&c) = self.flips.get(&i) {
            if c == self.cycle {
                self.values[i] = self.values[i].not();
            }
        }
        if let Some(nat) = self.bridge_natural.get_mut(&i) {
            *nat = self.values[i];
            if let Some(&c) = self.bridge_clamp.get(&i) {
                self.values[i] = c;
            }
        }
    }

    /// The node evaluation order (one possible firing sequence, §8),
    /// rendered as the driven net names.
    pub fn firing_order(&self) -> Vec<String> {
        self.order
            .iter()
            .map(|&n| {
                let node = &self.design.netlist.nodes[n.index()];
                self.design.netlist.nets[node.output.index()].name.clone()
            })
            .collect()
    }
}

/// Resolution of one bridged pair from the nets' natural values: agreeing
/// values win, a NOINFL side defers to the driven side, and disagreement
/// is UNDEF (an analog intermediate voltage).
fn resolve_bridge(a: Value, b: Value) -> Value {
    if a == b {
        a
    } else if a == Value::NoInfl {
        b
    } else if b == Value::NoInfl {
        a
    } else {
        Value::Undef
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_elab::elaborate;
    use zeus_syntax::parse_program;

    fn sim(src: &str, top: &str, args: &[i64]) -> Simulator {
        let p = parse_program(src).expect("parse");
        let d = elaborate(&p, top, args).expect("elaborate");
        Simulator::new(d).expect("simulator")
    }

    const HALFADDER: &str = "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS \
         BEGIN s := XOR(a,b); cout := AND(a,b) END;";

    #[test]
    fn halfadder_truth_table() {
        let mut s = sim(HALFADDER, "halfadder", &[]);
        for (a, b, sum, carry) in [
            (false, false, Value::Zero, Value::Zero),
            (false, true, Value::One, Value::Zero),
            (true, false, Value::One, Value::Zero),
            (true, true, Value::Zero, Value::One),
        ] {
            s.set_port_bit("a", Value::from_bool(a)).unwrap();
            s.set_port_bit("b", Value::from_bool(b)).unwrap();
            let r = s.step();
            assert!(r.is_clean());
            assert_eq!(s.port("s"), vec![sum], "a={a} b={b}");
            assert_eq!(s.port("cout"), vec![carry]);
        }
    }

    #[test]
    fn undef_inputs_propagate() {
        let mut s = sim(HALFADDER, "halfadder", &[]);
        // AND with one 0 input is 0 even if the other is undefined (§8).
        s.set_port_bit("a", Value::Zero).unwrap();
        s.set_port_bit("b", Value::Undef).unwrap();
        s.step();
        assert_eq!(s.port("cout"), vec![Value::Zero]);
        assert_eq!(s.port("s"), vec![Value::Undef]);
    }

    #[test]
    fn unset_inputs_read_undef() {
        let mut s = sim(HALFADDER, "halfadder", &[]);
        s.step();
        assert_eq!(s.port("s"), vec![Value::Undef]);
    }

    #[test]
    fn register_delays_one_cycle() {
        let mut s = sim(
            "TYPE t = COMPONENT (IN d: boolean; OUT q: boolean) IS \
             SIGNAL r: REG; \
             BEGIN r(d, q) END;",
            "t",
            &[],
        );
        s.set_port_bit("d", Value::One).unwrap();
        s.step();
        // q is the value of d in the *previous* cycle: UNDEF at cycle 0...
        // after the first step the register has latched 1.
        s.set_port_bit("d", Value::Zero).unwrap();
        s.step();
        assert_eq!(s.port("q"), vec![Value::One]);
        s.step();
        assert_eq!(s.port("q"), vec![Value::Zero]);
    }

    #[test]
    fn register_keeps_value_when_input_inactive() {
        let mut s = sim(
            "TYPE t = COMPONENT (IN d, en: boolean; OUT q: boolean) IS \
             SIGNAL r: REG; \
             BEGIN IF en THEN r.in := d END; q := r.out END;",
            "t",
            &[],
        );
        s.set_port_bit("d", Value::One).unwrap();
        s.set_port_bit("en", Value::One).unwrap();
        s.step();
        s.set_port_bit("en", Value::Zero).unwrap();
        s.set_port_bit("d", Value::Zero).unwrap();
        for _ in 0..3 {
            s.step();
            assert_eq!(s.port("q"), vec![Value::One], "register must hold");
        }
    }

    #[test]
    fn toggle_through_register() {
        let mut s = sim(
            "TYPE t = COMPONENT (IN a: boolean; OUT q: boolean) IS \
             SIGNAL r: REG; \
             BEGIN IF RSET THEN r.in := 0 ELSE r.in := NOT r.out END; q := r.out END;",
            "t",
            &[],
        );
        s.set_rset(true);
        s.step();
        s.set_rset(false);
        let mut seen = Vec::new();
        for _ in 0..4 {
            s.step();
            seen.push(s.port("q")[0]);
        }
        assert_eq!(seen, vec![Value::Zero, Value::One, Value::Zero, Value::One]);
    }

    #[test]
    fn conflict_detected_and_reported() {
        let mut s = sim(
            "TYPE t = COMPONENT (IN a,b: boolean; OUT q: boolean) IS \
             SIGNAL h: multiplex; \
             BEGIN IF a THEN h := 1 END; IF b THEN h := 0 END; q := h END;",
            "t",
            &[],
        );
        s.set_port_bit("a", Value::One).unwrap();
        s.set_port_bit("b", Value::One).unwrap();
        let r = s.step();
        assert_eq!(r.conflicts.len(), 1);
        assert_eq!(s.port("q"), vec![Value::Undef]);
        // With only one switch closed the value goes through.
        s.set_port_bit("b", Value::Zero).unwrap();
        let r = s.step();
        assert!(r.is_clean());
        assert_eq!(s.port("q"), vec![Value::One]);
    }

    #[test]
    fn unchecked_mode_skips_conflicts() {
        let mut s = sim(
            "TYPE t = COMPONENT (IN a,b: boolean; OUT q: boolean) IS \
             SIGNAL h: multiplex; \
             BEGIN IF a THEN h := 1 END; IF b THEN h := 0 END; q := h END;",
            "t",
            &[],
        );
        s.set_conflict_checking(false);
        s.set_port_bit("a", Value::One).unwrap();
        s.set_port_bit("b", Value::One).unwrap();
        let r = s.step();
        assert!(r.is_clean());
        assert_eq!(s.conflicts_total(), 0);
    }

    #[test]
    fn switch_open_gives_noinfl_then_undef_boolean_view() {
        let mut s = sim(
            "TYPE t = COMPONENT (IN a,d: boolean; OUT q: boolean) IS \
             SIGNAL h: multiplex; \
             BEGIN IF a THEN h := d END; q := h END;",
            "t",
            &[],
        );
        s.set_port_bit("a", Value::Zero).unwrap();
        s.set_port_bit("d", Value::One).unwrap();
        s.step();
        // h is NOINFL; the boolean view of q reads UNDEF.
        assert_eq!(s.port("q"), vec![Value::Undef]);
    }

    #[test]
    fn undef_condition_gives_undef() {
        let mut s = sim(
            "TYPE t = COMPONENT (IN a,d: boolean; OUT q: boolean) IS \
             SIGNAL h: multiplex; \
             BEGIN IF a THEN h := d END; q := h END;",
            "t",
            &[],
        );
        s.set_port_bit("a", Value::Undef).unwrap();
        s.set_port_bit("d", Value::One).unwrap();
        s.step();
        assert_eq!(s.port("q"), vec![Value::Undef]);
    }

    #[test]
    fn port_num_round_trip() {
        let mut s = sim(
            "TYPE t = COMPONENT (IN a: ARRAY[1..5] OF boolean; \
                                 OUT q: ARRAY[1..5] OF boolean) IS \
             BEGIN q := a END;",
            "t",
            &[],
        );
        for v in [0u64, 1, 10, 22, 31] {
            s.set_port_num("a", v).unwrap();
            s.step();
            assert_eq!(s.port_num("q"), Some(v as i64));
        }
        assert!(s.set_port_num("a", 32).is_err());
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let src = "TYPE t = COMPONENT (IN a: boolean; OUT q: boolean) IS \
             BEGIN q := RANDOM() END;";
        let mut s1 = sim(src, "t", &[]);
        let mut s2 = sim(src, "t", &[]);
        let a: Vec<Value> = (0..16)
            .map(|_| {
                s1.step();
                s1.port("q")[0]
            })
            .collect();
        let b: Vec<Value> = (0..16)
            .map(|_| {
                s2.step();
                s2.port("q")[0]
            })
            .collect();
        assert_eq!(a, b);
        let mut s3 = sim(src, "t", &[]);
        s3.reseed(42);
        let c: Vec<Value> = (0..16)
            .map(|_| {
                s3.step();
                s3.port("q")[0]
            })
            .collect();
        assert_ne!(a, c, "different seed should give a different stream");
    }

    #[test]
    fn value_by_name_reads_internals() {
        let mut s = sim(HALFADDER, "halfadder", &[]);
        s.set_port_bit("a", Value::One).unwrap();
        s.set_port_bit("b", Value::One).unwrap();
        s.step();
        assert_eq!(s.value_by_name("halfadder.cout"), Some(Value::One));
        assert_eq!(s.value_by_name("nope"), None);
    }

    #[test]
    fn firing_order_is_consistent() {
        let s = sim(FULLADDER_SRC, "fulladder", &[]);
        let order = s.firing_order();
        // The OR that produces cout must fire after both half adders'
        // AND gates.
        let cout_pos = order.iter().rposition(|n| n.contains("cout")).unwrap();
        assert!(cout_pos > 0);
    }

    const FULLADDER_SRC: &str =
        "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS \
         BEGIN s := XOR(a,b); cout := AND(a,b) END; \
         fulladder = COMPONENT (IN a,b,cin: boolean; OUT cout,s: boolean) IS \
         SIGNAL h1,h2:halfadder; \
         BEGIN h1(a,b,*,h2.a); h2(h1.s,cin,*,s); cout := OR(h1.cout,h2.cout) END;";

    #[test]
    fn fulladder_exhaustive() {
        let mut s = sim(FULLADDER_SRC, "fulladder", &[]);
        for a in 0..2u8 {
            for b in 0..2u8 {
                for c in 0..2u8 {
                    s.set_port_bit("a", Value::from_bool(a == 1)).unwrap();
                    s.set_port_bit("b", Value::from_bool(b == 1)).unwrap();
                    s.set_port_bit("cin", Value::from_bool(c == 1)).unwrap();
                    let r = s.step();
                    assert!(r.is_clean());
                    let total = a + b + c;
                    assert_eq!(s.port("s"), vec![Value::from_bool(total % 2 == 1)]);
                    assert_eq!(s.port("cout"), vec![Value::from_bool(total >= 2)]);
                }
            }
        }
    }

    #[test]
    fn stuck_at_fault_overrides_logic() {
        let mut s = sim(HALFADDER, "halfadder", &[]);
        let cout = *s.design().names.get("halfadder.cout").unwrap();
        s.inject(zeus_elab::Fault::stuck_at_1(cout)).unwrap();
        s.set_port_bit("a", Value::Zero).unwrap();
        s.set_port_bit("b", Value::Zero).unwrap();
        s.step();
        assert_eq!(s.port("cout"), vec![Value::One], "SA1 beats AND(0,0)");
        // XOR output is untouched.
        assert_eq!(s.port("s"), vec![Value::Zero]);
    }

    #[test]
    fn faults_survive_reset_but_forces_do_not() {
        let mut s = sim(HALFADDER, "halfadder", &[]);
        let cout = *s.design().names.get("halfadder.cout").unwrap();
        s.inject(zeus_elab::Fault::stuck_at_1(cout)).unwrap();
        s.set_port_bit("a", Value::One).unwrap();
        assert!(!s.forced_nets().is_empty());
        s.reset_state();
        assert!(
            s.forced_nets().is_empty(),
            "reset_state must clear testbench forces"
        );
        assert_eq!(s.injected_faults().len(), 1, "faults survive reset");
        s.set_port_bit("a", Value::Zero).unwrap();
        s.set_port_bit("b", Value::Zero).unwrap();
        s.step();
        assert_eq!(s.port("cout"), vec![Value::One]);
        s.clear_faults();
        s.step();
        assert_eq!(s.port("cout"), vec![Value::Zero]);
    }

    #[test]
    fn transient_flip_hits_exactly_one_cycle() {
        let mut s = sim(HALFADDER, "halfadder", &[]);
        let sum = *s.design().names.get("halfadder.s").unwrap();
        s.inject(zeus_elab::Fault::transient_flip(sum, 1)).unwrap();
        s.set_port_bit("a", Value::One).unwrap();
        s.set_port_bit("b", Value::Zero).unwrap();
        s.step();
        assert_eq!(s.port("s"), vec![Value::One], "cycle 0: no flip yet");
        s.step();
        assert_eq!(s.port("s"), vec![Value::Zero], "cycle 1: SEU inverts");
        s.step();
        assert_eq!(s.port("s"), vec![Value::One], "cycle 2: defect gone");
    }

    #[test]
    fn bridge_fault_resolves_disagreement_to_undef() {
        let mut s = sim(HALFADDER, "halfadder", &[]);
        let cout = *s.design().names.get("halfadder.cout").unwrap();
        let sum = *s.design().names.get("halfadder.s").unwrap();
        s.inject(zeus_elab::Fault::bridge(cout, sum)).unwrap();
        // a=1 b=0: naturally s=1, cout=0 — they disagree, both go UNDEF.
        s.set_port_bit("a", Value::One).unwrap();
        s.set_port_bit("b", Value::Zero).unwrap();
        s.step();
        assert_eq!(s.port("s"), vec![Value::Undef]);
        assert_eq!(s.port("cout"), vec![Value::Undef]);
        assert!(!s.fault_unstable_last_cycle());
        // a=1 b=1: naturally s=0, cout=1 — still UNDEF.
        s.set_port_bit("b", Value::One).unwrap();
        s.step();
        assert_eq!(s.port("s"), vec![Value::Undef]);
        // a=0 b=0: both naturally 0 — the bridge agrees, values stay 0.
        s.set_port_bit("a", Value::Zero).unwrap();
        s.set_port_bit("b", Value::Zero).unwrap();
        s.step();
        assert_eq!(s.port("s"), vec![Value::Zero]);
        assert_eq!(s.port("cout"), vec![Value::Zero]);
    }

    #[test]
    fn inject_rejects_out_of_range_site() {
        let mut s = sim(HALFADDER, "halfadder", &[]);
        assert!(s.inject(zeus_elab::Fault::stuck_at_0(NetId(9999))).is_err());
        assert!(s
            .inject(zeus_elab::Fault::bridge(NetId(0), NetId(9999)))
            .is_err());
        assert!(s.injected_faults().is_empty());
    }

    #[test]
    fn random_stream_unchanged_by_bridge_resweeps() {
        // A design with a RANDOM node plus a bridge elsewhere: the
        // re-sweeping fixpoint must not advance the RNG differently from
        // a fault-free run of the same seed.
        let src = "TYPE t = COMPONENT (IN a,b: boolean; OUT q,r: boolean) IS \
             BEGIN q := RANDOM(); r := AND(a,b) END;";
        let mut golden = sim(src, "t", &[]);
        golden.reseed(7);
        let mut faulty = sim(src, "t", &[]);
        faulty.reseed(7);
        let a = *faulty.design().names.get("t.a").unwrap();
        let r = *faulty.design().names.get("t.r").unwrap();
        faulty.inject(zeus_elab::Fault::bridge(a, r)).unwrap();
        for cyc in 0..16u64 {
            let bit = cyc % 3 == 0;
            golden.set_port_bit("a", Value::from_bool(bit)).unwrap();
            golden.set_port_bit("b", Value::from_bool(!bit)).unwrap();
            faulty.set_port_bit("a", Value::from_bool(bit)).unwrap();
            faulty.set_port_bit("b", Value::from_bool(!bit)).unwrap();
            golden.step();
            faulty.step();
            assert_eq!(golden.port("q"), faulty.port("q"), "cycle {cyc}");
        }
    }
}
