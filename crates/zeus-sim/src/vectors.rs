//! Deterministic input vector streams: seeded pseudo-random and explicit.
//!
//! Fault campaigns and sequential differential checks both need the same
//! property: given a [`Design`] and a seed, the sequence of input
//! assignments must be byte-for-byte reproducible across runs and across
//! the golden/faulty simulator pair. [`VectorStream`] encapsulates that
//! contract — the port order is the design's declared IN-port order and
//! bits are drawn LSB-first per port, so two streams built from equal
//! designs and seeds yield identical assignments.
//!
//! [`VectorSet`] is the explicit counterpart: a finite, concrete list of
//! input assignments with a canonical text serialization (the format
//! shared by `zeusc atpg --emit-vectors` and `zeusc fault
//! --vectors-file`). A stream built with [`VectorStream::replay`] yields
//! the set's vectors in order, so a generated test set can be re-graded
//! with exactly the campaign machinery that grades random streams.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zeus_elab::Design;
use zeus_sema::value::Value;
use zeus_syntax::diag::{codes, Diagnostic};
use zeus_syntax::span::Span;

/// One input assignment: the bits (LSB-first) for each IN port, in the
/// design's declared port order.
pub type Assignment = Vec<(String, Vec<Value>)>;

/// Magic first token of the vector-file text format.
const MAGIC: &str = "zeus-vectors";
/// Format version emitted and accepted.
const VERSION: &str = "v1";

/// An explicit, finite set of input vectors with a canonical text form.
///
/// # Text format
///
/// ```text
/// zeus-vectors v1 top=rippleCarry4 seed=42
/// ports cin:1 x:4 y:4
/// 0 1010 0011
/// 1 0000 1111
/// ```
///
/// Line 1 is the header (magic, version, top type, generator seed); line
/// 2 declares the IN ports as `name:width` in declaration order; every
/// following non-empty line is one vector, one whitespace-separated bit
/// group per port, bits LSB-first, each bit `0`, `1`, `U` (undefined) or
/// `Z` (no influence). Lines starting with `#` are comments. The
/// serialization is canonical: parsing and re-serializing a well-formed
/// file reproduces it byte-for-byte, which is what lets campaign digests
/// fold the text itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorSet {
    /// Name of the top component type the set was generated for.
    pub top: String,
    /// The seed of the generator that produced the set (echoed so a
    /// replay campaign can reseed RANDOM nodes identically).
    pub seed: u64,
    ports: Vec<(String, usize)>,
    vectors: Vec<Vec<Vec<Value>>>,
}

fn format_error(msg: impl Into<String>) -> Diagnostic {
    Diagnostic::error(Span::new(0, 0), msg).with_code(codes::SIM)
}

impl VectorSet {
    /// An empty set over `design`'s IN ports.
    pub fn new(design: &Design, seed: u64) -> VectorSet {
        VectorSet {
            top: design.top_type.clone(),
            seed,
            ports: design
                .inputs()
                .map(|p| (p.name.clone(), p.width()))
                .collect(),
            vectors: Vec::new(),
        }
    }

    /// The `(name, width)` pairs of the IN ports, in declaration order.
    pub fn ports(&self) -> &[(String, usize)] {
        &self.ports
    }

    /// Number of vectors in the set.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True when the set holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Appends one vector given as per-port bit groups in port order.
    ///
    /// # Panics
    ///
    /// In debug builds, when the shape disagrees with the port list.
    pub fn push(&mut self, bits_per_port: Vec<Vec<Value>>) {
        debug_assert_eq!(bits_per_port.len(), self.ports.len());
        for (bits, (_, w)) in bits_per_port.iter().zip(&self.ports) {
            debug_assert_eq!(bits.len(), *w);
        }
        self.vectors.push(bits_per_port);
    }

    /// Appends one vector given in [`Assignment`] shape (names checked in
    /// debug builds).
    pub fn push_assignment(&mut self, assignment: &Assignment) {
        debug_assert!(assignment
            .iter()
            .zip(&self.ports)
            .all(|((n, _), (p, _))| n == p));
        self.vectors
            .push(assignment.iter().map(|(_, bits)| bits.clone()).collect());
    }

    /// The `i`-th vector rendered as an [`Assignment`].
    pub fn assignment(&self, i: usize) -> Assignment {
        self.ports
            .iter()
            .zip(&self.vectors[i])
            .map(|((name, _), bits)| (name.clone(), bits.clone()))
            .collect()
    }

    /// The raw bit groups of the `i`-th vector (per port, LSB-first).
    pub fn bits(&self, i: usize) -> &[Vec<Value>] {
        &self.vectors[i]
    }

    /// Retains only the vectors whose index satisfies `keep` (used by
    /// ATPG compaction).
    pub fn retain_indices(&mut self, mut keep: impl FnMut(usize) -> bool) {
        let mut i = 0;
        self.vectors.retain(|_| {
            let k = keep(i);
            i += 1;
            k
        });
    }

    /// Truncates the set to its first `n` vectors.
    pub fn truncate(&mut self, n: usize) {
        self.vectors.truncate(n);
    }

    /// Checks that the set's interface matches `design`'s: same top type
    /// and the same IN `name:width` list in the same order.
    ///
    /// # Errors
    ///
    /// A `Z301` diagnostic naming the first mismatch.
    pub fn matches_design(&self, design: &Design) -> Result<(), Diagnostic> {
        if self.top != design.top_type {
            return Err(format_error(format!(
                "vector set was generated for top `{}`, not `{}`",
                self.top, design.top_type
            )));
        }
        let want: Vec<(String, usize)> = design
            .inputs()
            .map(|p| (p.name.clone(), p.width()))
            .collect();
        if self.ports != want {
            let render = |ps: &[(String, usize)]| {
                ps.iter()
                    .map(|(n, w)| format!("{n}:{w}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            return Err(format_error(format!(
                "vector set ports `{}` do not match design ports `{}`",
                render(&self.ports),
                render(&want)
            )));
        }
        Ok(())
    }

    /// Renders the canonical text form (see the type docs).
    pub fn to_text(&self) -> String {
        let mut out = format!("{MAGIC} {VERSION} top={} seed={}\n", self.top, self.seed);
        out.push_str("ports");
        for (name, width) in &self.ports {
            out.push_str(&format!(" {name}:{width}"));
        }
        out.push('\n');
        for vector in &self.vectors {
            let groups: Vec<String> = vector
                .iter()
                .map(|bits| bits.iter().map(|b| b.to_string()).collect())
                .collect();
            out.push_str(&groups.join(" "));
            out.push('\n');
        }
        out
    }

    /// Parses the canonical text form.
    ///
    /// # Errors
    ///
    /// A `Z301` diagnostic with the offending line number for any
    /// malformed header, port list, or vector line.
    pub fn parse(text: &str) -> Result<VectorSet, Diagnostic> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| format_error("empty vector file"))?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some(MAGIC) {
            return Err(format_error(format!(
                "vector file must start with `{MAGIC} {VERSION}`"
            )));
        }
        match parts.next() {
            Some(VERSION) => {}
            Some(v) => {
                return Err(format_error(format!(
                    "unsupported vector file version `{v}` (expected `{VERSION}`)"
                )))
            }
            None => return Err(format_error("vector file header missing version")),
        }
        let mut top = None;
        let mut seed = None;
        for field in parts {
            if let Some(t) = field.strip_prefix("top=") {
                top = Some(t.to_string());
            } else if let Some(s) = field.strip_prefix("seed=") {
                seed = Some(s.parse::<u64>().map_err(|_| {
                    format_error(format!("malformed seed `{s}` in vector file header"))
                })?);
            } else {
                return Err(format_error(format!(
                    "unknown vector file header field `{field}`"
                )));
            }
        }
        let top = top.ok_or_else(|| format_error("vector file header missing `top=`"))?;
        let seed = seed.ok_or_else(|| format_error("vector file header missing `seed=`"))?;

        let (_, ports_line) = lines
            .next()
            .ok_or_else(|| format_error("vector file missing `ports` line"))?;
        let mut fields = ports_line.split_whitespace();
        if fields.next() != Some("ports") {
            return Err(format_error("vector file line 2 must start with `ports`"));
        }
        let mut ports = Vec::new();
        for field in fields {
            let (name, width) = field.split_once(':').ok_or_else(|| {
                format_error(format!(
                    "malformed port declaration `{field}` (want name:width)"
                ))
            })?;
            let width: usize = width.parse().map_err(|_| {
                format_error(format!(
                    "malformed port width in `{field}` (want name:width)"
                ))
            })?;
            ports.push((name.to_string(), width));
        }

        let mut vectors = Vec::new();
        for (n, line) in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let groups: Vec<&str> = line.split_whitespace().collect();
            if groups.len() != ports.len() {
                return Err(format_error(format!(
                    "line {}: {} bit group(s) for {} port(s)",
                    n + 1,
                    groups.len(),
                    ports.len()
                )));
            }
            let mut vector = Vec::with_capacity(ports.len());
            for (group, (name, width)) in groups.iter().zip(&ports) {
                if group.chars().count() != *width {
                    return Err(format_error(format!(
                        "line {}: port `{name}` expects {width} bit(s), got `{group}`",
                        n + 1
                    )));
                }
                let mut bits = Vec::with_capacity(*width);
                for c in group.chars() {
                    bits.push(match c {
                        '0' => Value::Zero,
                        '1' => Value::One,
                        'U' => Value::Undef,
                        'Z' => Value::NoInfl,
                        other => {
                            return Err(format_error(format!(
                                "line {}: invalid bit character `{other}` (want 0/1/U/Z)",
                                n + 1
                            )))
                        }
                    });
                }
                vector.push(bits);
            }
            vectors.push(vector);
        }
        Ok(VectorSet {
            top,
            seed,
            ports,
            vectors,
        })
    }
}

/// Where a [`VectorStream`]'s vectors come from.
#[derive(Debug, Clone)]
enum Source {
    /// Independent fair coin flips from a seeded generator (unbounded).
    Random(StdRng),
    /// Replay of an explicit [`VectorSet`] (all-zero past the end).
    Explicit {
        vectors: Vec<Vec<Vec<Value>>>,
        pos: usize,
    },
}

/// A reproducible stream of input vectors for a fixed design interface.
#[derive(Debug, Clone)]
pub struct VectorStream {
    ports: Vec<(String, usize)>,
    source: Source,
    seed: u64,
}

impl VectorStream {
    /// Builds a pseudo-random stream over `design`'s IN ports, seeded
    /// with `seed`.
    pub fn new(design: &Design, seed: u64) -> VectorStream {
        let ports = design
            .inputs()
            .map(|p| (p.name.clone(), p.width()))
            .collect();
        VectorStream {
            ports,
            source: Source::Random(StdRng::seed_from_u64(seed)),
            seed,
        }
    }

    /// Builds a stream that replays `set`'s vectors in order. Past the
    /// end of the set the stream yields all-zero assignments (a campaign
    /// replaying a set runs exactly `set.len()` vectors, so this only
    /// matters for over-long manual drives).
    pub fn replay(set: &VectorSet) -> VectorStream {
        VectorStream {
            ports: set.ports.clone(),
            source: Source::Explicit {
                vectors: set.vectors.clone(),
                pos: 0,
            },
            seed: set.seed,
        }
    }

    /// The seed the stream was built with (for a replay stream, the
    /// seed echoed in the set's header).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The `(name, width)` pairs of the IN ports being driven.
    pub fn ports(&self) -> &[(String, usize)] {
        &self.ports
    }

    /// Rewinds the stream to its first vector.
    pub fn restart(&mut self) {
        match &mut self.source {
            Source::Random(rng) => *rng = StdRng::seed_from_u64(self.seed),
            Source::Explicit { pos, .. } => *pos = 0,
        }
    }

    /// The next input assignment: one `(port, bits LSB-first)` entry per
    /// IN port — an independent fair coin flip per bit for a random
    /// stream, the next stored vector for a replay stream.
    pub fn next_vector(&mut self) -> Assignment {
        match &mut self.source {
            Source::Random(rng) => self
                .ports
                .iter()
                .map(|(name, width)| {
                    let bits = (0..*width).map(|_| Value::from_bool(rng.gen())).collect();
                    (name.clone(), bits)
                })
                .collect(),
            Source::Explicit { vectors, pos } => {
                let assignment = match vectors.get(*pos) {
                    Some(vector) => self
                        .ports
                        .iter()
                        .zip(vector)
                        .map(|((name, _), bits)| (name.clone(), bits.clone()))
                        .collect(),
                    None => self
                        .ports
                        .iter()
                        .map(|(name, width)| (name.clone(), vec![Value::Zero; *width]))
                        .collect(),
                };
                *pos += 1;
                assignment
            }
        }
    }

    /// An all-zero assignment with the stream's port shape (used for the
    /// quiescent reset cycle before a campaign run).
    pub fn zero_vector(&self) -> Assignment {
        self.ports
            .iter()
            .map(|(name, width)| (name.clone(), vec![Value::Zero; *width]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_elab::elaborate;
    use zeus_syntax::parse_program;

    fn design(src: &str, top: &str) -> Design {
        elaborate(&parse_program(src).unwrap(), top, &[]).unwrap()
    }

    const SRC: &str = "TYPE t = COMPONENT (IN a: boolean; IN b: ARRAY[1..3] OF boolean; \
         OUT q: boolean) IS BEGIN q := a END;";

    #[test]
    fn streams_with_equal_seeds_agree() {
        let d = design(SRC, "t");
        let mut s1 = VectorStream::new(&d, 42);
        let mut s2 = VectorStream::new(&d, 42);
        for _ in 0..32 {
            assert_eq!(s1.next_vector(), s2.next_vector());
        }
    }

    #[test]
    fn restart_rewinds() {
        let d = design(SRC, "t");
        let mut s = VectorStream::new(&d, 7);
        let first: Vec<_> = (0..8).map(|_| s.next_vector()).collect();
        s.restart();
        let second: Vec<_> = (0..8).map(|_| s.next_vector()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn zero_vector_matches_port_shape() {
        let d = design(SRC, "t");
        let s = VectorStream::new(&d, 0);
        let z = s.zero_vector();
        assert_eq!(z.len(), 2);
        assert_eq!(z[0], ("a".to_string(), vec![Value::Zero]));
        assert_eq!(z[1].1.len(), 3);
    }

    #[test]
    fn different_seeds_diverge() {
        let d = design(SRC, "t");
        let mut s1 = VectorStream::new(&d, 1);
        let mut s2 = VectorStream::new(&d, 2);
        let a: Vec<_> = (0..16).map(|_| s1.next_vector()).collect();
        let b: Vec<_> = (0..16).map(|_| s2.next_vector()).collect();
        assert_ne!(a, b);
    }

    /// Satellite: restart determinism across *many* draws, and the seed
    /// echo survives a restart (a replayed campaign recovers the header
    /// seed unchanged).
    #[test]
    fn restart_replays_exact_sequence_and_preserves_seed() {
        let d = design(SRC, "t");
        let mut s = VectorStream::new(&d, 0xDEAD_BEEF);
        let first: Vec<_> = (0..256).map(|_| s.next_vector()).collect();
        assert_eq!(s.seed(), 0xDEAD_BEEF);
        s.restart();
        assert_eq!(
            s.seed(),
            0xDEAD_BEEF,
            "restart must not change the seed echo"
        );
        let second: Vec<_> = (0..256).map(|_| s.next_vector()).collect();
        assert_eq!(first, second, "restart must replay the exact sequence");
        // zero_vector is a pure function of the port shape: identical
        // before, between, and after draws.
        let z1 = s.zero_vector();
        s.next_vector();
        assert_eq!(z1, s.zero_vector());
    }

    #[test]
    fn vector_set_round_trips_canonical_text() {
        let d = design(SRC, "t");
        let mut set = VectorSet::new(&d, 42);
        let mut stream = VectorStream::new(&d, 42);
        for _ in 0..5 {
            set.push_assignment(&stream.next_vector());
        }
        set.push(vec![
            vec![Value::Undef],
            vec![Value::NoInfl, Value::Zero, Value::One],
        ]);
        let text = set.to_text();
        let parsed = VectorSet::parse(&text).unwrap();
        assert_eq!(parsed, set);
        assert_eq!(parsed.to_text(), text, "serialization must be canonical");
        assert!(text.starts_with("zeus-vectors v1 top=t seed=42\nports a:1 b:3\n"));
    }

    #[test]
    fn replay_stream_yields_set_vectors_then_zeros() {
        let d = design(SRC, "t");
        let mut set = VectorSet::new(&d, 7);
        let mut random = VectorStream::new(&d, 7);
        let originals: Vec<_> = (0..4).map(|_| random.next_vector()).collect();
        for a in &originals {
            set.push_assignment(a);
        }
        let mut replay = VectorStream::replay(&set);
        assert_eq!(replay.seed(), 7, "replay echoes the header seed");
        for a in &originals {
            assert_eq!(&replay.next_vector(), a);
        }
        assert_eq!(replay.next_vector(), replay.zero_vector());
        replay.restart();
        assert_eq!(&replay.next_vector(), &originals[0]);
    }

    #[test]
    fn vector_set_validates_against_design() {
        let d = design(SRC, "t");
        let set = VectorSet::new(&d, 0);
        assert!(set.matches_design(&d).is_ok());
        let other = design(
            "TYPE u = COMPONENT (IN a: boolean; OUT q: boolean) IS BEGIN q := a END;",
            "u",
        );
        assert!(set.matches_design(&other).is_err(), "top name differs");
    }

    #[test]
    fn vector_set_parse_rejects_malformed_input() {
        for bad in [
            "",
            "zeus-vectors v2 top=t seed=0\nports a:1\n",
            "zeus-vectors v1 seed=0\nports a:1\n",
            "zeus-vectors v1 top=t\nports a:1\n",
            "zeus-vectors v1 top=t seed=x\nports a:1\n",
            "zeus-vectors v1 top=t seed=0\nport a:1\n",
            "zeus-vectors v1 top=t seed=0\nports a:one\n",
            "zeus-vectors v1 top=t seed=0\nports a:1\n00\n",
            "zeus-vectors v1 top=t seed=0\nports a:1\n0 1\n",
            "zeus-vectors v1 top=t seed=0\nports a:1\n2\n",
        ] {
            assert!(VectorSet::parse(bad).is_err(), "should reject: {bad:?}");
        }
        // Comments and blank lines are tolerated.
        let ok = VectorSet::parse("zeus-vectors v1 top=t seed=0\nports a:1\n\n# c\n1\n").unwrap();
        assert_eq!(ok.len(), 1);
    }
}
