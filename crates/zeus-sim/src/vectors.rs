//! Deterministic pseudo-random input vector streams.
//!
//! Fault campaigns and sequential differential checks both need the same
//! property: given a [`Design`] and a seed, the sequence of input
//! assignments must be byte-for-byte reproducible across runs and across
//! the golden/faulty simulator pair. [`VectorStream`] encapsulates that
//! contract — the port order is the design's declared IN-port order and
//! bits are drawn LSB-first per port, so two streams built from equal
//! designs and seeds yield identical assignments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zeus_elab::Design;
use zeus_sema::value::Value;

/// A reproducible stream of input vectors for a fixed design interface.
#[derive(Debug, Clone)]
pub struct VectorStream {
    ports: Vec<(String, usize)>,
    rng: StdRng,
    seed: u64,
}

impl VectorStream {
    /// Builds a stream over `design`'s IN ports, seeded with `seed`.
    pub fn new(design: &Design, seed: u64) -> VectorStream {
        let ports = design
            .inputs()
            .map(|p| (p.name.clone(), p.width()))
            .collect();
        VectorStream {
            ports,
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed the stream was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The `(name, width)` pairs of the IN ports being driven.
    pub fn ports(&self) -> &[(String, usize)] {
        &self.ports
    }

    /// Rewinds the stream to its first vector.
    pub fn restart(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    /// The next input assignment: one `(port, bits LSB-first)` entry per
    /// IN port, each bit an independent fair coin flip.
    pub fn next_vector(&mut self) -> Vec<(String, Vec<Value>)> {
        self.ports
            .iter()
            .map(|(name, width)| {
                let bits = (0..*width)
                    .map(|_| Value::from_bool(self.rng.gen()))
                    .collect();
                (name.clone(), bits)
            })
            .collect()
    }

    /// An all-zero assignment with the stream's port shape (used for the
    /// quiescent reset cycle before a campaign run).
    pub fn zero_vector(&self) -> Vec<(String, Vec<Value>)> {
        self.ports
            .iter()
            .map(|(name, width)| (name.clone(), vec![Value::Zero; *width]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_elab::elaborate;
    use zeus_syntax::parse_program;

    fn design(src: &str, top: &str) -> Design {
        elaborate(&parse_program(src).unwrap(), top, &[]).unwrap()
    }

    const SRC: &str = "TYPE t = COMPONENT (IN a: boolean; IN b: ARRAY[1..3] OF boolean; \
         OUT q: boolean) IS BEGIN q := a END;";

    #[test]
    fn streams_with_equal_seeds_agree() {
        let d = design(SRC, "t");
        let mut s1 = VectorStream::new(&d, 42);
        let mut s2 = VectorStream::new(&d, 42);
        for _ in 0..32 {
            assert_eq!(s1.next_vector(), s2.next_vector());
        }
    }

    #[test]
    fn restart_rewinds() {
        let d = design(SRC, "t");
        let mut s = VectorStream::new(&d, 7);
        let first: Vec<_> = (0..8).map(|_| s.next_vector()).collect();
        s.restart();
        let second: Vec<_> = (0..8).map(|_| s.next_vector()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn zero_vector_matches_port_shape() {
        let d = design(SRC, "t");
        let s = VectorStream::new(&d, 0);
        let z = s.zero_vector();
        assert_eq!(z.len(), 2);
        assert_eq!(z[0], ("a".to_string(), vec![Value::Zero]));
        assert_eq!(z[1].1.len(), 3);
    }

    #[test]
    fn different_seeds_diverge() {
        let d = design(SRC, "t");
        let mut s1 = VectorStream::new(&d, 1);
        let mut s2 = VectorStream::new(&d, 2);
        let a: Vec<_> = (0..16).map(|_| s1.next_vector()).collect();
        let b: Vec<_> = (0..16).map(|_| s2.next_vector()).collect();
        assert_ne!(a, b);
    }
}
