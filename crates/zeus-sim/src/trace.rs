//! Waveform capture and a VCD-style text dump.
//!
//! A [`Recorder`] watches named signal bits across cycles and renders them
//! as an ASCII waveform or a Value-Change-Dump-like text, which the
//! examples use to show the "possible computation sequence" figures of
//! §10.

use crate::Simulator;
use std::fmt::Write as _;
use zeus_elab::NetId;
use zeus_sema::value::Value;

/// Records selected signals over simulated cycles.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    signals: Vec<(String, NetId)>,
    /// One row per sample; row k holds the values of all signals at the
    /// end of cycle k.
    samples: Vec<Vec<Value>>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Watches the named signal bit (hierarchical elaboration name, e.g.
    /// `blackjack.state[1].out`). Returns false when no such bit exists.
    pub fn watch(&mut self, sim: &Simulator, name: &str) -> bool {
        match sim.design().names.get(name) {
            Some(&net) => {
                self.signals.push((name.to_string(), net));
                true
            }
            None => false,
        }
    }

    /// Watches all bits of a port, LSB first.
    pub fn watch_port(&mut self, sim: &Simulator, port: &str) -> bool {
        match sim.design().port(port) {
            Some(p) => {
                for (i, &net) in p.nets.iter().enumerate() {
                    self.signals.push((format!("{port}[{}]", i + 1), net));
                }
                true
            }
            None => false,
        }
    }

    /// Samples the watched signals at the current cycle.
    pub fn sample(&mut self, sim: &Simulator) {
        let row = self
            .signals
            .iter()
            .map(|&(_, net)| sim.value(net).to_boolean())
            .collect();
        self.samples.push(row);
    }

    /// Number of samples taken.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been sampled.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The recorded history of one signal.
    pub fn history(&self, name: &str) -> Option<Vec<Value>> {
        let idx = self.signals.iter().position(|(n, _)| n == name)?;
        Some(self.samples.iter().map(|row| row[idx]).collect())
    }

    /// Renders an ASCII waveform: one row per signal, one column per
    /// cycle (`0`, `1`, `U` for undefined, `Z` for no influence).
    pub fn render(&self) -> String {
        let name_w = self.signals.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (i, (name, _)) in self.signals.iter().enumerate() {
            let _ = write!(out, "{name:<name_w$} ");
            for row in &self.samples {
                let _ = write!(out, "{}", row[i]);
            }
            out.push('\n');
        }
        out
    }

    /// Renders a VCD-style value change dump (text, `$var`/`#time`
    /// sections), sufficient for external waveform viewers that accept
    /// 4-state VCD.
    pub fn to_vcd(&self) -> String {
        let mut out = String::new();
        out.push_str("$timescale 1 ns $end\n$scope module zeus $end\n");
        let code = |i: usize| -> String {
            // Printable short id codes: ! .. ~
            let mut n = i;
            let mut s = String::new();
            loop {
                s.push((b'!' + (n % 94) as u8) as char);
                n /= 94;
                if n == 0 {
                    break;
                }
            }
            s
        };
        for (i, (name, _)) in self.signals.iter().enumerate() {
            let clean = name.replace(' ', "_");
            let _ = writeln!(out, "$var wire 1 {} {clean} $end", code(i));
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        let mut last: Vec<Option<Value>> = vec![None; self.signals.len()];
        for (t, row) in self.samples.iter().enumerate() {
            let mut changes = String::new();
            for (i, &v) in row.iter().enumerate() {
                if last[i] != Some(v) {
                    last[i] = Some(v);
                    let ch = match v {
                        Value::Zero => '0',
                        Value::One => '1',
                        Value::Undef => 'x',
                        Value::NoInfl => 'z',
                    };
                    let _ = writeln!(changes, "{ch}{}", code(i));
                }
            }
            if !changes.is_empty() {
                let _ = writeln!(out, "#{t}");
                out.push_str(&changes);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_elab::elaborate;
    use zeus_syntax::parse_program;

    fn toggler() -> Simulator {
        let p = parse_program(
            "TYPE t = COMPONENT (IN a: boolean; OUT q: boolean) IS \
             SIGNAL r: REG; \
             BEGIN IF RSET THEN r.in := 0 ELSE r.in := NOT r.out END; q := r.out END;",
        )
        .unwrap();
        Simulator::new(elaborate(&p, "t", &[]).unwrap()).unwrap()
    }

    #[test]
    fn records_and_renders() {
        let mut sim = toggler();
        let mut rec = Recorder::new();
        assert!(rec.watch_port(&sim, "q"));
        assert!(rec.watch(&sim, "t.r.out"));
        assert!(!rec.watch(&sim, "t.nothing"));
        sim.set_rset(true);
        sim.step();
        rec.sample(&sim);
        sim.set_rset(false);
        for _ in 0..4 {
            sim.step();
            rec.sample(&sim);
        }
        assert_eq!(rec.len(), 5);
        let h = rec.history("q[1]").unwrap();
        assert_eq!(
            h,
            vec![
                Value::Undef,
                Value::Zero,
                Value::One,
                Value::Zero,
                Value::One
            ]
        );
        let text = rec.render();
        assert!(text.contains("q[1]"));
        assert!(text.contains("U0101"));
    }

    #[test]
    fn vcd_has_headers_and_changes() {
        let mut sim = toggler();
        let mut rec = Recorder::new();
        rec.watch_port(&sim, "q");
        sim.set_rset(true);
        sim.step();
        rec.sample(&sim);
        sim.set_rset(false);
        for _ in 0..3 {
            sim.step();
            rec.sample(&sim);
        }
        let vcd = rec.to_vcd();
        assert!(vcd.contains("$enddefinitions"));
        assert!(vcd.contains("$var wire 1"));
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("x"));
    }

    #[test]
    fn empty_recorder() {
        let rec = Recorder::new();
        assert!(rec.is_empty());
        assert_eq!(rec.render(), "");
        assert!(rec.history("x").is_none());
    }
}
