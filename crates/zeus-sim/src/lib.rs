//! # zeus-sim
//!
//! The Zeus simulator of paper §8: deterministic evaluation of the
//! semantics graph with four-valued firing rules, registers that latch per
//! clock cycle, and the runtime single-active-assignment check that
//! "safeguards against burning transistors".
//!
//! Three engines with identical semantics are provided:
//!
//! * [`Simulator`] — the reference levelized engine (full topological
//!   sweep per cycle),
//! * [`EventSimulator`] — a selective-trace event-driven engine for
//!   workloads with low activity (used by the benchmark ablations),
//! * [`PackedSim`] — a bit-parallel engine evaluating 64 independent
//!   patterns per sweep (two `u64` planes per net), lane-for-lane
//!   equivalent to [`Simulator`] and the substrate for sharded fault
//!   campaigns (see `docs/PERFORMANCE.md`).
//!
//! [`Recorder`] captures waveforms and renders ASCII timelines or a
//! VCD-style dump.
//!
//! ## Example
//!
//! ```
//! use zeus_syntax::parse_program;
//! use zeus_elab::elaborate;
//! use zeus_sim::Simulator;
//! use zeus_sema::Value;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS
//!      BEGIN s := XOR(a,b); cout := AND(a,b) END;",
//! )?;
//! let mut sim = Simulator::new(elaborate(&program, "halfadder", &[])?)?;
//! sim.set_port_bit("a", Value::One)?;
//! sim.set_port_bit("b", Value::One)?;
//! sim.step();
//! assert_eq!(sim.port("cout"), vec![Value::One]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod equiv;
mod event;
mod packed;
mod sim;
mod trace;
mod vectors;

pub use equiv::{
    check_equivalent, check_equivalent_sequential, check_equivalent_with, run_differential,
    CounterExample, Divergence,
};
pub use event::EventSimulator;
pub use packed::{PackedConflict, PackedCycleReport, PackedSim, PackedWord, LANES};
pub use sim::{Conflict, CycleReport, Simulator};
pub use trace::Recorder;
pub use vectors::{Assignment, VectorSet, VectorStream};
