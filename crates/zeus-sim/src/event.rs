//! Event-driven (selective-trace) simulation variant.
//!
//! The reference [`crate::Simulator`] sweeps every node each cycle. For
//! designs where little changes between cycles, an event-driven simulator
//! only re-evaluates the fan-out of changed nets. The paper situates Zeus
//! simulation as "a well understood subject" (§9, citing Breuer/Friedman);
//! this module provides the classic selective-trace algorithm so the
//! benchmark harness can compare both (ablation for claim C1 in
//! `DESIGN.md`).
//!
//! Semantics are identical: the same firing rules, resolution and latch
//! behavior; only the evaluation strategy differs. The runtime
//! single-assignment check requires observing *all* contributions of a
//! net, so nets keep per-driver contribution slots here.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use zeus_elab::{Design, Limits, NetId, NodeId, NodeOp};
use zeus_sema::value::{self, Value};
use zeus_syntax::diag::Diagnostic;

use crate::sim::{Conflict, CycleReport, StepBudget};

type EventHeap = std::collections::BinaryHeap<std::cmp::Reverse<(u32, u32)>>;

/// Event-driven simulator with per-cycle selective trace.
#[derive(Debug, Clone)]
pub struct EventSimulator {
    design: Design,
    /// Per net: indices into `contribs` of its drivers.
    net_drivers: Vec<Vec<u32>>,
    /// Per net: consuming node ids.
    readers: Vec<Vec<NodeId>>,
    /// Contribution slot per node (node i drives slot i).
    contribs: Vec<Value>,
    /// Resolved value per net.
    values: Vec<Value>,
    /// Per-node "queued" marker for the current wave.
    queued: Vec<bool>,
    /// Topological rank of each node, for ordered event processing.
    rank: Vec<u32>,
    regs: Vec<(NodeId, Value)>,
    forced: HashMap<NetId, Value>,
    /// Nets whose drivers changed this cycle (candidates for the runtime
    /// single-assignment check, performed after the wave settles).
    dirty: Vec<bool>,
    dirty_list: Vec<NetId>,
    cycle: u64,
    rng: StdRng,
    conflicts_total: u64,
    /// Nodes evaluated in the last cycle (the selective-trace metric).
    pub evals_last_cycle: u64,
    budget: StepBudget,
}

impl EventSimulator {
    /// Builds an event-driven simulator for a finished design.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic if the netlist has a combinational cycle.
    pub fn new(design: Design) -> Result<EventSimulator, Diagnostic> {
        EventSimulator::with_limits(design, &Limits::default())
    }

    /// Like [`EventSimulator::new`], but with an explicit resource budget.
    ///
    /// The budget is consumed by [`EventSimulator::try_step`] and
    /// [`EventSimulator::try_run`]; the infallible [`EventSimulator::step`]
    /// ignores it.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic if the netlist has a combinational cycle.
    pub fn with_limits(design: Design, limits: &Limits) -> Result<EventSimulator, Diagnostic> {
        let order = design.netlist.topo_order()?;
        let mut rank = vec![0u32; design.netlist.node_count()];
        for (i, n) in order.iter().enumerate() {
            rank[n.index()] = i as u32;
        }
        let nets = design.netlist.net_count();
        let nodes = design.netlist.node_count();
        let mut net_drivers: Vec<Vec<u32>> = vec![Vec::new(); nets];
        let mut readers: Vec<Vec<NodeId>> = vec![Vec::new(); nets];
        for (i, node) in design.netlist.nodes.iter().enumerate() {
            net_drivers[node.output.index()].push(i as u32);
            if node.op != NodeOp::Reg {
                for inp in &node.inputs {
                    readers[inp.index()].push(NodeId(i as u32));
                }
            }
        }
        let regs = design
            .netlist
            .registers()
            .map(|id| (id, Value::Undef))
            .collect();
        let mut sim = EventSimulator {
            design,
            net_drivers,
            readers,
            contribs: vec![Value::NoInfl; nodes],
            values: vec![Value::NoInfl; nets],
            queued: vec![false; nodes],
            dirty: vec![false; nets],
            dirty_list: Vec::new(),
            rank,
            regs,
            forced: HashMap::new(),
            cycle: 0,
            rng: StdRng::seed_from_u64(0x2E05_1983),
            conflicts_total: 0,
            evals_last_cycle: 0,
            budget: StepBudget::new(limits),
        };
        if let Some(clk) = sim.design.clk {
            sim.forced.insert(clk, Value::One);
        }
        if let Some(rset) = sim.design.rset {
            sim.forced.insert(rset, Value::Zero);
        }
        Ok(sim)
    }

    /// The design under simulation.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Forces a net (holds until changed).
    pub fn force(&mut self, net: NetId, v: Value) {
        self.forced.insert(net, v);
    }

    /// Sets a whole port, like [`crate::Simulator::set_port`].
    ///
    /// # Errors
    ///
    /// Returns a diagnostic if the port is unknown or widths mismatch.
    pub fn set_port(&mut self, name: &str, bits: &[Value]) -> Result<(), Diagnostic> {
        let port = self.design.port(name).ok_or_else(|| {
            Diagnostic::error(
                zeus_syntax::span::Span::dummy(),
                format!("no port '{name}'"),
            )
        })?;
        if port.nets.len() != bits.len() {
            return Err(Diagnostic::error(
                zeus_syntax::span::Span::dummy(),
                format!("port '{name}' width mismatch"),
            ));
        }
        let nets = port.nets.clone();
        for (net, &v) in nets.into_iter().zip(bits) {
            self.forced.insert(net, v);
        }
        Ok(())
    }

    /// Sets a port from a number (LSB-first).
    ///
    /// # Errors
    ///
    /// See [`EventSimulator::set_port`].
    pub fn set_port_num(&mut self, name: &str, v: u64) -> Result<(), Diagnostic> {
        let width = self
            .design
            .port(name)
            .map(|p| p.nets.len())
            .unwrap_or_default();
        let bits: Vec<Value> = (0..width)
            .map(|i| Value::from_bool((v >> i) & 1 == 1))
            .collect();
        self.set_port(name, &bits)
    }

    /// Drives RSET.
    pub fn set_rset(&mut self, v: bool) {
        if let Some(r) = self.design.rset {
            self.forced.insert(r, Value::from_bool(v));
        }
    }

    /// Reads a port (boolean view).
    pub fn port(&self, name: &str) -> Vec<Value> {
        match self.design.port(name) {
            Some(p) => p
                .nets
                .iter()
                .map(|&n| {
                    let rep = self.design.netlist.find_ref(n);
                    self.values[rep.index()].to_boolean()
                })
                .collect(),
            None => Vec::new(),
        }
    }

    /// Reads a port as a number.
    pub fn port_num(&self, name: &str) -> Option<i64> {
        let bits = self.port(name);
        if bits.is_empty() {
            None
        } else {
            zeus_sema::num(&bits)
        }
    }

    /// Total conflicts so far.
    pub fn conflicts_total(&self) -> u64 {
        self.conflicts_total
    }

    fn resolve_net(&self, net: usize, forced: Option<Value>) -> (Value, u32) {
        let mut res = value::Resolution::empty();
        if let Some(v) = forced {
            res = res.drive(v);
        }
        for &d in &self.net_drivers[net] {
            res = res.drive(self.contribs[d as usize]);
        }
        (res.value, res.active)
    }

    fn touch_net(&mut self, heap: &mut EventHeap, net: NetId) {
        let i = net.index();
        let forced = self.forced.get(&net).copied();
        let (v, _active) = self.resolve_net(i, forced);
        if !self.dirty[i] {
            self.dirty[i] = true;
            self.dirty_list.push(net);
        }
        if self.values[i] != v {
            self.values[i] = v;
            for k in 0..self.readers[i].len() {
                let r = self.readers[i][k];
                if !self.queued[r.index()] {
                    self.queued[r.index()] = true;
                    heap.push(std::cmp::Reverse((self.rank[r.index()], r.0)));
                }
            }
        }
    }

    /// Simulates one clock cycle with selective trace: only nodes in the
    /// fan-out of changed nets re-evaluate.
    pub fn step(&mut self) -> CycleReport {
        self.evals_last_cycle = 0;
        // Seed changes: forced nets and register outputs.
        let mut heap: EventHeap = std::collections::BinaryHeap::new();

        // Register outputs become their stored values.
        for i in 0..self.regs.len() {
            let (node, v) = self.regs[i];
            let out = self.design.netlist.nodes[node.index()].output;
            self.contribs[node.index()] = v;
            self.touch_net(&mut heap, out);
        }
        // Forced nets.
        let forced_nets: Vec<NetId> = self.forced.keys().copied().collect();
        for net in forced_nets {
            self.touch_net(&mut heap, net);
        }
        // Constants and RANDOM sources fire every cycle.
        for i in 0..self.design.netlist.node_count() {
            match self.design.netlist.nodes[i].op {
                NodeOp::Const(v) if self.contribs[i] != v => {
                    self.contribs[i] = v;
                    let out = self.design.netlist.nodes[i].output;
                    self.touch_net(&mut heap, out);
                }
                NodeOp::Random => {
                    let v = Value::from_bool(self.rng.gen());
                    self.contribs[i] = v;
                    let out = self.design.netlist.nodes[i].output;
                    self.touch_net(&mut heap, out);
                }
                _ => {}
            }
        }

        // Selective trace in rank order.
        while let Some(std::cmp::Reverse((_, id))) = heap.pop() {
            let node_id = NodeId(id);
            self.queued[node_id.index()] = false;
            self.evals_last_cycle += 1;
            let node = &self.design.netlist.nodes[node_id.index()];
            let v = match &node.op {
                NodeOp::And => value::and(node.inputs.iter().map(|&n| self.values[n.index()])),
                NodeOp::Or => value::or(node.inputs.iter().map(|&n| self.values[n.index()])),
                NodeOp::Nand => value::nand(node.inputs.iter().map(|&n| self.values[n.index()])),
                NodeOp::Nor => value::nor(node.inputs.iter().map(|&n| self.values[n.index()])),
                NodeOp::Xor => value::xor(node.inputs.iter().map(|&n| self.values[n.index()])),
                NodeOp::Not => self.values[node.inputs[0].index()].not(),
                NodeOp::Equal { width } => {
                    let (a, b) = node.inputs.split_at(*width);
                    let av: Vec<Value> = a.iter().map(|&n| self.values[n.index()]).collect();
                    let bv: Vec<Value> = b.iter().map(|&n| self.values[n.index()]).collect();
                    value::equal(&av, &bv)
                }
                NodeOp::Buf => self.values[node.inputs[0].index()],
                NodeOp::If => match self.values[node.inputs[0].index()] {
                    Value::Zero => Value::NoInfl,
                    Value::One => self.values[node.inputs[1].index()],
                    _ => Value::Undef,
                },
                NodeOp::Const(_) | NodeOp::Random | NodeOp::Reg => continue,
            };
            let out = node.output;
            if self.contribs[node_id.index()] != v {
                self.contribs[node_id.index()] = v;
                self.touch_net(&mut heap, out);
            }
        }

        // Latch registers.
        for i in 0..self.regs.len() {
            let (node, _) = self.regs[i];
            let inp = self.design.netlist.nodes[node.index()].inputs[0];
            let v = self.values[inp.index()];
            if v != Value::NoInfl {
                self.regs[i].1 = v;
            }
        }

        // Runtime single-assignment check on the nets whose drivers
        // changed, after the wave has settled (transient states during
        // propagation are not violations). This is edge-triggered: a
        // conflict is reported in the cycle it arises.
        let mut conflicts = Vec::new();
        let dirty = std::mem::take(&mut self.dirty_list);
        for net in dirty {
            self.dirty[net.index()] = false;
            let forced = self.forced.get(&net).copied();
            let (_, active) = self.resolve_net(net.index(), forced);
            if active > 1 {
                conflicts.push(Conflict {
                    cycle: self.cycle,
                    net,
                    name: self.design.netlist.nets[net.index()].name.clone(),
                    active,
                });
            }
        }
        self.conflicts_total += conflicts.len() as u64;
        let report = CycleReport {
            cycle: self.cycle,
            conflicts,
        };
        self.cycle += 1;
        report
    }

    /// Runs `n` cycles.
    pub fn run(&mut self, n: usize) -> CycleReport {
        let mut last = CycleReport::default();
        for _ in 0..n {
            last = self.step();
        }
        last
    }

    /// Like [`EventSimulator::step`], but charged against the configured
    /// resource budget.
    ///
    /// # Errors
    ///
    /// Returns a `Z908` diagnostic once the step budget is exhausted, `Z904`
    /// when the fuel budget runs out (fuel is charged per node evaluation,
    /// so a busy design burns fuel faster than an idle one), or `Z905` past
    /// the deadline.
    pub fn try_step(&mut self) -> Result<CycleReport, Diagnostic> {
        self.budget.begin_cycle()?;
        let report = self.step();
        self.budget.charge_work(self.evals_last_cycle)?;
        Ok(report)
    }

    /// Runs `n` cycles under the resource budget.
    ///
    /// # Errors
    ///
    /// See [`EventSimulator::try_step`].
    pub fn try_run(&mut self, n: usize) -> Result<CycleReport, Diagnostic> {
        let mut last = CycleReport::default();
        for _ in 0..n {
            last = self.try_step()?;
        }
        Ok(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use zeus_elab::elaborate;
    use zeus_syntax::parse_program;

    fn design(src: &str, top: &str) -> Design {
        let p = parse_program(src).expect("parse");
        elaborate(&p, top, &[]).expect("elaborate")
    }

    const FULLADDER: &str = "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS \
         BEGIN s := XOR(a,b); cout := AND(a,b) END; \
         fulladder = COMPONENT (IN a,b,cin: boolean; OUT cout,s: boolean) IS \
         SIGNAL h1,h2:halfadder; \
         BEGIN h1(a,b,*,h2.a); h2(h1.s,cin,*,s); cout := OR(h1.cout,h2.cout) END;";

    #[test]
    fn matches_levelized_simulator_exhaustively() {
        let d = design(FULLADDER, "fulladder");
        let mut ev = EventSimulator::new(d.clone()).unwrap();
        let mut lv = Simulator::new(d).unwrap();
        for a in 0..2u64 {
            for b in 0..2u64 {
                for c in 0..2u64 {
                    ev.set_port_num("a", a).unwrap();
                    ev.set_port_num("b", b).unwrap();
                    ev.set_port_num("cin", c).unwrap();
                    lv.set_port_num("a", a).unwrap();
                    lv.set_port_num("b", b).unwrap();
                    lv.set_port_num("cin", c).unwrap();
                    ev.step();
                    lv.step();
                    assert_eq!(ev.port("s"), lv.port("s"), "a={a} b={b} c={c}");
                    assert_eq!(ev.port("cout"), lv.port("cout"));
                }
            }
        }
    }

    #[test]
    fn selective_trace_saves_evaluations() {
        let d = design(FULLADDER, "fulladder");
        let mut ev = EventSimulator::new(d).unwrap();
        ev.set_port_num("a", 1).unwrap();
        ev.set_port_num("b", 1).unwrap();
        ev.set_port_num("cin", 0).unwrap();
        ev.step();
        let first = ev.evals_last_cycle;
        // No input change: nothing should re-evaluate.
        ev.step();
        assert_eq!(ev.evals_last_cycle, 0, "quiescent cycle must be free");
        assert!(first > 0);
    }

    #[test]
    fn registers_and_conflicts_match_reference() {
        let src = "TYPE t = COMPONENT (IN a,b: boolean; OUT q: boolean) IS \
             SIGNAL h: multiplex; r: REG; \
             BEGIN IF a THEN h := 1 END; IF b THEN h := 0 END; \
             r(h, q) END;";
        let d = design(src, "t");
        let mut ev = EventSimulator::new(d.clone()).unwrap();
        let mut lv = Simulator::new(d).unwrap();
        for (a, b) in [(1u64, 0u64), (0, 1), (1, 1), (0, 0), (1, 0)] {
            ev.set_port_num("a", a).unwrap();
            ev.set_port_num("b", b).unwrap();
            lv.set_port_num("a", a).unwrap();
            lv.set_port_num("b", b).unwrap();
            let re = ev.step();
            let rl = lv.step();
            assert_eq!(re.conflicts.len(), rl.conflicts.len(), "a={a} b={b}");
            assert_eq!(ev.port("q"), lv.port("q"));
        }
        assert_eq!(ev.conflicts_total(), lv.conflicts_total());
    }
}
