//! Bit-parallel packed simulation: 64 patterns per net in two `u64`
//! bit-planes.
//!
//! Classic parallel-pattern simulation packs many independent evaluations
//! of the same netlist into machine words so the levelized sweep costs
//! word-wide boolean operations instead of one branchy match per value.
//! The four-valued domain {0, 1, UNDEF, NOINFL} of §8 needs two bits per
//! lane; [`PackedWord`] stores 64 lanes as the pair
//!
//! * `lo` — "this lane can be 0",
//! * `hi` — "this lane can be 1",
//!
//! so `NOINFL = (0,0)`, `0 = (1,0)`, `1 = (0,1)`, `UNDEF = (1,1)`. Under
//! this encoding the §8 dominance rules become plain AND/OR folds over
//! the planes (see [`PackedWord::and_fold`] etc.), which the test module
//! proves equivalent to the scalar [`zeus_sema::value`] truth tables for
//! every node kind.
//!
//! [`PackedSim`] mirrors [`crate::Simulator`] lane-for-lane: the same
//! topological sweep, the same single-active-assignment rule (a per-net
//! driven-once/driven-twice mask pair instead of a counter), the same
//! per-lane fault clamps, and the same bridge fixpoint — so any one lane
//! of a packed run is bit-identical to a scalar run with the same seed.
//! RANDOM nodes draw one bit per cycle and broadcast it to all lanes,
//! matching a scalar campaign where every fault's simulator is reseeded
//! with the same seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use zeus_elab::{Design, Fault, FaultKind, Limits, NetId, NodeId, NodeOp};
use zeus_sema::value::Value;
use zeus_syntax::diag::Diagnostic;
use zeus_syntax::span::Span;

use crate::sim::StepBudget;

/// The number of independent patterns per packed word.
pub const LANES: usize = 64;

/// 64 lanes of the four-valued domain as two bit-planes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PackedWord {
    /// Plane "the lane can be 0".
    pub lo: u64,
    /// Plane "the lane can be 1".
    pub hi: u64,
}

impl PackedWord {
    /// All lanes NOINFL (the undriven state).
    pub const NOINFL: PackedWord = PackedWord { lo: 0, hi: 0 };
    /// All lanes UNDEF.
    pub const UNDEF: PackedWord = PackedWord { lo: !0, hi: !0 };
    /// All lanes 0.
    pub const ZERO: PackedWord = PackedWord { lo: !0, hi: 0 };
    /// All lanes 1.
    pub const ONE: PackedWord = PackedWord { lo: 0, hi: !0 };

    /// Every lane set to `v`.
    pub fn splat(v: Value) -> PackedWord {
        match v {
            Value::Zero => PackedWord::ZERO,
            Value::One => PackedWord::ONE,
            Value::Undef => PackedWord::UNDEF,
            Value::NoInfl => PackedWord::NOINFL,
        }
    }

    /// The value in one lane.
    pub fn get(self, lane: usize) -> Value {
        match ((self.lo >> lane) & 1, (self.hi >> lane) & 1) {
            (0, 0) => Value::NoInfl,
            (1, 0) => Value::Zero,
            (0, 1) => Value::One,
            _ => Value::Undef,
        }
    }

    /// Sets one lane to `v`.
    pub fn set(&mut self, lane: usize, v: Value) {
        let bit = 1u64 << lane;
        self.lo &= !bit;
        self.hi &= !bit;
        match v {
            Value::Zero => self.lo |= bit,
            Value::One => self.hi |= bit,
            Value::Undef => {
                self.lo |= bit;
                self.hi |= bit;
            }
            Value::NoInfl => {}
        }
    }

    /// Mask of lanes that are *active* (not NOINFL).
    pub fn active(self) -> u64 {
        self.lo | self.hi
    }

    /// Mask of lanes that are defined (exactly 0 or 1).
    pub fn defined(self) -> u64 {
        self.lo ^ self.hi
    }

    /// The boolean view (§4.1): NOINFL lanes read as UNDEF.
    pub fn to_boolean(self) -> PackedWord {
        let z = !(self.lo | self.hi);
        PackedWord {
            lo: self.lo | z,
            hi: self.hi | z,
        }
    }

    /// Lane-wise NOT: defined lanes flip, UNDEF/NOINFL lanes give UNDEF
    /// (the scalar [`Value::not`] table). Swapping the planes of the
    /// boolean view realizes exactly that.
    // Not `std::ops::Not`: this is the four-valued logical NOT, not a
    // bitwise complement of the planes, and the name mirrors
    // `Value::not` on the scalar side.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> PackedWord {
        let b = self.to_boolean();
        PackedWord { lo: b.hi, hi: b.lo }
    }

    /// Takes lanes in `mask` from `self`, the rest from `other`.
    pub fn select(self, mask: u64, other: PackedWord) -> PackedWord {
        PackedWord {
            lo: (self.lo & mask) | (other.lo & !mask),
            hi: (self.hi & mask) | (other.hi & !mask),
        }
    }

    /// Mask of lanes where `self` and `other` hold different values.
    pub fn diff(self, other: PackedWord) -> u64 {
        (self.lo ^ other.lo) | (self.hi ^ other.hi)
    }

    /// n-ary AND over boolean views (§8 dominance: 0 as soon as any lane
    /// input is 0, 1 iff all are 1, UNDEF otherwise; empty fold is 1).
    pub fn and_fold(inputs: impl IntoIterator<Item = PackedWord>) -> PackedWord {
        let mut acc = PackedWord::ONE;
        for w in inputs {
            let b = w.to_boolean();
            acc.lo |= b.lo;
            acc.hi &= b.hi;
        }
        acc
    }

    /// n-ary OR over boolean views (1 dominates; empty fold is 0).
    pub fn or_fold(inputs: impl IntoIterator<Item = PackedWord>) -> PackedWord {
        let mut acc = PackedWord::ZERO;
        for w in inputs {
            let b = w.to_boolean();
            acc.lo &= b.lo;
            acc.hi |= b.hi;
        }
        acc
    }

    /// n-ary NAND.
    pub fn nand_fold(inputs: impl IntoIterator<Item = PackedWord>) -> PackedWord {
        PackedWord::and_fold(inputs).not()
    }

    /// n-ary NOR.
    pub fn nor_fold(inputs: impl IntoIterator<Item = PackedWord>) -> PackedWord {
        PackedWord::or_fold(inputs).not()
    }

    /// n-ary XOR: strict — every input lane must be defined; empty fold
    /// is 0.
    pub fn xor_fold(inputs: impl IntoIterator<Item = PackedWord>) -> PackedWord {
        let mut all_defined = !0u64;
        let mut parity = 0u64;
        for w in inputs {
            let b = w.to_boolean();
            all_defined &= b.defined();
            parity ^= b.hi;
        }
        PackedWord {
            lo: (!parity & all_defined) | !all_defined,
            hi: (parity & all_defined) | !all_defined,
        }
    }

    /// Pairwise EQUAL of two equal-length bit vectors reduced to one
    /// lane-wise bit: a defined unequal pair dominates to 0, all pairs
    /// defined-equal gives 1, UNDEF otherwise (empty width gives 1).
    pub fn equal_reduce(a: &[PackedWord], b: &[PackedWord]) -> PackedWord {
        debug_assert_eq!(a.len(), b.len());
        let mut zero = 0u64;
        let mut all_eq = !0u64;
        for (&x, &y) in a.iter().zip(b) {
            let (x, y) = (x.to_boolean(), y.to_boolean());
            let dd = x.defined() & y.defined();
            let neq = x.hi ^ y.hi;
            zero |= dd & neq;
            all_eq &= dd & !neq;
        }
        PackedWord {
            lo: zero | !all_eq,
            hi: !zero,
        }
    }

    /// The IF (controlled switch) of §8 on the *raw* condition: a 0
    /// condition gives NOINFL, a 1 condition passes `data` through raw,
    /// an UNDEF or NOINFL condition gives UNDEF.
    pub fn if_select(cond: PackedWord, data: PackedWord) -> PackedWord {
        let zero = cond.lo & !cond.hi;
        let one = cond.hi & !cond.lo;
        let other = !(zero | one);
        PackedWord {
            lo: (data.lo & one) | other,
            hi: (data.hi & one) | other,
        }
    }

    /// Lane-wise bridge resolution (the scalar `resolve_bridge`):
    /// agreeing lanes win, a NOINFL side defers to the driven side,
    /// disagreement is UNDEF. Under the two-plane encoding all three
    /// cases collapse to ORing the planes: equal lanes are unchanged, a
    /// NOINFL side contributes no bits, and any two *distinct* active
    /// values necessarily cover both planes, which reads back as UNDEF.
    pub fn resolve_bridge(a: PackedWord, b: PackedWord) -> PackedWord {
        PackedWord {
            lo: a.lo | b.lo,
            hi: a.hi | b.hi,
        }
    }
}

/// A runtime single-active-assignment violation, per lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedConflict {
    /// The clock cycle in which the conflict occurred.
    pub cycle: u64,
    /// The conflicting net.
    pub net: NetId,
    /// Its hierarchical name.
    pub name: String,
    /// Mask of lanes in which the net was driven more than once.
    pub lanes: u64,
}

/// Result of simulating one packed clock cycle.
#[derive(Debug, Clone, Default)]
pub struct PackedCycleReport {
    /// The cycle number just completed (starting at 0).
    pub cycle: u64,
    /// Per-net conflict masks for this cycle.
    pub conflicts: Vec<PackedConflict>,
}

impl PackedCycleReport {
    /// True when no runtime check fired in any lane.
    pub fn is_clean(&self) -> bool {
        self.conflicts.is_empty()
    }
}

/// The packed 64-lane Zeus simulator: the levelized sweep of
/// [`crate::Simulator`] evaluated word-wide, with per-lane fault
/// injection for parallel-fault campaigns.
#[derive(Debug, Clone)]
pub struct PackedSim {
    design: Design,
    order: Vec<NodeId>,
    values: Vec<PackedWord>,
    /// Lanes driven at least once this cycle, per net.
    once: Vec<u64>,
    /// Lanes driven more than once this cycle (conflicts), per net.
    multi: Vec<u64>,
    regs: Vec<(NodeId, PackedWord)>,
    forced: HashMap<NetId, PackedWord>,
    cycle: u64,
    rng: StdRng,
    check_conflicts: bool,
    budget: StepBudget,
    /// Injected faults with their lane masks, in injection order.
    faults: Vec<(Fault, u64)>,
    /// Stuck-at-0 lanes per net index.
    stuck0: HashMap<usize, u64>,
    /// Stuck-at-1 lanes per net index.
    stuck1: HashMap<usize, u64>,
    /// Transient flips per net index: `(cycle, lanes)` entries.
    flips: HashMap<usize, Vec<(u64, u64)>>,
    /// Lanes flipping in the cycle being evaluated, per net index.
    flip_now: HashMap<usize, u64>,
    /// Injected bridges as `(a, b, lanes)` canonical net-index pairs.
    bridges: Vec<(usize, usize, u64)>,
    /// Presented bridge value per bridged net index: `(lanes, value)`.
    bridge_clamp: HashMap<usize, (u64, PackedWord)>,
    /// Natural (pre-clamp) value per bridged net index:
    /// `(bridged lanes, value)`.
    bridge_natural: HashMap<usize, (u64, PackedWord)>,
    /// Evaluation sweeps each lane needed in the last cycle (1 unless a
    /// bridge in that lane forced a fixpoint iteration). This is the
    /// per-lane analogue of the scalar `sweeps_last_cycle`, used for
    /// exact per-pattern fuel accounting.
    lane_sweeps: [u32; LANES],
    /// Lanes whose bridge resolution failed to converge last cycle.
    unstable_last_cycle: u64,
    /// Lanes whose bridge resolution ever failed to converge.
    ever_unstable: u64,
}

impl PackedSim {
    /// Builds a packed simulator with unlimited budgets.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic if the design's netlist has a combinational
    /// cycle (cannot happen for designs produced by `zeus-elab`).
    pub fn new(design: Design) -> Result<PackedSim, Diagnostic> {
        PackedSim::with_limits(design, &Limits::default())
    }

    /// [`PackedSim::new`] with explicit resource limits, enforced by
    /// [`PackedSim::try_step`]. Fuel is billed per pattern-*word*, i.e.
    /// one unit per node evaluation sweep regardless of how many of the
    /// 64 lanes are in use — the same rate as one scalar simulator.
    ///
    /// # Errors
    ///
    /// See [`PackedSim::new`].
    pub fn with_limits(design: Design, limits: &Limits) -> Result<PackedSim, Diagnostic> {
        let order = design.netlist.topo_order()?;
        let regs = design
            .netlist
            .registers()
            .map(|id| (id, PackedWord::UNDEF))
            .collect();
        let n = design.netlist.net_count();
        let mut sim = PackedSim {
            design,
            order,
            values: vec![PackedWord::NOINFL; n],
            once: vec![0; n],
            multi: vec![0; n],
            regs,
            forced: HashMap::new(),
            cycle: 0,
            rng: StdRng::seed_from_u64(0x2E05_1983),
            check_conflicts: true,
            budget: StepBudget::new(limits),
            faults: Vec::new(),
            stuck0: HashMap::new(),
            stuck1: HashMap::new(),
            flips: HashMap::new(),
            flip_now: HashMap::new(),
            bridges: Vec::new(),
            bridge_clamp: HashMap::new(),
            bridge_natural: HashMap::new(),
            lane_sweeps: [1; LANES],
            unstable_last_cycle: 0,
            ever_unstable: 0,
        };
        if let Some(clk) = sim.design.clk {
            sim.forced.insert(clk, PackedWord::ONE);
        }
        if let Some(rset) = sim.design.rset {
            sim.forced.insert(rset, PackedWord::ZERO);
        }
        Ok(sim)
    }

    /// The elaborated design being simulated.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The number of combinational node evaluations per sweep (the unit
    /// the scalar simulator charges fuel in).
    pub fn order_len(&self) -> usize {
        self.order.len()
    }

    /// Reseeds the RANDOM source. One bit is drawn per RANDOM node per
    /// sweep and broadcast to all lanes, so each lane sees the same
    /// stream a scalar [`crate::Simulator`] with this seed sees.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Enables or disables the runtime single-assignment check.
    pub fn set_conflict_checking(&mut self, on: bool) {
        self.check_conflicts = on;
    }

    /// Forces a net to a packed word (holds until changed).
    pub fn force(&mut self, net: NetId, w: PackedWord) {
        self.forced.insert(net, w);
    }

    /// Stops forcing a net.
    pub fn release(&mut self, net: NetId) {
        self.forced.remove(&net);
    }

    /// Drives the predefined RSET signal in every lane.
    pub fn set_rset(&mut self, v: bool) {
        if let Some(r) = self.design.rset {
            self.forced
                .insert(r, PackedWord::splat(Value::from_bool(v)));
        }
    }

    /// Drives the predefined CLK signal in every lane.
    pub fn set_clk(&mut self, v: bool) {
        if let Some(c) = self.design.clk {
            self.forced
                .insert(c, PackedWord::splat(Value::from_bool(v)));
        }
    }

    /// Sets a whole port in every lane (bit 1 first, LSB-first).
    ///
    /// # Errors
    ///
    /// Returns a diagnostic if the port does not exist or the width does
    /// not match.
    pub fn set_port(&mut self, name: &str, bits: &[Value]) -> Result<(), Diagnostic> {
        let port = self
            .design
            .port(name)
            .ok_or_else(|| Diagnostic::error(Span::dummy(), format!("no port named '{name}'")))?;
        if port.nets.len() != bits.len() {
            return Err(Diagnostic::error(
                Span::dummy(),
                format!(
                    "port '{name}' has {} bits but {} values were given",
                    port.nets.len(),
                    bits.len()
                ),
            ));
        }
        let nets = port.nets.clone();
        for (net, &v) in nets.into_iter().zip(bits) {
            self.forced.insert(net, PackedWord::splat(v));
        }
        Ok(())
    }

    /// Sets a port from an unsigned number in every lane (LSB at bit 1).
    ///
    /// # Errors
    ///
    /// See [`PackedSim::set_port`]; also errors when the value does not
    /// fit.
    pub fn set_port_num(&mut self, name: &str, v: u64) -> Result<(), Diagnostic> {
        let width = self
            .design
            .port(name)
            .ok_or_else(|| Diagnostic::error(Span::dummy(), format!("no port named '{name}'")))?
            .nets
            .len();
        if width < 64 && v >= (1u64 << width) {
            return Err(Diagnostic::error(
                Span::dummy(),
                format!("value {v} does not fit in the {width}-bit port '{name}'"),
            ));
        }
        let bits: Vec<Value> = (0..width)
            .map(|i| Value::from_bool((v >> i) & 1 == 1))
            .collect();
        self.set_port(name, &bits)
    }

    /// Reads one lane of a port (boolean view, like
    /// [`crate::Simulator::port`]).
    pub fn port_lane(&self, name: &str, lane: usize) -> Vec<Value> {
        match self.design.port(name) {
            Some(p) => p
                .nets
                .iter()
                .map(|&n| self.value(n).get(lane).to_boolean())
                .collect(),
            None => Vec::new(),
        }
    }

    /// Raw resolved packed value of a net in the current cycle.
    pub fn value(&self, net: NetId) -> PackedWord {
        let rep = self.design.netlist.find_ref(net);
        self.values[rep.index()]
    }

    /// Raw resolved value of a net in one lane.
    pub fn value_lane(&self, net: NetId, lane: usize) -> Value {
        self.value(net).get(lane)
    }

    /// Number of cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Evaluation sweeps each lane needed in the last cycle.
    pub fn lane_sweeps(&self) -> &[u32; LANES] {
        &self.lane_sweeps
    }

    /// Mask of lanes whose bridge resolution oscillated last cycle.
    pub fn unstable_last_cycle(&self) -> u64 {
        self.unstable_last_cycle
    }

    /// Mask of lanes whose bridge resolution ever oscillated since
    /// construction or [`PackedSim::reset_state`] (the per-lane analogue
    /// of [`crate::Simulator::first_unstable_cycle`]`.is_some()`).
    pub fn ever_unstable(&self) -> u64 {
        self.ever_unstable
    }

    /// Injects a fault into every lane.
    ///
    /// # Errors
    ///
    /// See [`PackedSim::inject_lanes`].
    pub fn inject(&mut self, fault: Fault) -> Result<(), Diagnostic> {
        self.inject_lanes(fault, !0)
    }

    /// Injects a fault into the lanes of `lanes` only — the key operation
    /// of a parallel-fault campaign: 64 *different* faulty circuits share
    /// one packed sweep, one fault per lane. Like the scalar simulator,
    /// sites are canonicalized and clamps override the natural drive
    /// without counting as extra active drivers; faults survive
    /// [`PackedSim::reset_state`].
    ///
    /// # Errors
    ///
    /// Returns a diagnostic when the site (or bridge peer) is not a net
    /// of this design.
    pub fn inject_lanes(&mut self, fault: Fault, lanes: u64) -> Result<(), Diagnostic> {
        let n = self.design.netlist.net_count();
        let canon = |net: NetId| -> Result<NetId, Diagnostic> {
            if net.index() >= n {
                return Err(Diagnostic::error(
                    Span::dummy(),
                    format!("fault site {net} is not a net of this design ({n} nets)"),
                ));
            }
            Ok(self.design.netlist.find_ref(net))
        };
        let site = canon(fault.site)?;
        let kind = match fault.kind {
            FaultKind::BridgeWith(other) => FaultKind::BridgeWith(canon(other)?),
            k => k,
        };
        match kind {
            FaultKind::StuckAt0 => {
                // A later stuck-at on the same lane wins, like the scalar
                // HashMap insert.
                if let Some(m) = self.stuck1.get_mut(&site.index()) {
                    *m &= !lanes;
                }
                *self.stuck0.entry(site.index()).or_insert(0) |= lanes;
            }
            FaultKind::StuckAt1 => {
                if let Some(m) = self.stuck0.get_mut(&site.index()) {
                    *m &= !lanes;
                }
                *self.stuck1.entry(site.index()).or_insert(0) |= lanes;
            }
            FaultKind::TransientFlip { cycle } => {
                let entries = self.flips.entry(site.index()).or_default();
                for (_, m) in entries.iter_mut() {
                    *m &= !lanes;
                }
                entries.push((cycle, lanes));
            }
            FaultKind::BridgeWith(other) => {
                if other != site {
                    self.bridges.push((site.index(), other.index(), lanes));
                    for i in [site.index(), other.index()] {
                        let e = self
                            .bridge_natural
                            .entry(i)
                            .or_insert((0, PackedWord::NOINFL));
                        e.0 |= lanes;
                    }
                }
            }
        }
        self.faults.push((Fault { site, kind }, lanes));
        Ok(())
    }

    /// Removes all injected faults from all lanes.
    pub fn clear_faults(&mut self) {
        self.faults.clear();
        self.stuck0.clear();
        self.stuck1.clear();
        self.flips.clear();
        self.flip_now.clear();
        self.bridges.clear();
        self.bridge_clamp.clear();
        self.bridge_natural.clear();
        self.unstable_last_cycle = 0;
        self.ever_unstable = 0;
    }

    /// The injected faults with their lane masks, in injection order.
    pub fn injected_faults(&self) -> &[(Fault, u64)] {
        &self.faults
    }

    /// Resets registers to UNDEF in every lane, the cycle counter to 0,
    /// and clears every outstanding force (restoring the default CLK/RSET
    /// drives). Injected faults are *not* cleared, matching
    /// [`crate::Simulator::reset_state`].
    pub fn reset_state(&mut self) {
        for (_, w) in &mut self.regs {
            *w = PackedWord::UNDEF;
        }
        self.cycle = 0;
        self.forced.clear();
        if let Some(clk) = self.design.clk {
            self.forced.insert(clk, PackedWord::ONE);
        }
        if let Some(rset) = self.design.rset {
            self.forced.insert(rset, PackedWord::ZERO);
        }
        self.bridge_clamp.clear();
        for (_, nat) in self.bridge_natural.values_mut() {
            *nat = PackedWord::NOINFL;
        }
        self.unstable_last_cycle = 0;
        self.ever_unstable = 0;
    }

    /// Simulates one packed clock cycle: one levelized sweep for all 64
    /// lanes (with the bridge fixpoint re-sweeping lanes that need it),
    /// then latches registers lane-wise and reports conflicts.
    pub fn step(&mut self) -> PackedCycleReport {
        self.flip_now.clear();
        for (&i, entries) in &self.flips {
            let mut m = 0u64;
            for &(c, lanes) in entries {
                if c == self.cycle {
                    m |= lanes;
                }
            }
            if m != 0 {
                self.flip_now.insert(i, m);
            }
        }

        if self.faults.is_empty() {
            self.lane_sweeps = [1; LANES];
            self.unstable_last_cycle = 0;
            self.eval_cycle(false);
        } else {
            self.eval_cycle_faulty();
        }

        // Latch registers lane-wise: a lane keeps its stored value when
        // its input lane is NOINFL (§5.1).
        for i in 0..self.regs.len() {
            let (node, _) = self.regs[i];
            let inp = self.design.netlist.nodes[node.index()].inputs[0];
            let v = self.values[inp.index()];
            let m = v.active();
            let r = &mut self.regs[i].1;
            *r = v.select(m, *r);
        }

        let mut conflicts = Vec::new();
        if self.check_conflicts {
            for (i, &m) in self.multi.iter().enumerate() {
                if m != 0 {
                    conflicts.push(PackedConflict {
                        cycle: self.cycle,
                        net: NetId(i as u32),
                        name: self.design.netlist.nets[i].name.clone(),
                        lanes: m,
                    });
                }
            }
        }
        let report = PackedCycleReport {
            cycle: self.cycle,
            conflicts,
        };
        self.cycle += 1;
        report
    }

    /// Budget-checked [`PackedSim::step`]: bills the [`Limits`] fuel per
    /// pattern-word — `order_len` units per sweep, exactly what one
    /// scalar [`crate::Simulator::try_step`] would bill for the same
    /// cycle, never 64×. Re-sweeps are billed at the *maximum* lane sweep
    /// count, since the word re-evaluates all lanes together.
    ///
    /// # Errors
    ///
    /// `Z908` when the step budget is exhausted, `Z904`/`Z905` for fuel
    /// and deadline.
    pub fn try_step(&mut self) -> Result<PackedCycleReport, Diagnostic> {
        self.budget.begin_cycle()?;
        self.budget.charge_work(self.order.len() as u64)?;
        let report = self.step();
        let max_sweeps = *self.lane_sweeps.iter().max().unwrap_or(&1);
        if max_sweeps > 1 {
            self.budget
                .charge_work((max_sweeps as u64 - 1) * self.order.len() as u64)?;
        }
        Ok(report)
    }

    /// Runs `n` cycles, returning the last report.
    pub fn run(&mut self, n: usize) -> PackedCycleReport {
        let mut last = PackedCycleReport::default();
        for _ in 0..n {
            last = self.step();
        }
        last
    }

    /// One full packed evaluation sweep (the word-wide analogue of the
    /// scalar `eval_cycle`).
    fn eval_cycle(&mut self, faulty: bool) {
        self.values.fill(PackedWord::NOINFL);
        self.once.fill(0);
        self.multi.fill(0);
        if faulty {
            // Clamps apply even to nets nothing drives this cycle.
            for (&i, &m) in &self.stuck0 {
                self.values[i] = PackedWord::ZERO.select(m, self.values[i]);
            }
            for (&i, &m) in &self.stuck1 {
                self.values[i] = PackedWord::ONE.select(m, self.values[i]);
            }
            for (&i, &(m, v)) in &self.bridge_clamp {
                self.values[i] = v.select(m, self.values[i]);
            }
            for (_, nat) in self.bridge_natural.values_mut() {
                *nat = PackedWord::NOINFL;
            }
        }

        let forced: Vec<(NetId, PackedWord)> = self.forced.iter().map(|(&n, &v)| (n, v)).collect();
        for (net, v) in forced {
            self.drive(net, v, faulty);
        }
        for i in 0..self.regs.len() {
            let (node, v) = self.regs[i];
            let out = self.design.netlist.nodes[node.index()].output;
            self.drive(out, v, faulty);
        }

        for i in 0..self.order.len() {
            let node_id = self.order[i];
            let node = &self.design.netlist.nodes[node_id.index()];
            let out = node.output;
            let v = match &node.op {
                NodeOp::And => {
                    PackedWord::and_fold(node.inputs.iter().map(|&n| self.values[n.index()]))
                }
                NodeOp::Or => {
                    PackedWord::or_fold(node.inputs.iter().map(|&n| self.values[n.index()]))
                }
                NodeOp::Nand => {
                    PackedWord::nand_fold(node.inputs.iter().map(|&n| self.values[n.index()]))
                }
                NodeOp::Nor => {
                    PackedWord::nor_fold(node.inputs.iter().map(|&n| self.values[n.index()]))
                }
                NodeOp::Xor => {
                    PackedWord::xor_fold(node.inputs.iter().map(|&n| self.values[n.index()]))
                }
                NodeOp::Not => self.values[node.inputs[0].index()].not(),
                NodeOp::Equal { width } => {
                    let (a, b) = node.inputs.split_at(*width);
                    let av: Vec<PackedWord> = a.iter().map(|&n| self.values[n.index()]).collect();
                    let bv: Vec<PackedWord> = b.iter().map(|&n| self.values[n.index()]).collect();
                    PackedWord::equal_reduce(&av, &bv)
                }
                NodeOp::Buf => self.values[node.inputs[0].index()],
                NodeOp::If => PackedWord::if_select(
                    self.values[node.inputs[0].index()],
                    self.values[node.inputs[1].index()],
                ),
                NodeOp::Const(v) => PackedWord::splat(*v),
                NodeOp::Random => PackedWord::splat(Value::from_bool(self.rng.gen())),
                NodeOp::Reg => continue,
            };
            self.drive(out, v, faulty);
        }
    }

    /// Packed evaluation under injected faults: the bridge fixpoint of
    /// the scalar `eval_cycle_faulty`, tracked *per lane*. Each lane has
    /// its own sweep cap (`2 * bridges-in-lane + 2`); a lane that settles
    /// stops counting while unsettled lanes keep iterating, and a lane
    /// that hits its cap is X-filled and given exactly one more sweep —
    /// so `lane_sweeps[l]` equals the scalar `sweeps_last_cycle` of a
    /// one-fault simulator running lane `l` alone.
    fn eval_cycle_faulty(&mut self) {
        let rng_start = self.rng.clone();
        self.unstable_last_cycle = 0;
        self.bridge_clamp.clear();

        let mut cap = [2u32; LANES];
        let mut bridge_lanes = 0u64;
        for &(_, _, lanes) in &self.bridges {
            bridge_lanes |= lanes;
            for (l, c) in cap.iter_mut().enumerate() {
                if (lanes >> l) & 1 == 1 {
                    *c += 2;
                }
            }
        }

        let mut settled = [1u32; LANES];
        let mut pending = bridge_lanes;
        let mut sweeps: u32 = 0;
        loop {
            self.rng = rng_start.clone();
            self.eval_cycle(true);
            sweeps += 1;
            if self.bridges.is_empty() {
                break;
            }

            // Stability check and clamp update, bridge by bridge (the
            // same pass structure as the scalar loop, lane-masked).
            let mut unstable = 0u64;
            let bridges = self.bridges.clone();
            for (a, b, lanes) in bridges {
                let na = self.natural_of(a, lanes);
                let nb = self.natural_of(b, lanes);
                let res = PackedWord::resolve_bridge(na, nb);
                for i in [a, b] {
                    unstable |= lanes & self.values[i].diff(res);
                    let e = self
                        .bridge_clamp
                        .entry(i)
                        .or_insert((0, PackedWord::NOINFL));
                    e.0 = (e.0 & !lanes) | (res.active() & lanes);
                    e.1 = res.select(lanes, e.1);
                }
            }

            let newly = pending & !unstable;
            for (l, s) in settled.iter_mut().enumerate() {
                if (newly >> l) & 1 == 1 {
                    *s = sweeps;
                }
            }
            pending &= unstable;
            if pending == 0 {
                break;
            }

            // Lanes over their cap oscillate: X-fill their bridge ends
            // and give them one final sweep.
            let mut overdue = 0u64;
            for (l, &c) in cap.iter().enumerate() {
                if (pending >> l) & 1 == 1 && sweeps >= c {
                    overdue |= 1 << l;
                }
            }
            if overdue != 0 {
                self.unstable_last_cycle |= overdue;
                self.ever_unstable |= overdue;
                let bridges = self.bridges.clone();
                for (a, b, lanes) in bridges {
                    let x = lanes & overdue;
                    if x == 0 {
                        continue;
                    }
                    for i in [a, b] {
                        let e = self
                            .bridge_clamp
                            .entry(i)
                            .or_insert((0, PackedWord::NOINFL));
                        e.0 |= x;
                        e.1.lo |= x;
                        e.1.hi |= x;
                    }
                }
                pending &= !overdue;
                for (l, s) in settled.iter_mut().enumerate() {
                    if (overdue >> l) & 1 == 1 {
                        *s = sweeps + 1;
                    }
                }
                if pending == 0 {
                    // The dedicated final sweep for the X-filled lanes
                    // (already counted into their `settled` stamps).
                    self.rng = rng_start.clone();
                    self.eval_cycle(true);
                    break;
                }
                // Other lanes are still iterating: the next loop sweep
                // doubles as the final sweep for the X-filled lanes.
            }
        }
        self.lane_sweeps = settled;
    }

    /// The recorded natural value of a bridged net, restricted to the
    /// given lanes (unrecorded lanes read NOINFL, like the scalar
    /// `bridge_natural` default).
    fn natural_of(&self, i: usize, lanes: u64) -> PackedWord {
        match self.bridge_natural.get(&i) {
            Some(&(_, nat)) => PackedWord {
                lo: nat.lo & lanes,
                hi: nat.hi & lanes,
            },
            None => PackedWord::NOINFL,
        }
    }

    /// Lane-masked drive of one net (the word-wide analogue of the
    /// scalar `drive`): inactive lanes do not count as drivers, a second
    /// active drive in a lane makes that lane UNDEF for the rest of the
    /// cycle, and fault clamps re-apply after every active drive.
    fn drive(&mut self, net: NetId, v: PackedWord, faulty: bool) {
        let m = v.active();
        if m == 0 {
            return;
        }
        let i = net.index();
        let w = &mut self.values[i];
        if self.check_conflicts {
            let dup = self.once[i] & m;
            self.multi[i] |= dup;
            self.once[i] |= m;
            *w = v.select(m, *w);
            w.lo |= self.multi[i];
            w.hi |= self.multi[i];
        } else {
            *w = v.select(m, *w);
        }
        if faulty {
            self.apply_fault_clamp(i, m);
        }
    }

    /// Re-applies the fault clamps to net `i` on the lanes of `m` (the
    /// lanes this drive was active in). Mirrors the scalar
    /// `apply_fault_clamp`: stuck wins outright, a transient flip inverts
    /// the resolved value in its cycle, bridges record the natural value
    /// and present the currently resolved bridge value.
    fn apply_fault_clamp(&mut self, i: usize, m: u64) {
        let s0 = self.stuck0.get(&i).copied().unwrap_or(0);
        let s1 = self.stuck1.get(&i).copied().unwrap_or(0);
        let s = s0 | s1;
        let w = &mut self.values[i];
        if s != 0 {
            w.lo = (w.lo & !s) | s0;
            w.hi = (w.hi & !s) | s1;
        }
        let f = self.flip_now.get(&i).copied().unwrap_or(0) & m & !s;
        if f != 0 {
            let n = w.not();
            *w = n.select(f, *w);
        }
        // Single lookup: reading the resolved value before taking the
        // mutable borrow keeps the natural-value update self-contained
        // (no second lookup whose failure would have to panic).
        let cur = self.values[i];
        let bridged = match self.bridge_natural.get_mut(&i) {
            Some(e) => {
                let rec = e.0 & m;
                if rec != 0 {
                    e.1 = cur.select(rec, e.1);
                }
                true
            }
            None => false,
        };
        if bridged {
            if let Some(&(cm, cv)) = self.bridge_clamp.get(&i) {
                let c = cm & m;
                if c != 0 {
                    self.values[i] = cv.select(c, self.values[i]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use proptest::prelude::*;
    use zeus_elab::elaborate;
    use zeus_sema::value;
    use zeus_syntax::parse_program;

    const ALL: [Value; 4] = [Value::Zero, Value::One, Value::Undef, Value::NoInfl];

    /// A word whose lane `i` holds `vals[i % vals.len()]` — lanes
    /// enumerate a cross product when the callers stride the inputs.
    fn lanes_of(vals: &[Value]) -> PackedWord {
        let mut w = PackedWord::NOINFL;
        for l in 0..LANES {
            w.set(l, vals[l % vals.len()]);
        }
        w
    }

    /// Two words whose lanes together enumerate all 16 value pairs.
    fn all_pairs() -> (PackedWord, PackedWord, Vec<(Value, Value)>) {
        let mut a = PackedWord::NOINFL;
        let mut b = PackedWord::NOINFL;
        let mut pairs = Vec::new();
        for (l, (x, y)) in ALL
            .iter()
            .flat_map(|&x| ALL.iter().map(move |&y| (x, y)))
            .enumerate()
        {
            a.set(l, x);
            b.set(l, y);
            pairs.push((x, y));
        }
        (a, b, pairs)
    }

    #[test]
    fn splat_get_set_round_trip() {
        for &v in &ALL {
            let w = PackedWord::splat(v);
            for l in 0..LANES {
                assert_eq!(w.get(l), v);
            }
        }
        let mut w = PackedWord::NOINFL;
        for (l, &v) in ALL.iter().cycle().take(LANES).enumerate() {
            w.set(l, v);
        }
        for l in 0..LANES {
            assert_eq!(w.get(l), ALL[l % 4]);
        }
    }

    #[test]
    fn not_matches_scalar_table() {
        let w = lanes_of(&ALL);
        let n = w.not();
        for l in 0..LANES {
            assert_eq!(n.get(l), w.get(l).not(), "lane {l}");
        }
    }

    #[test]
    fn boolean_view_matches_scalar() {
        let w = lanes_of(&ALL);
        let b = w.to_boolean();
        for l in 0..LANES {
            assert_eq!(b.get(l), w.get(l).to_boolean());
        }
    }

    #[test]
    fn binary_gates_match_scalar_truth_tables() {
        let (a, b, pairs) = all_pairs();
        let and = PackedWord::and_fold([a, b]);
        let or = PackedWord::or_fold([a, b]);
        let nand = PackedWord::nand_fold([a, b]);
        let nor = PackedWord::nor_fold([a, b]);
        let xor = PackedWord::xor_fold([a, b]);
        for (l, &(x, y)) in pairs.iter().enumerate() {
            assert_eq!(and.get(l), value::and([x, y]), "AND({x},{y})");
            assert_eq!(or.get(l), value::or([x, y]), "OR({x},{y})");
            assert_eq!(nand.get(l), value::nand([x, y]), "NAND({x},{y})");
            assert_eq!(nor.get(l), value::nor([x, y]), "NOR({x},{y})");
            assert_eq!(xor.get(l), value::xor([x, y]), "XOR({x},{y})");
        }
    }

    #[test]
    fn empty_folds_have_neutral_elements() {
        assert_eq!(PackedWord::and_fold([]), PackedWord::ONE);
        assert_eq!(PackedWord::or_fold([]), PackedWord::ZERO);
        assert_eq!(PackedWord::xor_fold([]), PackedWord::ZERO);
    }

    #[test]
    fn ternary_gates_match_scalar() {
        // All 64 (x, y, z) triples, one per lane.
        let mut a = PackedWord::NOINFL;
        let mut b = PackedWord::NOINFL;
        let mut c = PackedWord::NOINFL;
        let mut triples = Vec::new();
        for (l, ((x, y), z)) in ALL
            .iter()
            .flat_map(|&x| ALL.iter().map(move |&y| (x, y)))
            .flat_map(|p| ALL.iter().map(move |&z| (p, z)))
            .enumerate()
        {
            a.set(l, x);
            b.set(l, y);
            c.set(l, z);
            triples.push((x, y, z));
        }
        let and = PackedWord::and_fold([a, b, c]);
        let or = PackedWord::or_fold([a, b, c]);
        let xor = PackedWord::xor_fold([a, b, c]);
        for (l, &(x, y, z)) in triples.iter().enumerate() {
            assert_eq!(and.get(l), value::and([x, y, z]));
            assert_eq!(or.get(l), value::or([x, y, z]));
            assert_eq!(xor.get(l), value::xor([x, y, z]));
        }
    }

    #[test]
    fn if_select_matches_scalar_semantics() {
        let (cond, data, pairs) = all_pairs();
        let out = PackedWord::if_select(cond, data);
        for (l, &(c, d)) in pairs.iter().enumerate() {
            let expect = match c {
                Value::Zero => Value::NoInfl,
                Value::One => d,
                _ => Value::Undef,
            };
            assert_eq!(out.get(l), expect, "IF({c}, {d})");
        }
    }

    #[test]
    fn bridge_resolution_matches_scalar() {
        let (a, b, pairs) = all_pairs();
        let res = PackedWord::resolve_bridge(a, b);
        for (l, &(x, y)) in pairs.iter().enumerate() {
            let expect = if x == y {
                x
            } else if x == Value::NoInfl {
                y
            } else if y == Value::NoInfl {
                x
            } else {
                Value::Undef
            };
            assert_eq!(res.get(l), expect, "resolve({x},{y})");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random n-ary gate folds agree with the scalar fold lane by
        /// lane (NOINFL propagation included: inputs range over all four
        /// values).
        #[test]
        fn nary_folds_match_scalar(
            arity in 1usize..6,
            seed in any::<u64>(),
        ) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let inputs: Vec<PackedWord> = (0..arity)
                .map(|_| {
                    let mut w = PackedWord::NOINFL;
                    for l in 0..LANES {
                        w.set(l, ALL[rng.gen_range(0..4usize)]);
                    }
                    w
                })
                .collect();
            let and = PackedWord::and_fold(inputs.iter().copied());
            let or = PackedWord::or_fold(inputs.iter().copied());
            let nand = PackedWord::nand_fold(inputs.iter().copied());
            let nor = PackedWord::nor_fold(inputs.iter().copied());
            let xor = PackedWord::xor_fold(inputs.iter().copied());
            for l in 0..LANES {
                let scalars: Vec<Value> = inputs.iter().map(|w| w.get(l)).collect();
                prop_assert_eq!(and.get(l), value::and(scalars.iter().copied()));
                prop_assert_eq!(or.get(l), value::or(scalars.iter().copied()));
                prop_assert_eq!(nand.get(l), value::nand(scalars.iter().copied()));
                prop_assert_eq!(nor.get(l), value::nor(scalars.iter().copied()));
                prop_assert_eq!(xor.get(l), value::xor(scalars.iter().copied()));
            }
        }

        /// EQUAL over random widths agrees with the scalar reduction.
        #[test]
        fn equal_reduce_matches_scalar(
            width in 0usize..5,
            seed in any::<u64>(),
        ) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut draw = |_| {
                let mut w = PackedWord::NOINFL;
                for l in 0..LANES {
                    w.set(l, ALL[rng.gen_range(0..4usize)]);
                }
                w
            };
            let a: Vec<PackedWord> = (0..width).map(&mut draw).collect();
            let b: Vec<PackedWord> = (0..width).map(&mut draw).collect();
            let out = PackedWord::equal_reduce(&a, &b);
            for l in 0..LANES {
                let av: Vec<Value> = a.iter().map(|w| w.get(l)).collect();
                let bv: Vec<Value> = b.iter().map(|w| w.get(l)).collect();
                prop_assert_eq!(out.get(l), value::equal(&av, &bv), "lane {}", l);
            }
        }

        /// Driver resolution: merging random drive sequences through the
        /// packed conflict masks agrees with the scalar `Resolution` fold
        /// in every lane.
        #[test]
        fn packed_drive_matches_scalar_resolution(
            drivers in 1usize..5,
            seed in any::<u64>(),
        ) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let contribs: Vec<PackedWord> = (0..drivers)
                .map(|_| {
                    let mut w = PackedWord::NOINFL;
                    for l in 0..LANES {
                        w.set(l, ALL[rng.gen_range(0..4usize)]);
                    }
                    w
                })
                .collect();
            // Replay the packed drive merge.
            let mut value = PackedWord::NOINFL;
            let mut once = 0u64;
            let mut multi = 0u64;
            for v in &contribs {
                let m = v.active();
                if m == 0 {
                    continue;
                }
                let dup = once & m;
                multi |= dup;
                once |= m;
                value = v.select(m, value);
                value.lo |= multi;
                value.hi |= multi;
            }
            for l in 0..LANES {
                let r = value::resolve(contribs.iter().map(|w| w.get(l)));
                prop_assert_eq!(value.get(l), r.value, "lane {}", l);
                prop_assert_eq!((multi >> l) & 1 == 1, r.conflicted(), "lane {}", l);
            }
        }
    }

    // ------------------------------------------------------------------
    // Whole-simulator equivalence on small designs
    // ------------------------------------------------------------------

    fn design(src: &str, top: &str) -> Design {
        elaborate(&parse_program(src).expect("parse"), top, &[]).expect("elaborate")
    }

    const HALFADDER: &str = "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS \
         BEGIN s := XOR(a,b); cout := AND(a,b) END;";

    #[test]
    fn packed_halfadder_matches_scalar_per_lane() {
        let d = design(HALFADDER, "halfadder");
        let mut packed = PackedSim::new(d.clone()).unwrap();
        // Lane layout: lane = a + 4*b over all 16 (a,b) value pairs.
        let (a, b, pairs) = all_pairs();
        let na = d.names["halfadder.a"];
        let nb = d.names["halfadder.b"];
        packed.force(na, a);
        packed.force(nb, b);
        packed.step();
        for (l, &(x, y)) in pairs.iter().enumerate() {
            let mut scalar = Simulator::new(d.clone()).unwrap();
            scalar.force(na, x);
            scalar.force(nb, y);
            scalar.step();
            assert_eq!(
                packed.port_lane("s", l),
                scalar.port("s"),
                "s lane {l}: a={x} b={y}"
            );
            assert_eq!(packed.port_lane("cout", l), scalar.port("cout"));
        }
    }

    #[test]
    fn packed_register_latches_per_lane() {
        let d = design(
            "TYPE t = COMPONENT (IN d, en: boolean; OUT q: boolean) IS \
             SIGNAL r: REG; \
             BEGIN IF en THEN r.in := d END; q := r.out END;",
            "t",
        );
        let mut sim = PackedSim::new(d.clone()).unwrap();
        let nd = d.names["t.d"];
        let ne = d.names["t.en"];
        // Lane 0 latches 1, lane 1 keeps UNDEF (enable low → NOINFL in).
        let mut dw = PackedWord::NOINFL;
        dw.set(0, Value::One);
        dw.set(1, Value::One);
        let mut en = PackedWord::NOINFL;
        en.set(0, Value::One);
        en.set(1, Value::Zero);
        sim.force(nd, dw);
        sim.force(ne, en);
        sim.step();
        sim.step();
        assert_eq!(sim.port_lane("q", 0), vec![Value::One]);
        assert_eq!(sim.port_lane("q", 1), vec![Value::Undef]);
    }

    #[test]
    fn per_lane_stuck_faults_are_independent() {
        let d = design(HALFADDER, "halfadder");
        let mut sim = PackedSim::new(d.clone()).unwrap();
        let cout = d.names["halfadder.cout"];
        sim.inject_lanes(Fault::stuck_at_1(cout), 1 << 3).unwrap();
        sim.set_port("a", &[Value::Zero]).unwrap();
        sim.set_port("b", &[Value::Zero]).unwrap();
        sim.step();
        assert_eq!(sim.port_lane("cout", 3), vec![Value::One], "faulty lane");
        assert_eq!(sim.port_lane("cout", 0), vec![Value::Zero], "clean lane");
        assert_eq!(sim.port_lane("cout", 63), vec![Value::Zero]);
    }

    #[test]
    fn per_lane_transient_flip_hits_one_cycle() {
        let d = design(HALFADDER, "halfadder");
        let mut sim = PackedSim::new(d.clone()).unwrap();
        let s = d.names["halfadder.s"];
        sim.inject_lanes(Fault::transient_flip(s, 1), 1 << 7)
            .unwrap();
        sim.set_port("a", &[Value::One]).unwrap();
        sim.set_port("b", &[Value::Zero]).unwrap();
        sim.step();
        assert_eq!(sim.port_lane("s", 7), vec![Value::One], "cycle 0: no flip");
        sim.step();
        assert_eq!(sim.port_lane("s", 7), vec![Value::Zero], "cycle 1: SEU");
        assert_eq!(sim.port_lane("s", 6), vec![Value::One], "clean lane");
        sim.step();
        assert_eq!(sim.port_lane("s", 7), vec![Value::One], "cycle 2: gone");
    }

    #[test]
    fn per_lane_bridge_matches_scalar() {
        let d = design(HALFADDER, "halfadder");
        let cout = d.names["halfadder.cout"];
        let s = d.names["halfadder.s"];
        let mut packed = PackedSim::new(d.clone()).unwrap();
        packed.inject_lanes(Fault::bridge(cout, s), 1 << 5).unwrap();
        for (a, b) in [(true, false), (true, true), (false, false)] {
            let mut scalar = Simulator::new(d.clone()).unwrap();
            scalar.inject(Fault::bridge(cout, s)).unwrap();
            scalar.set_port_bit("a", Value::from_bool(a)).unwrap();
            scalar.set_port_bit("b", Value::from_bool(b)).unwrap();
            scalar.step();
            packed.set_port("a", &[Value::from_bool(a)]).unwrap();
            packed.set_port("b", &[Value::from_bool(b)]).unwrap();
            packed.step();
            assert_eq!(packed.port_lane("s", 5), scalar.port("s"), "a={a} b={b}");
            assert_eq!(packed.port_lane("cout", 5), scalar.port("cout"));
            // A clean lane sees the fault-free values.
            let mut clean = Simulator::new(d.clone()).unwrap();
            clean.set_port_bit("a", Value::from_bool(a)).unwrap();
            clean.set_port_bit("b", Value::from_bool(b)).unwrap();
            clean.step();
            assert_eq!(packed.port_lane("s", 0), clean.port("s"));
            assert_eq!(
                packed.lane_sweeps()[5],
                scalar.sweeps_last_cycle(),
                "lane 5 sweep count must match the scalar fixpoint"
            );
        }
    }

    #[test]
    fn packed_conflicts_match_scalar_lanes() {
        let d = design(
            "TYPE t = COMPONENT (IN a,b: boolean; OUT q: boolean) IS \
             SIGNAL h: multiplex; \
             BEGIN IF a THEN h := 1 END; IF b THEN h := 0 END; q := h END;",
            "t",
        );
        let mut sim = PackedSim::new(d.clone()).unwrap();
        let na = d.names["t.a"];
        let nb = d.names["t.b"];
        // Lane 0: both switches closed (conflict); lane 1: only one;
        // other lanes: both open (a NOINFL condition would make the IF
        // contribute UNDEF and conflict, like the scalar engine).
        let mut a = PackedWord::ZERO;
        a.set(0, Value::One);
        a.set(1, Value::One);
        let mut b = PackedWord::ZERO;
        b.set(0, Value::One);
        sim.force(na, a);
        sim.force(nb, b);
        let r = sim.step();
        assert_eq!(r.conflicts.len(), 1);
        assert_eq!(r.conflicts[0].lanes, 1, "only lane 0 conflicts");
        assert_eq!(sim.port_lane("q", 0), vec![Value::Undef]);
        assert_eq!(sim.port_lane("q", 1), vec![Value::One]);
    }

    #[test]
    fn random_broadcast_matches_scalar_stream() {
        let d = design(
            "TYPE t = COMPONENT (IN a: boolean; OUT q: boolean) IS \
             BEGIN q := RANDOM() END;",
            "t",
        );
        let mut packed = PackedSim::new(d.clone()).unwrap();
        let mut scalar = Simulator::new(d).unwrap();
        packed.reseed(99);
        scalar.reseed(99);
        for cyc in 0..32 {
            packed.step();
            scalar.step();
            assert_eq!(packed.port_lane("q", 17), scalar.port("q"), "cycle {cyc}");
        }
    }

    #[test]
    fn packed_budget_bills_per_word() {
        let d = design(HALFADDER, "halfadder");
        let nodes = d.netlist.node_count() as u64;
        // Enough fuel for exactly one cycle of one word.
        let limits = Limits::default().with_fuel(nodes + 1);
        let mut sim = PackedSim::with_limits(d, &limits).unwrap();
        sim.try_step().expect("one word-cycle fits the budget");
        let err = sim.try_step().expect_err("second cycle exceeds it");
        assert!(err.is_resource_limit());
    }
}
