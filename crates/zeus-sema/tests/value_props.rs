//! Algebraic properties of the four-valued domain (§8) under proptest.

use proptest::prelude::*;
use zeus_sema::value::{self, Value};
use zeus_sema::{bin, num};
use zeus_syntax::span::Span;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Zero),
        Just(Value::One),
        Just(Value::Undef),
        Just(Value::NoInfl),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// AND and OR are commutative.
    #[test]
    fn and_or_commute(a in value_strategy(), b in value_strategy()) {
        prop_assert_eq!(value::and([a, b]), value::and([b, a]));
        prop_assert_eq!(value::or([a, b]), value::or([b, a]));
        prop_assert_eq!(value::xor([a, b]), value::xor([b, a]));
    }

    /// n-ary AND equals folded binary AND (associativity of the
    /// dominance semantics).
    #[test]
    fn and_is_associative(a in value_strategy(), b in value_strategy(), c in value_strategy()) {
        let nary = value::and([a, b, c]);
        let folded = value::and([value::and([a, b]), c]);
        prop_assert_eq!(nary, folded);
        let nary = value::or([a, b, c]);
        let folded = value::or([value::or([a, b]), c]);
        prop_assert_eq!(nary, folded);
    }

    /// De Morgan over the four values: NAND(a,b) = NOT AND(a,b) and
    /// AND(a,b) = NOT OR(NOT a, NOT b) — the latter only holds after the
    /// boolean view (NOINFL reads as UNDEF on gate inputs).
    #[test]
    fn de_morgan(a in value_strategy(), b in value_strategy()) {
        prop_assert_eq!(value::nand([a, b]), value::and([a, b]).not());
        prop_assert_eq!(value::nor([a, b]), value::or([a, b]).not());
        let lhs = value::and([a, b]);
        let rhs = value::or([a.to_boolean().not(), b.to_boolean().not()]).not();
        prop_assert_eq!(lhs, rhs);
    }

    /// Idempotence on defined values; UNDEF absorbs in XOR.
    #[test]
    fn gate_identities(a in value_strategy()) {
        if a.is_defined() {
            prop_assert_eq!(value::and([a, a]), a);
            prop_assert_eq!(value::or([a, a]), a);
            prop_assert_eq!(value::xor([a, a]), Value::Zero);
        } else {
            prop_assert_eq!(value::xor([a, a]), Value::Undef);
        }
        prop_assert_eq!(a.not().not(), a.to_boolean());
    }

    /// Resolution is order-independent in value and in conflict verdict.
    #[test]
    fn resolution_is_permutation_invariant(vals in proptest::collection::vec(value_strategy(), 0..6), seed in any::<u64>()) {
        let r1 = value::resolve(vals.iter().copied());
        // A cheap deterministic shuffle.
        let mut shuffled = vals.clone();
        let mut s = seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (s >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let r2 = value::resolve(shuffled);
        prop_assert_eq!(r1.active, r2.active);
        prop_assert_eq!(r1.conflicted(), r2.conflicted());
        // The value itself is order independent too: NOINFL when no
        // active driver, the single driver's value when one, UNDEF when
        // several.
        prop_assert_eq!(r1.value, r2.value);
    }

    /// NOINFL drivers never influence the outcome.
    #[test]
    fn noinfl_is_resolution_identity(vals in proptest::collection::vec(value_strategy(), 0..5)) {
        let without = value::resolve(vals.iter().copied());
        let mut padded = vals.clone();
        padded.push(Value::NoInfl);
        padded.insert(0, Value::NoInfl);
        let with = value::resolve(padded);
        prop_assert_eq!(without.value, with.value);
        prop_assert_eq!(without.active, with.active);
    }

    /// The count of active drivers is exactly the number of non-NOINFL
    /// contributions, and conflicts start at two.
    #[test]
    fn active_count_matches(vals in proptest::collection::vec(value_strategy(), 0..8)) {
        let r = value::resolve(vals.iter().copied());
        let active = vals.iter().filter(|v| v.is_active()).count() as u32;
        prop_assert_eq!(r.active, active);
        prop_assert_eq!(r.conflicted(), active > 1);
        if active == 0 {
            prop_assert_eq!(r.value, Value::NoInfl);
        } else if active > 1 {
            prop_assert_eq!(r.value, Value::Undef);
        }
    }

    /// BIN/NUM are inverses for every representable (value, width) pair.
    #[test]
    fn bin_num_round_trip(width in 0i64..20, raw in any::<u64>()) {
        let max = if width == 0 { 0 } else { (1u64 << width) - 1 };
        let v = (raw & max) as i64;
        let bits = bin(v, width, Span::dummy()).unwrap();
        prop_assert_eq!(bits.bit_len(), width as usize);
        prop_assert_eq!(num(&bits.flatten()), Some(v));
    }

    /// EQUAL reduction: defined equal vectors give 1, a defined unequal
    /// pair gives 0 regardless of other undefined pairs.
    #[test]
    fn equal_reduction_properties(a in proptest::collection::vec(value_strategy(), 1..6)) {
        prop_assert_ne!(value::equal(&a, &a), Value::Zero,
            "a vector is never defined-unequal to itself");
        if a.iter().all(|v| v.is_defined()) {
            prop_assert_eq!(value::equal(&a, &a), Value::One);
            // Flip one bit: must be 0.
            let mut b = a.clone();
            b[0] = b[0].not();
            prop_assert_eq!(value::equal(&a, &b), Value::Zero);
        }
    }
}
