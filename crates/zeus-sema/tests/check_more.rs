//! Additional well-formedness checks: scoping corners of §3/§4.6.

use zeus_sema::check_program;
use zeus_syntax::parse_program;

fn ok(src: &str) {
    let p = parse_program(src).expect("parse");
    if let Err(e) = check_program(&p) {
        panic!("check failed:\n{src}\n{e}");
    }
}

fn err(src: &str) -> String {
    let p = parse_program(src).expect("parse");
    check_program(&p).expect_err("expected failure").to_string()
}

#[test]
fn type_parameters_are_local_to_the_definition() {
    // "The formal parameters of a type definition ... are valid in that
    // definition only" (§3.2).
    let e = err("TYPE bo(n) = ARRAY[1..n] OF boolean; \
                 t = COMPONENT (IN a: ARRAY[1..n] OF boolean) IS \
                 BEGIN * := a END;");
    assert!(e.contains("unknown constant 'n'"), "{e}");
}

#[test]
fn local_shadowing_is_allowed() {
    ok("CONST n = 4; \
        TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
        CONST n = 2; \
        SIGNAL h: ARRAY[1..n] OF boolean; \
        BEGIN h[1] := a; h[2] := a; s := h[n] END;");
}

#[test]
fn signals_before_types_rejected_in_components() {
    let e = err("TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
                 SIGNAL h: boolean; \
                 TYPE u = ARRAY[1..2] OF boolean; \
                 BEGIN h := a; s := h END;");
    assert!(e.contains("must precede signal declarations"), "{e}");
}

#[test]
fn uses_blocks_types_not_listed() {
    let e = err("TYPE bo4 = ARRAY[1..4] OF boolean; \
                 t = COMPONENT (IN a: boolean; OUT s: boolean) IS USES ; \
                 SIGNAL h: bo4; \
                 BEGIN h[1] := a; s := h[1] END;");
    assert!(e.contains("USES"), "{e}");
}

#[test]
fn uses_admits_types_in_parameter_lists() {
    // Parameter types are resolved in the environment; the USES filter
    // still applies to the names.
    ok("TYPE bo4 = ARRAY[1..4] OF boolean; \
        t = COMPONENT (IN a: bo4; OUT s: boolean) IS USES bo4; \
        BEGIN s := a[1] END;");
}

#[test]
fn with_scope_is_limited_to_its_body() {
    // Unqualified field names only resolve inside the WITH body.
    let e = err("TYPE inner = COMPONENT (IN x: boolean; OUT y: boolean); \
         t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL g: inner; \
         BEGIN WITH g DO x := a END; s := y END;");
    assert!(e.contains("unknown signal 'y'"), "{e}");
}

#[test]
fn replication_variables_shadow_constants() {
    ok("CONST i = 9; \
        TYPE t = COMPONENT (IN a: ARRAY[1..4] OF boolean; \
                            OUT s: ARRAY[1..4] OF boolean) IS \
        USES i; \
        BEGIN FOR i := 1 TO 4 DO s[i] := a[i] END END;");
}

#[test]
fn duplicate_types_rejected() {
    let e = err("TYPE t = ARRAY[1..2] OF boolean; t = ARRAY[1..3] OF boolean;");
    assert!(e.contains("duplicate type"), "{e}");
}

#[test]
fn function_calls_resolve_through_uses() {
    let e = err(
        "TYPE inv = COMPONENT (IN x: boolean): boolean IS BEGIN RESULT NOT x END; \
         t = COMPONENT (IN a: boolean; OUT s: boolean) IS USES ; \
         BEGIN s := inv(a) END;",
    );
    assert!(e.contains("USES"), "{e}");
    ok(
        "TYPE inv = COMPONENT (IN x: boolean): boolean IS BEGIN RESULT NOT x END; \
        t = COMPONENT (IN a: boolean; OUT s: boolean) IS USES inv; \
        BEGIN s := inv(a) END;",
    );
}

#[test]
fn predefined_gates_need_no_uses_entry() {
    ok(
        "TYPE t = COMPONENT (IN a,b: boolean; OUT s: boolean) IS USES ; \
        BEGIN s := NAND(a, XOR(a, b)) END;",
    );
}

#[test]
fn num_selector_address_is_resolved() {
    let e = err("TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL mem: ARRAY[0..3] OF multiplex; \
         BEGIN mem[0] := a; s := mem[NUM(addr)] END;");
    assert!(e.contains("unknown signal 'addr'"), "{e}");
}

#[test]
fn deeply_nested_scopes_resolve() {
    ok("CONST n = 2; \
        TYPE t = COMPONENT (IN a: ARRAY[1..4] OF boolean; \
                            OUT s: ARRAY[1..4] OF boolean) IS \
        BEGIN \
          FOR i := 1 TO n DO \
            FOR j := 1 TO n DO \
              WHEN i = j THEN s[2*(i-1)+j] := a[2*(i-1)+j] \
              OTHERWISE s[2*(i-1)+j] := NOT a[2*(i-1)+j] END \
            END \
          END \
        END;");
}
