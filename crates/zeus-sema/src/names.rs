//! Predefined (pervasive) names of the Zeus standard environment.
//!
//! "Predefined standard types (e.g. the function component types AND, OR,
//! NAND ... and the component type REG) are pervasive and can be used
//! everywhere without mentioning in a uses list." (§3.2)

/// The predefined n-ary gate function components (§4.1, §7).
pub const PREDEFINED_GATES: &[&str] = &["AND", "OR", "NAND", "NOR", "XOR", "NOT", "EQUAL"];

/// All predefined function component types, including `RANDOM`
/// ("for describing bistable elements").
pub const PREDEFINED_FUNCTIONS: &[&str] =
    &["AND", "OR", "NAND", "NOR", "XOR", "NOT", "EQUAL", "RANDOM"];

/// Predefined component types.
pub const PREDEFINED_COMPONENTS: &[&str] = &["REG"];

/// Predefined signals.
pub const PREDEFINED_SIGNALS: &[&str] = &["CLK", "RSET"];

/// Predefined functions usable in constant expressions.
pub const PREDEFINED_CONST_FUNCTIONS: &[&str] = &["min", "max", "odd"];

/// The basic (and pseudo-basic) type names. `virtual` is the placeholder
/// type of §6.4 replaced in the layout language.
pub const BASIC_TYPES: &[&str] = &["boolean", "multiplex", "virtual"];

/// Predefined value names usable in signal constants.
pub const PREDEFINED_VALUES: &[&str] = &["UNDEF", "NOINFL"];

/// Is `name` a pervasive type (usable without a `USES` entry)?
pub fn is_pervasive_type(name: &str) -> bool {
    BASIC_TYPES.contains(&name)
        || PREDEFINED_COMPONENTS.contains(&name)
        || PREDEFINED_FUNCTIONS.contains(&name)
}

/// Is `name` a predefined function component?
pub fn is_predefined_function(name: &str) -> bool {
    PREDEFINED_FUNCTIONS.contains(&name)
}

/// Is `name` a predefined signal?
pub fn is_predefined_signal(name: &str) -> bool {
    PREDEFINED_SIGNALS.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_consistent() {
        for g in PREDEFINED_GATES {
            assert!(PREDEFINED_FUNCTIONS.contains(g));
        }
        assert!(is_pervasive_type("REG"));
        assert!(is_pervasive_type("boolean"));
        assert!(is_pervasive_type("multiplex"));
        assert!(is_pervasive_type("virtual"));
        assert!(is_pervasive_type("AND"));
        assert!(!is_pervasive_type("halfadder"));
        assert!(is_predefined_function("RANDOM"));
        assert!(!is_predefined_function("REG"));
        assert!(is_predefined_signal("CLK"));
        assert!(is_predefined_signal("RSET"));
        assert!(!is_predefined_signal("clk"));
    }
}
