//! Pre-elaboration well-formedness checks: declaration order, name
//! resolution and `USES` visibility (§3, §3.2).
//!
//! These checks are purely syntactic — they do not instantiate
//! parameterized types (that happens in `zeus-elab`) — and catch the
//! scoping mistakes the paper's rules are about:
//!
//! * "All constants, types and signals must be declared before they are
//!   used. Signal declarations must occur after the constant and type
//!   declarations."
//! * "non-local signals (except a predefined clock and a predefined reset
//!   signal) are not allowed in Zeus"
//! * the `USES` list: with a list, only listed outside objects (plus
//!   pervasive standard names) may be referenced; signals can never be
//!   imported.

use crate::names;
use std::collections::HashSet;
use zeus_syntax::ast::*;
use zeus_syntax::diag::Diagnostics;

/// Runs the checks over a parsed program.
///
/// # Errors
///
/// Returns every violation found (the pass does not stop at the first).
pub fn check_program(program: &Program) -> Result<(), Diagnostics> {
    let mut ck = Checker::default();
    ck.push_frame(FrameKind::Root);
    ck.decls(&program.decls);
    ck.pop_frame();
    if ck.diags.has_errors() {
        ck.diags.tag_default_code(zeus_syntax::codes::SEMA);
        Err(ck.diags)
    } else {
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameKind {
    /// Program root or an ordinary nested block (FOR).
    Root,
    /// A component body: signals do not resolve past this frame, and an
    /// optional USES filter applies to consts/types.
    Component,
    /// A WITH body: unresolved signal bases may be fields of the opened
    /// signal.
    With,
}

#[derive(Debug, Default)]
struct Frame {
    kind: Option<FrameKind>,
    consts: HashSet<String>,
    types: HashSet<String>,
    signals: HashSet<String>,
    uses_filter: Option<HashSet<String>>,
}

#[derive(Default)]
struct Checker {
    frames: Vec<Frame>,
    diags: Diagnostics,
}

enum Resolved {
    Found,
    /// Found outside a USES-filtered component without being listed.
    FilteredOut,
    NotFound,
}

impl Checker {
    fn push_frame(&mut self, kind: FrameKind) {
        self.frames.push(Frame {
            kind: Some(kind),
            ..Frame::default()
        });
    }

    fn pop_frame(&mut self) {
        self.frames.pop();
    }

    fn top(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("frame stack nonempty")
    }

    fn in_with(&self) -> bool {
        for f in self.frames.iter().rev() {
            match f.kind {
                Some(FrameKind::With) => return true,
                Some(FrameKind::Component) => return false,
                _ => {}
            }
        }
        false
    }

    /// Looks `name` up in the given namespace selector; enforces USES
    /// filters and the non-local-signal rule.
    fn resolve(&self, name: &str, ns: fn(&Frame) -> &HashSet<String>, is_signal: bool) -> Resolved {
        let mut crossed_component = false;
        let mut filters: Vec<&HashSet<String>> = Vec::new();
        for f in self.frames.iter().rev() {
            if ns(f).contains(name) {
                if is_signal && crossed_component {
                    return Resolved::FilteredOut; // non-local signal
                }
                if !is_signal && filters.iter().any(|flt| !flt.contains(name)) {
                    return Resolved::FilteredOut;
                }
                return Resolved::Found;
            }
            if f.kind == Some(FrameKind::Component) {
                crossed_component = true;
                if let Some(flt) = &f.uses_filter {
                    filters.push(flt);
                }
            }
        }
        Resolved::NotFound
    }

    fn decls(&mut self, decls: &[Decl]) {
        let mut seen_signal = false;
        for d in decls {
            match d {
                Decl::Const(defs) => {
                    if seen_signal {
                        if let Some(def) = defs.first() {
                            self.diags.error(
                                def.name.span,
                                "constant declarations must precede signal declarations (§3)",
                            );
                        }
                    }
                    for def in defs {
                        match &def.value {
                            Constant::Num(e) => self.const_expr(e),
                            Constant::Sig(sc) => self.sig_const(sc),
                        }
                        self.declare_const(&def.name);
                    }
                }
                Decl::Type(defs) => {
                    if seen_signal {
                        if let Some(def) = defs.first() {
                            self.diags.error(
                                def.name.span,
                                "type declarations must precede signal declarations (§3)",
                            );
                        }
                    }
                    for def in defs {
                        // The type name is visible inside its own body to
                        // allow the recursive definitions of §4.2.
                        self.declare_type(&def.name);
                        self.push_frame(FrameKind::Root);
                        for p in &def.params {
                            self.declare_const(p);
                        }
                        self.ty(&def.ty);
                        self.pop_frame();
                    }
                }
                Decl::Signal(defs) => {
                    seen_signal = true;
                    for def in defs {
                        self.ty(&def.ty);
                        for n in &def.names {
                            self.declare_signal(n);
                        }
                    }
                }
            }
        }
    }

    fn declare_const(&mut self, name: &Ident) {
        if !self.top().consts.insert(name.name.clone()) {
            self.diags
                .error(name.span, format!("duplicate constant '{}'", name.name));
        }
    }

    fn declare_type(&mut self, name: &Ident) {
        if !self.top().types.insert(name.name.clone()) {
            self.diags
                .error(name.span, format!("duplicate type '{}'", name.name));
        }
    }

    fn declare_signal(&mut self, name: &Ident) {
        if !self.top().signals.insert(name.name.clone()) {
            self.diags
                .error(name.span, format!("duplicate signal '{}'", name.name));
        }
    }

    fn ty(&mut self, t: &Type) {
        match t {
            Type::Array { lo, hi, elem, .. } => {
                self.const_expr(lo);
                self.const_expr(hi);
                self.ty(elem);
            }
            Type::Named { name, args } => {
                for a in args {
                    self.const_expr(a);
                }
                if names::is_pervasive_type(&name.name) {
                    return;
                }
                match self.resolve(&name.name, |f| &f.types, false) {
                    Resolved::Found => {}
                    Resolved::FilteredOut => self.diags.error(
                        name.span,
                        format!(
                            "type '{}' is not in the USES list of this component",
                            name.name
                        ),
                    ),
                    Resolved::NotFound => self
                        .diags
                        .error(name.span, format!("unknown type '{}'", name.name)),
                }
            }
            Type::Component(c) => self.component(c),
        }
    }

    fn component(&mut self, c: &ComponentType) {
        self.push_frame(FrameKind::Component);
        if let Some(body) = &c.body {
            if let Some(uses) = &body.uses {
                self.top().uses_filter = Some(uses.iter().map(|i| i.name.clone()).collect());
            }
        }
        // Formal parameter names become local signals; their types are
        // resolved in the enclosing environment semantics-wise, but names
        // still pass through the USES filter, as the paper requires all
        // referenced outside objects to be imported.
        for g in &c.params {
            self.ty(&g.ty);
            for n in &g.names {
                self.declare_signal(n);
            }
        }
        if let Some(r) = &c.result {
            self.ty(r);
        }
        for l in &c.header_layout {
            self.layout_stmt(l);
        }
        if let Some(body) = &c.body {
            self.decls(&body.decls);
            for l in &body.layout {
                self.layout_stmt(l);
            }
            for s in &body.stmts {
                self.stmt(s);
            }
        }
        self.pop_frame();
    }

    fn const_expr(&mut self, e: &ConstExpr) {
        match e {
            ConstExpr::Num(_, _) => {}
            ConstExpr::Name(id) => self.const_name(id),
            ConstExpr::Call { name, args, .. } => {
                if !names::PREDEFINED_CONST_FUNCTIONS.contains(&name.name.as_str()) {
                    self.diags.error(
                        name.span,
                        format!(
                            "'{}' is not a predefined constant function (min, max, odd)",
                            name.name
                        ),
                    );
                }
                for a in args {
                    self.const_expr(a);
                }
            }
            ConstExpr::Unary { expr, .. } => self.const_expr(expr),
            ConstExpr::Binary { lhs, rhs, .. } => {
                self.const_expr(lhs);
                self.const_expr(rhs);
            }
        }
    }

    fn const_name(&mut self, id: &Ident) {
        match self.resolve(&id.name, |f| &f.consts, false) {
            Resolved::Found => {}
            Resolved::FilteredOut => self.diags.error(
                id.span,
                format!(
                    "constant '{}' is not in the USES list of this component",
                    id.name
                ),
            ),
            Resolved::NotFound => self
                .diags
                .error(id.span, format!("unknown constant '{}'", id.name)),
        }
    }

    fn sig_const(&mut self, c: &SigConst) {
        match c {
            SigConst::Tuple(items, _) => {
                for i in items {
                    self.sig_const(i);
                }
            }
            SigConst::Bin(a, b, _) => {
                self.const_expr(a);
                self.const_expr(b);
            }
            SigConst::Value(SigValue::Name(id)) => {
                if names::PREDEFINED_VALUES.contains(&id.name.as_str()) {
                    return;
                }
                self.const_name(id);
            }
            SigConst::Value(_) => {}
        }
    }

    fn signal_ref(&mut self, r: &SignalRef) {
        for sel in &r.sels {
            match sel {
                Selector::Index(e) => self.const_expr(e),
                Selector::Range(a, b) => {
                    self.const_expr(a);
                    self.const_expr(b);
                }
                Selector::NumIndex(inner, _) => self.signal_ref(inner),
                Selector::Field(_) | Selector::FieldRange(_, _) => {}
            }
        }
        let base = &r.base.name;
        if names::is_predefined_signal(base) {
            return;
        }
        // A signal base may be a signal, a constant (signal constants are
        // usable in expressions) or a replication variable.
        if matches!(self.resolve(base, |f| &f.signals, true), Resolved::Found) {
            return;
        }
        if matches!(self.resolve(base, |f| &f.consts, false), Resolved::Found) {
            return;
        }
        if self.in_with() {
            // Could be a field of the opened signal; elaboration decides.
            return;
        }
        // Distinguish a blocked non-local signal from a truly unknown name.
        match self.resolve(base, |f| &f.signals, false) {
            Resolved::Found => self.diags.error(
                r.base.span,
                format!("non-local signal '{base}' is not allowed in Zeus (§3)"),
            ),
            _ => self
                .diags
                .error(r.base.span, format!("unknown signal '{base}'")),
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Sig(r) => self.signal_ref(r),
            Expr::Call {
                name,
                type_args,
                args,
                ..
            } => {
                for a in type_args {
                    self.const_expr(a);
                }
                for a in args {
                    self.expr(a);
                }
                if names::is_predefined_function(&name.name) {
                    return;
                }
                match self.resolve(&name.name, |f| &f.types, false) {
                    Resolved::Found => {}
                    Resolved::FilteredOut => self.diags.error(
                        name.span,
                        format!(
                            "function component '{}' is not in the USES list of this component",
                            name.name
                        ),
                    ),
                    Resolved::NotFound => self.diags.error(
                        name.span,
                        format!("unknown function component '{}'", name.name),
                    ),
                }
            }
            Expr::Not(inner, _) => self.expr(inner),
            Expr::Bin(a, b, _) => {
                self.const_expr(a);
                self.const_expr(b);
            }
            Expr::Const(c) => self.sig_const(c),
            Expr::Star { count, .. } => {
                if let Some(c) = count {
                    self.const_expr(c);
                }
            }
            Expr::Tuple(items, _) => {
                for i in items {
                    self.expr(i);
                }
            }
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign { lhs, rhs, .. } => {
                if let Signal::Ref(r) = lhs {
                    self.signal_ref(r);
                }
                self.expr(rhs);
            }
            Stmt::Connection { target, args, .. } => {
                self.signal_ref(target);
                if let Some(a) = args {
                    self.expr(a);
                }
            }
            Stmt::For {
                var,
                from,
                to,
                body,
                ..
            } => {
                self.const_expr(from);
                self.const_expr(to);
                self.push_frame(FrameKind::Root);
                self.declare_const(var);
                for st in body {
                    self.stmt(st);
                }
                self.pop_frame();
            }
            Stmt::WhenGen {
                arms, otherwise, ..
            } => {
                for (c, stmts) in arms {
                    self.const_expr(c);
                    for st in stmts {
                        self.stmt(st);
                    }
                }
                if let Some(o) = otherwise {
                    for st in o {
                        self.stmt(st);
                    }
                }
            }
            Stmt::If { arms, els, .. } => {
                for (c, stmts) in arms {
                    self.expr(c);
                    for st in stmts {
                        self.stmt(st);
                    }
                }
                if let Some(e) = els {
                    for st in e {
                        self.stmt(st);
                    }
                }
            }
            Stmt::Result(e, _) => self.expr(e),
            Stmt::Parallel(body, _) | Stmt::Sequential(body, _) => {
                for st in body {
                    self.stmt(st);
                }
            }
            Stmt::With { signal, body, .. } => {
                self.signal_ref(signal);
                self.push_frame(FrameKind::With);
                for st in body {
                    self.stmt(st);
                }
                self.pop_frame();
            }
            Stmt::Empty(_) => {}
        }
    }

    fn layout_stmt(&mut self, s: &LayoutStmt) {
        match s {
            LayoutStmt::Basic {
                orientation,
                signal,
                replace,
                ..
            } => {
                if let Some(o) = orientation {
                    if !ORIENTATIONS.contains(&o.name.as_str()) {
                        self.diags
                            .error(o.span, format!("'{}' is not an orientation change", o.name));
                    }
                }
                self.signal_ref(signal);
                if let Some(t) = replace {
                    self.ty(t);
                }
            }
            LayoutStmt::Order { body, .. } => {
                for l in body {
                    self.layout_stmt(l);
                }
            }
            LayoutStmt::For {
                var,
                from,
                to,
                body,
                ..
            } => {
                self.const_expr(from);
                self.const_expr(to);
                self.push_frame(FrameKind::Root);
                self.declare_const(var);
                for l in body {
                    self.layout_stmt(l);
                }
                self.pop_frame();
            }
            LayoutStmt::Boundary { body, .. } => {
                for l in body {
                    self.layout_stmt(l);
                }
            }
            LayoutStmt::WhenGen {
                arms, otherwise, ..
            } => {
                for (c, stmts) in arms {
                    self.const_expr(c);
                    for l in stmts {
                        self.layout_stmt(l);
                    }
                }
                if let Some(o) = otherwise {
                    for l in o {
                        self.layout_stmt(l);
                    }
                }
            }
            LayoutStmt::With { signal, body, .. } => {
                self.signal_ref(signal);
                self.push_frame(FrameKind::With);
                for l in body {
                    self.layout_stmt(l);
                }
                self.pop_frame();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_syntax::parse_program;

    fn ok(src: &str) {
        let p = parse_program(src).expect("parse");
        if let Err(e) = check_program(&p) {
            panic!("check failed for:\n{src}\n{e}");
        }
    }

    fn err(src: &str) -> String {
        let p = parse_program(src).expect("parse");
        check_program(&p)
            .expect_err("expected check error")
            .to_string()
    }

    #[test]
    fn halfadder_checks() {
        ok(
            "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS \
            BEGIN s := XOR(a,b); cout := AND(a,b) END;",
        );
    }

    #[test]
    fn unknown_signal() {
        let e = err("TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
                     BEGIN s := XOR(a,bogus) END;");
        assert!(e.contains("unknown signal 'bogus'"), "{e}");
    }

    #[test]
    fn unknown_type() {
        let e = err("SIGNAL x: mystery;");
        assert!(e.contains("unknown type 'mystery'"), "{e}");
    }

    #[test]
    fn non_local_signal_rejected() {
        let e = err("SIGNAL g: boolean; \
                     TYPE t = COMPONENT (OUT s: boolean) IS BEGIN s := g END;");
        // The SIGNAL-before-TYPE order is also flagged; the non-local rule
        // must be among the errors.
        assert!(e.contains("non-local signal 'g'"), "{e}");
    }

    #[test]
    fn decl_order_enforced() {
        let e = err("SIGNAL x: boolean; CONST n = 4;");
        assert!(e.contains("must precede signal declarations"), "{e}");
    }

    #[test]
    fn uses_filter_blocks_unlisted() {
        let e = err("CONST n = 4; \
                     TYPE t = COMPONENT (OUT s: boolean) IS USES ; \
                     SIGNAL h: ARRAY[1..n] OF boolean; \
                     BEGIN s := h[1] END;");
        assert!(e.contains("not in the USES list"), "{e}");
    }

    #[test]
    fn uses_filter_admits_listed() {
        ok("CONST n = 4; \
            TYPE t = COMPONENT (OUT s: boolean) IS USES n; \
            SIGNAL h: ARRAY[1..n] OF boolean; \
            BEGIN s := h[1] END;");
    }

    #[test]
    fn pervasive_names_always_visible() {
        ok(
            "TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS USES ; \
            SIGNAL r: REG; \
            BEGIN r(a, s) END;",
        );
    }

    #[test]
    fn recursive_type_sees_itself() {
        ok(
            "TYPE tree(n) = COMPONENT (IN in: boolean; OUT leaf: ARRAY[1..n] OF boolean) IS \
            SIGNAL left, right: tree(n DIV 2); \
            BEGIN WHEN n > 2 THEN left.in := in OTHERWISE leaf[1] := in END END;",
        );
    }

    #[test]
    fn replication_variable_scoped() {
        ok(
            "TYPE t = COMPONENT (IN a: ARRAY[1..4] OF boolean; OUT s: ARRAY[1..4] OF boolean) IS \
            BEGIN FOR i := 1 TO 4 DO s[i] := a[i] END END;",
        );
        let e = err(
            "TYPE t = COMPONENT (IN a: ARRAY[1..4] OF boolean; OUT s: ARRAY[1..4] OF boolean) IS \
             BEGIN FOR i := 1 TO 4 DO s[i] := a[i] END; s[1] := a[i] END;",
        );
        assert!(e.contains("unknown"), "{e}");
    }

    #[test]
    fn with_allows_field_shorthand() {
        ok("TYPE inner = COMPONENT (IN x: boolean; OUT y: boolean); \
            t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
            SIGNAL g: inner; \
            BEGIN WITH g DO x := a; s := y END END;");
    }

    #[test]
    fn duplicate_declarations() {
        let e = err("CONST n = 1; n = 2;");
        assert!(e.contains("duplicate constant"), "{e}");
        let e = err("TYPE t = COMPONENT (IN a: boolean) IS \
                     SIGNAL x: boolean; x: multiplex; BEGIN x := a END;");
        assert!(e.contains("duplicate signal"), "{e}");
    }

    #[test]
    fn clk_rset_predefined() {
        ok("TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
            BEGIN IF RSET THEN s := CLK ELSE s := a END END;");
    }

    #[test]
    fn undef_noinfl_in_constants() {
        ok("CONST u = (UNDEF, NOINFL, 0, 1);");
    }

    #[test]
    fn unknown_const_function() {
        let e = err("CONST n = frob(3);");
        assert!(e.contains("not a predefined constant function"), "{e}");
    }

    #[test]
    fn bad_orientation_in_layout() {
        // An unknown orientation prefix cannot parse as a basic layout
        // statement (two adjacent signals), so this is a parse error.
        assert!(parse_program(
            "TYPE t = COMPONENT (IN a: boolean) IS \
             SIGNAL s: boolean; \
             { ORDER lefttoright sideways s END } BEGIN s := a END;"
        )
        .is_err());
    }
}
