//! The static type rules of §4.7, as decision tables.
//!
//! The elaborator reduces every statement to assignments between *basic*
//! signals and consults these tables. Their purpose in the paper is to
//! prevent designs with a direct power-to-ground connection ("burning"
//! transistors).

use std::fmt;

/// The two basic signal types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BasicKind {
    /// `boolean` — values 0, 1, UNDEF.
    Boolean,
    /// `multiplex` — values 0, 1, UNDEF, NOINFL (tri-state).
    Multiplex,
}

impl fmt::Display for BasicKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BasicKind::Boolean => write!(f, "boolean"),
            BasicKind::Multiplex => write!(f, "multiplex"),
        }
    }
}

/// Why a boolean signal may enjoy "exception 1" of §4.7: it is a formal
/// OUT parameter of the component being defined, or an IN parameter of an
/// instantiated component. Such signals get an implicit multiplex net and
/// an automatic multiplex→boolean conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Exception1 {
    /// Formal OUT parameter of the defining component.
    pub formal_out: bool,
    /// IN parameter of an instantiated component.
    pub instance_in: bool,
}

impl Exception1 {
    /// Whether either exception applies.
    pub fn applies(self) -> bool {
        self.formal_out || self.instance_in
    }
}

/// Verdict of a static rule check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleVerdict {
    /// Legal.
    Legal,
    /// Legal but suspicious; the message explains (e.g. the multiplex
    /// "abuse" noted in §4.7).
    Warn(String),
    /// Illegal; the message explains which rule is violated.
    Illegal(String),
}

impl RuleVerdict {
    /// True for `Legal` and `Warn`.
    pub fn is_legal(&self) -> bool {
        !matches!(self, RuleVerdict::Illegal(_))
    }
}

/// Rule for an **unconditional** assignment `x := e` between basic
/// signals (§4.7, "Unconditional assignment").
///
/// All four boolean/multiplex combinations are legal, but a multiplex
/// assignee "abuses" the type (no further assignments are possible), which
/// we surface as a warning when the right side is also multiplex.
pub fn unconditional_assign(lhs: BasicKind, rhs: BasicKind) -> RuleVerdict {
    match (lhs, rhs) {
        (BasicKind::Multiplex, BasicKind::Multiplex) => RuleVerdict::Warn(
            "unconditional assignment between multiplex signals fixes the assignee; \
             consider aliasing with '==' instead"
                .into(),
        ),
        _ => RuleVerdict::Legal,
    }
}

/// Rule for a **conditional** assignment `IF b THEN x := e END`
/// (§4.7 type rules (1)).
pub fn conditional_assign(lhs: BasicKind, exc: Exception1) -> RuleVerdict {
    match lhs {
        BasicKind::Multiplex => RuleVerdict::Legal,
        BasicKind::Boolean if exc.applies() => RuleVerdict::Legal,
        BasicKind::Boolean => RuleVerdict::Illegal(
            "conditional assignment to a boolean signal is illegal unless it is a formal OUT \
             parameter or an IN parameter of an instantiated component (type rules (1))"
                .into(),
        ),
    }
}

/// Rule for aliasing `x == y` between basic signals (§4.7 type rules (2)).
pub fn alias(lhs: BasicKind, rhs: BasicKind, exc_l: Exception1, exc_r: Exception1) -> RuleVerdict {
    match (lhs, rhs) {
        (BasicKind::Multiplex, BasicKind::Multiplex) => RuleVerdict::Legal,
        (BasicKind::Boolean, BasicKind::Boolean) => RuleVerdict::Illegal(
            "aliasing two boolean signals is illegal: it would allow direct power-ground \
             connections (type rules (2))"
                .into(),
        ),
        (BasicKind::Boolean, BasicKind::Multiplex) if exc_l.applies() => RuleVerdict::Legal,
        (BasicKind::Multiplex, BasicKind::Boolean) if exc_r.applies() => RuleVerdict::Legal,
        _ => RuleVerdict::Illegal(
            "aliasing boolean with multiplex is only legal when the boolean signal is a \
             formal OUT parameter or an IN parameter of an instantiated component \
             (type rules (2), exception 1)"
                .into(),
        ),
    }
}

/// Basic-type restrictions on formal parameters (§3.2): unstructured IN
/// and OUT parameters must be boolean; unstructured INOUT parameters must
/// be multiplex.
pub fn formal_param_basic(mode: zeus_syntax::ast::Mode, kind: BasicKind) -> RuleVerdict {
    use zeus_syntax::ast::Mode;
    match (mode, kind) {
        (Mode::In | Mode::Out, BasicKind::Boolean) => RuleVerdict::Legal,
        (Mode::In | Mode::Out, BasicKind::Multiplex) => RuleVerdict::Illegal(
            "unstructured IN and OUT parameters must be of type boolean (§3.2)".into(),
        ),
        (Mode::InOut, BasicKind::Multiplex) => RuleVerdict::Legal,
        (Mode::InOut, BasicKind::Boolean) => RuleVerdict::Illegal(
            "INOUT parameters of a basic type must be of type multiplex (§3.2)".into(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_syntax::ast::Mode;
    use BasicKind::*;

    const NO_EXC: Exception1 = Exception1 {
        formal_out: false,
        instance_in: false,
    };
    const OUT_EXC: Exception1 = Exception1 {
        formal_out: true,
        instance_in: false,
    };
    const IN_EXC: Exception1 = Exception1 {
        formal_out: false,
        instance_in: true,
    };

    #[test]
    fn unconditional_all_legal() {
        assert!(unconditional_assign(Boolean, Boolean).is_legal());
        assert!(unconditional_assign(Boolean, Multiplex).is_legal());
        assert!(unconditional_assign(Multiplex, Boolean).is_legal());
        // multiplex := multiplex warns (the §4.1 text calls it illegal,
        // §4.7 allows it as an "abuse"; we follow §4.7 with a warning).
        assert!(matches!(
            unconditional_assign(Multiplex, Multiplex),
            RuleVerdict::Warn(_)
        ));
    }

    #[test]
    fn conditional_table_1() {
        // boolean assignee illegal without exception 1...
        assert!(!conditional_assign(Boolean, NO_EXC).is_legal());
        // ...legal with either exception,
        assert!(conditional_assign(Boolean, OUT_EXC).is_legal());
        assert!(conditional_assign(Boolean, IN_EXC).is_legal());
        // multiplex assignee always legal.
        assert!(conditional_assign(Multiplex, NO_EXC).is_legal());
    }

    #[test]
    fn alias_table_2() {
        assert!(alias(Multiplex, Multiplex, NO_EXC, NO_EXC).is_legal());
        assert!(!alias(Boolean, Boolean, NO_EXC, NO_EXC).is_legal());
        assert!(!alias(Boolean, Boolean, OUT_EXC, OUT_EXC).is_legal());
        assert!(!alias(Boolean, Multiplex, NO_EXC, NO_EXC).is_legal());
        assert!(alias(Boolean, Multiplex, OUT_EXC, NO_EXC).is_legal());
        assert!(alias(Multiplex, Boolean, NO_EXC, IN_EXC).is_legal());
        assert!(!alias(Multiplex, Boolean, IN_EXC, NO_EXC).is_legal());
    }

    #[test]
    fn formal_basic_restrictions() {
        assert!(formal_param_basic(Mode::In, Boolean).is_legal());
        assert!(formal_param_basic(Mode::Out, Boolean).is_legal());
        assert!(!formal_param_basic(Mode::In, Multiplex).is_legal());
        assert!(!formal_param_basic(Mode::Out, Multiplex).is_legal());
        assert!(formal_param_basic(Mode::InOut, Multiplex).is_legal());
        assert!(!formal_param_basic(Mode::InOut, Boolean).is_legal());
    }

    #[test]
    fn exception_composition() {
        assert!(!NO_EXC.applies());
        assert!(OUT_EXC.applies());
        assert!(IN_EXC.applies());
        assert!(Exception1 {
            formal_out: true,
            instance_in: true
        }
        .applies());
    }
}
