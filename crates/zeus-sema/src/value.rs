//! The four-valued signal domain of Zeus (§3.3, §8).
//!
//! A signal of type *multiplex* ranges over `{0, 1, UNDEF, NOINFL}`; a
//! signal of type *boolean* over `{0, 1, UNDEF}`. `NOINFL` is the
//! disconnected / high-impedance state. This module implements the exact
//! gate semantics of §8 ("the exiting edge carries a 0 as soon as one
//! entering edge is 0", etc.) and the resolution rule for multiple
//! simultaneous conditional assignments.

use std::fmt;

/// A basic signal value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Value {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Undefined (0-or-1 unknown, or a detected conflict).
    #[default]
    Undef,
    /// No influence: disconnected / high impedance (multiplex only).
    NoInfl,
}

impl Value {
    /// True when the value is 0 or 1.
    pub fn is_defined(self) -> bool {
        matches!(self, Value::Zero | Value::One)
    }

    /// True when the value is *active*, i.e. participates in the
    /// "at most one (0,1,UNDEF)-assignment" runtime rule: everything but
    /// `NoInfl`.
    pub fn is_active(self) -> bool {
        self != Value::NoInfl
    }

    /// Converts to `bool` if defined.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Zero => Some(false),
            Value::One => Some(true),
            _ => None,
        }
    }

    /// The boolean view of a possibly-multiplex value: the paper's
    /// automatic multiplex→boolean conversion ("an amplifier") maps the
    /// high-impedance state to UNDEF.
    pub fn to_boolean(self) -> Value {
        if self == Value::NoInfl {
            Value::Undef
        } else {
            self
        }
    }

    /// Logical complement (`NOT`): defined values flip, everything else
    /// is UNDEF. (Deliberately named like the gate, not `std::ops::Not` —
    /// the semantics differ from boolean negation on UNDEF/NOINFL.)
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Value {
        match self {
            Value::Zero => Value::One,
            Value::One => Value::Zero,
            _ => Value::Undef,
        }
    }

    /// Creates a value from a bool.
    pub fn from_bool(b: bool) -> Value {
        if b {
            Value::One
        } else {
            Value::Zero
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Zero => write!(f, "0"),
            Value::One => write!(f, "1"),
            Value::Undef => write!(f, "U"),
            Value::NoInfl => write!(f, "Z"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::from_bool(b)
    }
}

/// n-ary AND with the dominance rule of §8: 0 dominates, all-1 gives 1,
/// otherwise UNDEF. NOINFL inputs behave as UNDEF (implicit conversion).
pub fn and(inputs: impl IntoIterator<Item = Value>) -> Value {
    let mut all_one = true;
    let mut any = false;
    for v in inputs {
        any = true;
        match v.to_boolean() {
            Value::Zero => return Value::Zero,
            Value::One => {}
            _ => all_one = false,
        }
    }
    if any && all_one {
        Value::One
    } else if !any {
        // AND of nothing is the neutral element 1.
        Value::One
    } else {
        Value::Undef
    }
}

/// n-ary OR: 1 dominates, all-0 gives 0, otherwise UNDEF.
pub fn or(inputs: impl IntoIterator<Item = Value>) -> Value {
    let mut all_zero = true;
    let mut any = false;
    for v in inputs {
        any = true;
        match v.to_boolean() {
            Value::One => return Value::One,
            Value::Zero => {}
            _ => all_zero = false,
        }
    }
    if !any || all_zero {
        Value::Zero
    } else {
        Value::Undef
    }
}

/// n-ary NAND: 1 as soon as one input is 0; 0 iff all inputs are 1.
pub fn nand(inputs: impl IntoIterator<Item = Value>) -> Value {
    and(inputs).not()
}

/// n-ary NOR: 0 as soon as one input is 1; 1 iff all inputs are 0.
pub fn nor(inputs: impl IntoIterator<Item = Value>) -> Value {
    or(inputs).not()
}

/// n-ary XOR (§8 defines the binary case; we fold it associatively).
/// All inputs must be defined to get a defined output.
pub fn xor(inputs: impl IntoIterator<Item = Value>) -> Value {
    let mut acc = false;
    for v in inputs {
        match v.to_boolean().as_bool() {
            Some(b) => acc ^= b,
            None => return Value::Undef,
        }
    }
    Value::from_bool(acc)
}

/// Pairwise equality over two equal-length bit slices, reduced to one bit
/// (the usage in §10, e.g. `EQUAL(state.out, start)`, requires reduction
/// semantics; see DESIGN.md).
///
/// Dominance: a pair that is defined and unequal forces 0; all pairs
/// defined and equal gives 1; otherwise UNDEF.
pub fn equal(a: &[Value], b: &[Value]) -> Value {
    debug_assert_eq!(a.len(), b.len());
    let mut all_defined_equal = true;
    for (&x, &y) in a.iter().zip(b) {
        let (x, y) = (x.to_boolean(), y.to_boolean());
        if x.is_defined() && y.is_defined() {
            if x != y {
                return Value::Zero;
            }
        } else {
            all_defined_equal = false;
        }
    }
    if all_defined_equal {
        Value::One
    } else {
        Value::Undef
    }
}

/// The outcome of resolving the simultaneous conditional assignments to
/// one signal (§8, last rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolution {
    /// The resolved value.
    pub value: Value,
    /// How many contributions were *active* (not NOINFL). More than one
    /// is the runtime violation that "burns transistors".
    pub active: u32,
}

impl Resolution {
    /// The state before any contribution: high impedance.
    pub fn empty() -> Self {
        Resolution {
            value: Value::NoInfl,
            active: 0,
        }
    }

    /// Folds one more contribution into the resolution.
    ///
    /// * NOINFL is overruled by any other value.
    /// * Assigning UNDEF makes the result UNDEF.
    /// * A second active (0,1,UNDEF) assignment makes the result UNDEF and
    ///   is counted so the simulator can report the violation.
    pub fn drive(self, v: Value) -> Resolution {
        if v == Value::NoInfl {
            return self;
        }
        let active = self.active + 1;
        let value = if active > 1 { Value::Undef } else { v };
        Resolution { value, active }
    }

    /// True when more than one active assignment occurred.
    pub fn conflicted(&self) -> bool {
        self.active > 1
    }
}

impl Default for Resolution {
    fn default() -> Self {
        Resolution::empty()
    }
}

/// Resolves a whole iterator of contributions.
pub fn resolve(contribs: impl IntoIterator<Item = Value>) -> Resolution {
    contribs
        .into_iter()
        .fold(Resolution::empty(), Resolution::drive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use Value::*;

    const ALL: [Value; 4] = [Zero, One, Undef, NoInfl];

    #[test]
    fn display_forms() {
        assert_eq!(Zero.to_string(), "0");
        assert_eq!(One.to_string(), "1");
        assert_eq!(Undef.to_string(), "U");
        assert_eq!(NoInfl.to_string(), "Z");
    }

    #[test]
    fn and_dominance() {
        // "the exiting edge carries a 0 as soon as one entering edge is 0"
        assert_eq!(and([Zero, Undef]), Zero);
        assert_eq!(and([Undef, Zero]), Zero);
        assert_eq!(and([Zero, NoInfl]), Zero);
        assert_eq!(and([One, One]), One);
        assert_eq!(and([One, Undef]), Undef);
        assert_eq!(and([One, NoInfl]), Undef); // Z reads as U
        assert_eq!(and([One, One, One, Zero]), Zero);
    }

    #[test]
    fn or_dominance() {
        assert_eq!(or([One, Undef]), One);
        assert_eq!(or([Zero, Zero]), Zero);
        assert_eq!(or([Zero, Undef]), Undef);
        assert_eq!(or([NoInfl, One]), One);
    }

    #[test]
    fn nand_nor_are_negations() {
        for &a in &ALL {
            for &b in &ALL {
                assert_eq!(nand([a, b]), and([a, b]).not());
                assert_eq!(nor([a, b]), or([a, b]).not());
            }
        }
    }

    #[test]
    fn xor_strictness() {
        // "a and b have to be defined (0 or 1) to get output 0 or 1"
        assert_eq!(xor([Zero, One]), One);
        assert_eq!(xor([One, One]), Zero);
        assert_eq!(xor([Zero, Undef]), Undef);
        assert_eq!(xor([One, NoInfl]), Undef);
        assert_eq!(xor([One, One, One]), One);
    }

    #[test]
    fn not_table() {
        assert_eq!(Zero.not(), One);
        assert_eq!(One.not(), Zero);
        assert_eq!(Undef.not(), Undef);
        assert_eq!(NoInfl.not(), Undef);
    }

    #[test]
    fn equal_reduction() {
        assert_eq!(equal(&[Zero, One], &[Zero, One]), One);
        assert_eq!(equal(&[Zero, One], &[Zero, Zero]), Zero);
        // A defined unequal pair dominates over an undefined pair.
        assert_eq!(equal(&[Undef, One], &[Zero, Zero]), Zero);
        assert_eq!(equal(&[Undef, One], &[Zero, One]), Undef);
        assert_eq!(equal(&[], &[]), One);
    }

    #[test]
    fn resolution_noinfl_identity() {
        // "Value NOINFL is overruled by any other value."
        for &v in &ALL {
            let r = resolve([NoInfl, v]);
            assert_eq!(r.value, v);
            let r = resolve([v, NoInfl]);
            assert_eq!(r.value, v);
            assert!(!r.conflicted());
        }
    }

    #[test]
    fn resolution_conflicts() {
        // "If x is assigned several times 0,1 or UNDEF at runtime then x
        //  has value UNDEF and an error message is given."
        let r = resolve([Zero, One]);
        assert_eq!(r.value, Undef);
        assert!(r.conflicted());
        // Even two equal active values conflict.
        let r = resolve([One, One]);
        assert_eq!(r.value, Undef);
        assert!(r.conflicted());
        let r = resolve([Undef, Zero]);
        assert!(r.conflicted());
    }

    #[test]
    fn resolution_single_driver() {
        for &v in &[Zero, One, Undef] {
            let r = resolve([NoInfl, v, NoInfl]);
            assert_eq!(r.value, v);
            assert_eq!(r.active, 1);
        }
        let r = resolve([NoInfl, NoInfl]);
        assert_eq!(r.value, NoInfl);
        assert_eq!(r.active, 0);
    }

    #[test]
    fn boolean_view() {
        assert_eq!(NoInfl.to_boolean(), Undef);
        assert_eq!(One.to_boolean(), One);
    }

    #[test]
    fn empty_gates_have_neutral_elements() {
        assert_eq!(and(std::iter::empty()), One);
        assert_eq!(or(std::iter::empty()), Zero);
        assert_eq!(xor(std::iter::empty()), Zero);
    }
}
