//! Constant evaluation (§3.1).
//!
//! Zeus constant expressions follow Modula-2: integer arithmetic with
//! `+ - * DIV MOD`, relations yielding 0/1, logical `AND OR NOT`, and the
//! predefined functions `min`, `max` and `odd`. Signal constants are nested
//! tuples over `{0, 1, UNDEF, NOINFL}` plus `BIN(a,b)`.

use crate::value::Value;
use std::collections::HashMap;
use std::rc::Rc;
use zeus_syntax::ast::{ConstBinOp, ConstExpr, ConstUnOp, Constant, SigConst, SigValue};
use zeus_syntax::diag::Diagnostic;
use zeus_syntax::span::Span;

/// An evaluated constant: numeric or a (structured) signal constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstVal {
    /// A numeric constant.
    Num(i64),
    /// A signal constant.
    Sig(SigVal),
}

impl ConstVal {
    /// Extracts the numeric value.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic when the constant is a signal constant.
    pub fn as_num(&self, span: Span) -> Result<i64, Diagnostic> {
        match self {
            ConstVal::Num(n) => Ok(*n),
            ConstVal::Sig(_) => Err(Diagnostic::error(
                span,
                "a numeric constant is required here but this is a signal constant",
            )),
        }
    }
}

/// A structured signal-constant value: a single basic value or a tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SigVal {
    /// One basic value.
    Val(Value),
    /// A tuple of nested values; indexed 1-based by `[i]` selectors.
    Tuple(Vec<SigVal>),
}

impl SigVal {
    /// Flattens to the natural-order sequence of basic values.
    pub fn flatten(&self) -> Vec<Value> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect(&self, out: &mut Vec<Value>) {
        match self {
            SigVal::Val(v) => out.push(*v),
            SigVal::Tuple(items) => {
                for i in items {
                    i.collect(out);
                }
            }
        }
    }

    /// Number of basic values.
    pub fn bit_len(&self) -> usize {
        match self {
            SigVal::Val(_) => 1,
            SigVal::Tuple(items) => items.iter().map(SigVal::bit_len).sum(),
        }
    }

    /// 1-based indexing into a tuple (used by `bit2[i]`).
    ///
    /// # Errors
    ///
    /// Returns a diagnostic for out-of-range indices or indexing a basic
    /// value.
    pub fn index(&self, i: i64, span: Span) -> Result<&SigVal, Diagnostic> {
        match self {
            SigVal::Tuple(items) => {
                if i >= 1 && (i as usize) <= items.len() {
                    Ok(&items[i as usize - 1])
                } else {
                    Err(Diagnostic::error(
                        span,
                        format!("constant index {i} is out of range 1..{}", items.len()),
                    ))
                }
            }
            SigVal::Val(_) => Err(Diagnostic::error(
                span,
                "cannot index a basic signal constant",
            )),
        }
    }
}

/// Converts a number to `b` boolean bits per the standard function
/// `BIN(a, b)` (§4.1). Bit 1 is the least significant bit; `NUM` is the
/// inverse (see DESIGN.md for the endianness ruling).
///
/// # Errors
///
/// Returns a diagnostic when `b` is negative or `a` does not fit in `b`
/// bits.
pub fn bin(a: i64, b: i64, span: Span) -> Result<SigVal, Diagnostic> {
    if b < 0 {
        return Err(Diagnostic::error(span, "BIN width must be non-negative"));
    }
    if a < 0 {
        return Err(Diagnostic::error(span, "BIN value must be non-negative"));
    }
    if b < 64 && a >= (1i64 << b) {
        return Err(Diagnostic::error(
            span,
            format!("constant {a} does not fit in {b} bits"),
        ));
    }
    let bits = (0..b)
        .map(|i| {
            SigVal::Val(if i < 63 && (a >> i) & 1 == 1 {
                Value::One
            } else {
                Value::Zero
            })
        })
        .collect();
    Ok(SigVal::Tuple(bits))
}

/// Numeric value of a defined bit vector (inverse of [`bin`]); `None` if
/// any bit is undefined.
pub fn num(bits: &[Value]) -> Option<i64> {
    let mut out: i64 = 0;
    for (i, &b) in bits.iter().enumerate() {
        match b.to_boolean().as_bool() {
            Some(true) if i < 63 => out |= 1 << i,
            Some(true) => return None, // overflow
            Some(false) => {}
            None => return None,
        }
    }
    Some(out)
}

/// Anything that can resolve constant names to values. The elaborator
/// implements this for its instantiation environments; [`ConstEnv`] is the
/// simple chained-map implementation.
pub trait ConstScope {
    /// Looks up a constant binding.
    fn lookup_const(&self, name: &str) -> Option<ConstVal>;
}

impl ConstScope for ConstEnv {
    fn lookup_const(&self, name: &str) -> Option<ConstVal> {
        self.lookup(name).cloned()
    }
}

/// An environment binding constant names; environments chain to a parent
/// so component-local constants shadow outer ones.
#[derive(Debug, Clone, Default)]
pub struct ConstEnv {
    parent: Option<Rc<ConstEnv>>,
    bindings: HashMap<String, ConstVal>,
}

impl ConstEnv {
    /// An empty root environment.
    pub fn new() -> Self {
        ConstEnv::default()
    }

    /// Creates a child environment chained to `parent`.
    pub fn child(parent: Rc<ConstEnv>) -> Self {
        ConstEnv {
            parent: Some(parent),
            bindings: HashMap::new(),
        }
    }

    /// Binds a name (shadowing any outer binding).
    pub fn bind(&mut self, name: impl Into<String>, value: ConstVal) {
        self.bindings.insert(name.into(), value);
    }

    /// Looks a name up through the chain.
    pub fn lookup(&self, name: &str) -> Option<&ConstVal> {
        match self.bindings.get(name) {
            Some(v) => Some(v),
            None => self.parent.as_deref().and_then(|p| p.lookup(name)),
        }
    }
}

fn arith(op: ConstBinOp, l: i64, r: i64, span: Span) -> Result<i64, Diagnostic> {
    let ov =
        |v: Option<i64>| v.ok_or_else(|| Diagnostic::error(span, "constant arithmetic overflow"));
    match op {
        ConstBinOp::Add => ov(l.checked_add(r)),
        ConstBinOp::Sub => ov(l.checked_sub(r)),
        ConstBinOp::Mul => ov(l.checked_mul(r)),
        ConstBinOp::Div => {
            if r == 0 {
                Err(Diagnostic::error(span, "constant division by zero"))
            } else {
                ov(l.checked_div_euclid(r))
            }
        }
        ConstBinOp::Mod => {
            if r == 0 {
                Err(Diagnostic::error(span, "constant MOD by zero"))
            } else {
                ov(l.checked_rem_euclid(r))
            }
        }
        ConstBinOp::And => Ok(((l != 0) && (r != 0)) as i64),
        ConstBinOp::Or => Ok(((l != 0) || (r != 0)) as i64),
        ConstBinOp::Eq => Ok((l == r) as i64),
        ConstBinOp::Ne => Ok((l != r) as i64),
        ConstBinOp::Lt => Ok((l < r) as i64),
        ConstBinOp::Le => Ok((l <= r) as i64),
        ConstBinOp::Gt => Ok((l > r) as i64),
        ConstBinOp::Ge => Ok((l >= r) as i64),
    }
}

/// Evaluates a numeric constant expression.
///
/// # Errors
///
/// Returns a diagnostic for unknown names, arity errors on `min`/`max`/
/// `odd`, division by zero or overflow, or when a signal constant is used
/// where a number is required.
pub fn eval_const_expr<S: ConstScope + ?Sized>(e: &ConstExpr, env: &S) -> Result<i64, Diagnostic> {
    match e {
        ConstExpr::Num(n, _) => Ok(*n),
        ConstExpr::Name(id) => match env.lookup_const(&id.name) {
            Some(v) => v.as_num(id.span),
            None => Err(Diagnostic::error(
                id.span,
                format!("unknown constant '{}'", id.name),
            )),
        },
        ConstExpr::Unary { op, expr, span } => {
            let v = eval_const_expr(expr, env)?;
            match op {
                ConstUnOp::Plus => Ok(v),
                ConstUnOp::Minus => v
                    .checked_neg()
                    .ok_or_else(|| Diagnostic::error(*span, "constant arithmetic overflow")),
                ConstUnOp::Not => Ok((v == 0) as i64),
            }
        }
        ConstExpr::Binary { op, lhs, rhs } => {
            let l = eval_const_expr(lhs, env)?;
            let r = eval_const_expr(rhs, env)?;
            arith(*op, l, r, e.span())
        }
        ConstExpr::Call { name, args, span } => {
            let vals: Vec<i64> = args
                .iter()
                .map(|a| eval_const_expr(a, env))
                .collect::<Result<_, _>>()?;
            match name.name.as_str() {
                "min" => {
                    if vals.is_empty() {
                        Err(Diagnostic::error(*span, "min needs at least one argument"))
                    } else {
                        Ok(*vals.iter().min().expect("nonempty"))
                    }
                }
                "max" => {
                    if vals.is_empty() {
                        Err(Diagnostic::error(*span, "max needs at least one argument"))
                    } else {
                        Ok(*vals.iter().max().expect("nonempty"))
                    }
                }
                "odd" => {
                    if vals.len() != 1 {
                        Err(Diagnostic::error(*span, "odd takes exactly one argument"))
                    } else {
                        Ok((vals[0].rem_euclid(2) == 1) as i64)
                    }
                }
                other => Err(Diagnostic::error(
                    name.span,
                    format!("'{other}' is not a predefined constant function"),
                )),
            }
        }
    }
}

/// Evaluates a signal-constant expression.
///
/// The predefined names `UNDEF` and `NOINFL` denote the corresponding
/// basic values; other names must be bound signal constants in `env`
/// (a bound *numeric* 0/1 also works, since `value = "0"|"1"|ident`).
///
/// # Errors
///
/// Returns a diagnostic for unknown names or malformed `BIN` uses.
pub fn eval_sig_const<S: ConstScope + ?Sized>(c: &SigConst, env: &S) -> Result<SigVal, Diagnostic> {
    match c {
        SigConst::Tuple(items, _) => {
            let vals = items
                .iter()
                .map(|i| eval_sig_const(i, env))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(SigVal::Tuple(vals))
        }
        SigConst::Bin(a, b, span) => {
            let a = eval_const_expr(a, env)?;
            let b = eval_const_expr(b, env)?;
            bin(a, b, *span)
        }
        SigConst::Value(v) => match v {
            SigValue::Zero(_) => Ok(SigVal::Val(Value::Zero)),
            SigValue::One(_) => Ok(SigVal::Val(Value::One)),
            SigValue::Name(id) => match id.name.as_str() {
                "UNDEF" => Ok(SigVal::Val(Value::Undef)),
                "NOINFL" => Ok(SigVal::Val(Value::NoInfl)),
                name => match env.lookup_const(name) {
                    Some(ConstVal::Sig(sv)) => Ok(sv),
                    Some(ConstVal::Num(0)) => Ok(SigVal::Val(Value::Zero)),
                    Some(ConstVal::Num(1)) => Ok(SigVal::Val(Value::One)),
                    Some(ConstVal::Num(_)) => Err(Diagnostic::error(
                        id.span,
                        format!(
                            "numeric constant '{name}' is not a signal value (only 0 and 1 are)"
                        ),
                    )),
                    None => Err(Diagnostic::error(
                        id.span,
                        format!("unknown signal constant '{name}'"),
                    )),
                },
            },
        },
    }
}

/// Evaluates a declared constant (numeric or signal).
///
/// # Errors
///
/// Propagates the errors of [`eval_const_expr`] / [`eval_sig_const`].
pub fn eval_constant<S: ConstScope + ?Sized>(
    c: &Constant,
    env: &S,
) -> Result<ConstVal, Diagnostic> {
    match c {
        Constant::Num(e) => Ok(ConstVal::Num(eval_const_expr(e, env)?)),
        Constant::Sig(sc) => Ok(ConstVal::Sig(eval_sig_const(sc, env)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_syntax::parser::parse_const_expr;

    fn eval(src: &str) -> i64 {
        let e = parse_const_expr(src).expect("parse");
        eval_const_expr(&e, &ConstEnv::new()).expect("eval")
    }

    fn eval_err(src: &str) -> Diagnostic {
        let e = parse_const_expr(src).expect("parse");
        eval_const_expr(&e, &ConstEnv::new()).expect_err("should fail")
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval("1+2*3"), 7);
        assert_eq!(eval("(1+2)*3"), 9);
        assert_eq!(eval("7 DIV 2"), 3);
        assert_eq!(eval("7 MOD 2"), 1);
        assert_eq!(eval("-5 + 2"), -3);
    }

    #[test]
    fn modula2_div_mod_are_euclidean() {
        // A leading sign applies to the whole first term (§3.1 grammar),
        // so `-7 DIV 2` is -(7 DIV 2); parenthesize to test negatives.
        assert_eq!(eval("-7 DIV 2"), -3);
        assert_eq!(eval("(-7) DIV 2"), -4);
        assert_eq!(eval("(-7) MOD 2"), 1);
    }

    #[test]
    fn relations_and_logic() {
        assert_eq!(eval("3 < 4"), 1);
        assert_eq!(eval("3 >= 4"), 0);
        assert_eq!(eval("1 <> 0"), 1);
        assert_eq!(eval("NOT 0"), 1);
        assert_eq!(eval("NOT 7"), 0);
        assert_eq!(eval("1 AND 1"), 1);
        assert_eq!(eval("1 AND 0"), 0);
        assert_eq!(eval("0 OR 3"), 1);
    }

    #[test]
    fn predefined_functions() {
        assert_eq!(eval("min(3; 1; 2)"), 1);
        assert_eq!(eval("max(3, 1, 2)"), 3);
        assert_eq!(eval("odd(5)"), 1);
        assert_eq!(eval("odd(4)"), 0);
        assert_eq!(eval("odd(-3)"), 1);
    }

    #[test]
    fn errors() {
        assert!(eval_err("1 DIV 0").message.contains("division by zero"));
        assert!(eval_err("n + 1").message.contains("unknown constant"));
        assert!(eval_err("odd(1; 2)").message.contains("exactly one"));
        assert!(eval_err("foo(1)").message.contains("not a predefined"));
    }

    #[test]
    fn env_chain_shadows() {
        let mut root = ConstEnv::new();
        root.bind("n", ConstVal::Num(4));
        root.bind("m", ConstVal::Num(10));
        let root = Rc::new(root);
        let mut child = ConstEnv::child(root);
        child.bind("n", ConstVal::Num(7));
        assert_eq!(child.lookup("n"), Some(&ConstVal::Num(7)));
        assert_eq!(child.lookup("m"), Some(&ConstVal::Num(10)));
        assert_eq!(child.lookup("q"), None);
    }

    #[test]
    fn bin_lsb_first() {
        let v = bin(10, 5, Span::dummy()).unwrap();
        assert_eq!(
            v.flatten(),
            vec![
                Value::Zero,
                Value::One,
                Value::Zero,
                Value::One,
                Value::Zero
            ]
        );
    }

    #[test]
    fn bin_range_checks() {
        assert!(bin(32, 5, Span::dummy()).is_err());
        assert!(bin(31, 5, Span::dummy()).is_ok());
        assert!(bin(-1, 5, Span::dummy()).is_err());
        assert!(bin(0, 0, Span::dummy()).is_ok());
    }

    #[test]
    fn num_round_trips_bin() {
        for n in [0i64, 1, 5, 10, 22, 31] {
            let v = bin(n, 5, Span::dummy()).unwrap();
            assert_eq!(num(&v.flatten()), Some(n));
        }
        assert_eq!(num(&[Value::Undef]), None);
        assert_eq!(num(&[Value::One, Value::NoInfl]), None);
    }

    #[test]
    fn sig_const_eval() {
        let mut env = ConstEnv::new();
        let c =
            zeus_syntax::parser::parse_program("CONST a = ((0,1),(1,0),UNDEF);").expect("parse");
        let zeus_syntax::ast::Decl::Const(defs) = &c.decls[0] else {
            panic!()
        };
        let v = eval_constant(&defs[0].value, &env).unwrap();
        let ConstVal::Sig(sv) = &v else { panic!() };
        assert_eq!(sv.bit_len(), 5);
        assert_eq!(
            sv.flatten(),
            vec![
                Value::Zero,
                Value::One,
                Value::One,
                Value::Zero,
                Value::Undef
            ]
        );
        env.bind("a", v);
        // Index 1-based.
        let ConstVal::Sig(sv) = env.lookup("a").unwrap() else {
            panic!()
        };
        let first = sv.index(1, Span::dummy()).unwrap();
        assert_eq!(first.flatten(), vec![Value::Zero, Value::One]);
        assert!(sv.index(4, Span::dummy()).is_err());
        assert!(sv.index(0, Span::dummy()).is_err());
    }

    #[test]
    fn named_constants_in_sig_consts() {
        let mut env = ConstEnv::new();
        env.bind("x", ConstVal::Num(1));
        let prog =
            zeus_syntax::parser::parse_program("CONST start = (x, 0, NOINFL);").expect("parse");
        let zeus_syntax::ast::Decl::Const(defs) = &prog.decls[0] else {
            panic!()
        };
        let ConstVal::Sig(sv) = eval_constant(&defs[0].value, &env).unwrap() else {
            panic!()
        };
        assert_eq!(sv.flatten(), vec![Value::One, Value::Zero, Value::NoInfl]);
    }

    #[test]
    fn overflow_detected() {
        assert!(eval_err("9223372036854775807 + 1")
            .message
            .contains("overflow"));
    }
}
