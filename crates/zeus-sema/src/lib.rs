//! # zeus-sema
//!
//! Semantic foundations for the Zeus HDL: the four-valued signal domain
//! and its gate/resolution algebra (§8), Modula-2-style constant
//! evaluation (§3.1), the predefined standard environment (§3.2), the
//! static type rule tables of §4.7, and pre-elaboration well-formedness
//! checks (declaration order, name resolution, `USES` visibility).
//!
//! ## Example
//!
//! ```
//! use zeus_sema::value::{self, Value};
//!
//! // §8: "the exiting edge carries a 0 as soon as one entering edge is 0"
//! assert_eq!(value::and([Value::Zero, Value::Undef]), Value::Zero);
//!
//! // Two simultaneous active assignments are the runtime violation that
//! // would "burn transistors":
//! let r = value::resolve([Value::One, Value::Zero]);
//! assert!(r.conflicted());
//! assert_eq!(r.value, Value::Undef);
//! ```

#![warn(missing_docs)]

pub mod check;
pub mod consts;
pub mod names;
pub mod rules;
pub mod value;

pub use check::check_program;
pub use consts::{
    bin, eval_const_expr, eval_constant, eval_sig_const, num, ConstEnv, ConstScope, ConstVal,
    SigVal,
};
pub use rules::{BasicKind, Exception1, RuleVerdict};
pub use value::{Resolution, Value};
