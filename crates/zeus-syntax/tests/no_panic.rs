//! The front end must never panic: arbitrary input produces either a
//! parse tree or diagnostics.

use proptest::prelude::*;
use zeus_syntax::{lex, parse_program};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_never_panics(input in ".*") {
        let _ = lex(&input);
    }

    #[test]
    fn parser_never_panics_on_ascii(input in "[ -~\n]{0,200}") {
        let _ = parse_program(&input);
    }

    /// Token soup from the Zeus vocabulary: much denser coverage of the
    /// parser's error paths than raw ASCII.
    #[test]
    fn parser_never_panics_on_token_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("TYPE"), Just("COMPONENT"), Just("ARRAY"), Just("BEGIN"),
                Just("END"), Just("IS"), Just("IF"), Just("THEN"), Just("ELSE"),
                Just("FOR"), Just("TO"), Just("DO"), Just("WHEN"), Just("OTHERWISE"),
                Just("SIGNAL"), Just("CONST"), Just("WITH"), Just("RESULT"),
                Just("SEQUENTIAL"), Just("PARALLEL"), Just("USES"), Just("NUM"),
                Just("BIN"), Just("NOT"), Just("AND"), Just("OR"), Just("("),
                Just(")"), Just("["), Just("]"), Just("{"), Just("}"), Just(";"),
                Just(","), Just(":"), Just(":="), Just("=="), Just(".."), Just("."),
                Just("*"), Just("="), Just("<"), Just(">"), Just("x"), Just("y"),
                Just("boolean"), Just("multiplex"), Just("0"), Just("1"), Just("42"),
            ],
            0..60,
        )
    ) {
        let input = words.join(" ");
        let _ = parse_program(&input);
    }
}
