//! Print → parse round-trip on *generated* ASTs.
//!
//! The inline printer tests check paper programs; here proptest generates
//! random constant expressions, expressions, statements and layout
//! fragments, prints them, re-parses, and requires the printer to be a
//! fixpoint — which catches precedence and spacing bugs in either
//! direction.

use proptest::prelude::*;
use zeus_syntax::ast::*;
use zeus_syntax::span::Span;
use zeus_syntax::{parse_program, print_program};

fn ident_strategy() -> impl Strategy<Value = Ident> {
    // Lower-case identifiers that cannot collide with keywords (all
    // keywords are upper case) or predefined names used specially.
    "[a-z][a-z0-9]{0,5}"
        .prop_filter("avoid predefined basic types", |s| {
            !matches!(
                s.as_str(),
                "boolean" | "multiplex" | "virtual" | "min" | "max" | "odd"
            )
        })
        .prop_map(|s| Ident::new(s, Span::dummy()))
}

fn const_expr_strategy() -> impl Strategy<Value = ConstExpr> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(|n| ConstExpr::Num(n, Span::dummy())),
        ident_strategy().prop_map(ConstExpr::Name),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(ConstBinOp::Add),
                    Just(ConstBinOp::Sub),
                    Just(ConstBinOp::Mul),
                    Just(ConstBinOp::Div),
                    Just(ConstBinOp::Mod),
                    Just(ConstBinOp::And),
                    Just(ConstBinOp::Or),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, lhs, rhs)| ConstExpr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                }),
            (
                prop_oneof![Just(ConstUnOp::Minus), Just(ConstUnOp::Not)],
                inner.clone()
            )
                .prop_map(|(op, e)| ConstExpr::Unary {
                    op,
                    expr: Box::new(e),
                    span: Span::dummy(),
                }),
            (inner.clone(), inner).prop_map(|(a, b)| ConstExpr::Binary {
                op: ConstBinOp::Lt,
                lhs: Box::new(a),
                rhs: Box::new(b),
            }),
        ]
    })
}

fn selector_strategy() -> impl Strategy<Value = Selector> {
    prop_oneof![
        const_expr_strategy().prop_map(Selector::Index),
        (const_expr_strategy(), const_expr_strategy()).prop_map(|(a, b)| Selector::Range(a, b)),
        ident_strategy().prop_map(Selector::Field),
    ]
}

fn signal_ref_strategy() -> impl Strategy<Value = SignalRef> {
    (
        ident_strategy(),
        proptest::collection::vec(selector_strategy(), 0..3),
    )
        .prop_map(|(base, sels)| SignalRef {
            base,
            sels,
            span: Span::dummy(),
        })
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        signal_ref_strategy().prop_map(Expr::Sig),
        Just(Expr::Const(SigConst::Value(SigValue::Zero(Span::dummy())))),
        Just(Expr::Const(SigConst::Value(SigValue::One(Span::dummy())))),
        Just(Expr::Star {
            count: None,
            span: Span::dummy()
        }),
        (const_expr_strategy(), const_expr_strategy()).prop_map(|(a, b)| Expr::Bin(
            a,
            b,
            Span::dummy()
        )),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (
                ident_strategy(),
                proptest::collection::vec(const_expr_strategy(), 0..2),
                proptest::collection::vec(inner.clone(), 1..3)
            )
                .prop_map(|(name, type_args, args)| Expr::Call {
                    name,
                    type_args,
                    args,
                    span: Span::dummy(),
                }),
            inner
                .clone()
                .prop_map(|e| Expr::Not(Box::new(e), Span::dummy())),
            proptest::collection::vec(inner, 1..4)
                .prop_map(|items| Expr::Tuple(items, Span::dummy())),
        ]
    })
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let assign = (signal_ref_strategy(), expr_strategy()).prop_map(|(lhs, rhs)| Stmt::Assign {
        lhs: Signal::Ref(lhs),
        op: AssignOp::Define,
        rhs,
        span: Span::dummy(),
    });
    let alias =
        (signal_ref_strategy(), signal_ref_strategy()).prop_map(|(lhs, rhs)| Stmt::Assign {
            lhs: Signal::Ref(lhs),
            op: AssignOp::Alias,
            rhs: Expr::Sig(rhs),
            span: Span::dummy(),
        });
    let connection =
        (signal_ref_strategy(), expr_strategy()).prop_map(|(target, args)| Stmt::Connection {
            target,
            args: Some(Expr::Tuple(vec![args], Span::dummy())),
            span: Span::dummy(),
        });
    let leaf = prop_oneof![assign, alias, connection];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (
                ident_strategy(),
                const_expr_strategy(),
                const_expr_strategy(),
                any::<bool>(),
                proptest::collection::vec(inner.clone(), 1..3)
            )
                .prop_map(|(var, from, to, downto, body)| Stmt::For {
                    var,
                    from,
                    to,
                    downto,
                    sequentially: false,
                    body,
                    span: Span::dummy(),
                }),
            (
                expr_strategy(),
                proptest::collection::vec(inner.clone(), 1..3),
                proptest::option::of(proptest::collection::vec(inner.clone(), 1..2))
            )
                .prop_map(|(cond, body, els)| Stmt::If {
                    arms: vec![(cond, body)],
                    els,
                    span: Span::dummy(),
                }),
            (
                const_expr_strategy(),
                proptest::collection::vec(inner.clone(), 1..3),
                proptest::option::of(proptest::collection::vec(inner, 1..2))
            )
                .prop_map(|(cond, body, otherwise)| Stmt::WhenGen {
                    arms: vec![(cond, body)],
                    otherwise,
                    span: Span::dummy(),
                }),
        ]
    })
}

/// Wraps generated statements into a syntactically complete program.
fn program_with(stmts: Vec<Stmt>) -> Program {
    let comp = ComponentType {
        params: vec![FParams {
            mode: Mode::In,
            names: vec![Ident::new("p0", Span::dummy())],
            ty: Type::Named {
                name: Ident::new("boolean", Span::dummy()),
                args: Vec::new(),
            },
        }],
        header_layout: Vec::new(),
        result: None,
        body: Some(ComponentBody {
            uses: None,
            decls: Vec::new(),
            layout: Vec::new(),
            stmts,
        }),
        span: Span::dummy(),
    };
    Program {
        decls: vec![Decl::Type(vec![TypeDef {
            name: Ident::new("t0", Span::dummy()),
            params: Vec::new(),
            ty: Type::Component(Box::new(comp)),
        }])],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn printed_const_exprs_reparse(e in const_expr_strategy()) {
        let text = zeus_syntax::print_const_expr(&e);
        let parsed = zeus_syntax::parse_const_expr(&text)
            .map_err(|err| TestCaseError::fail(format!("{text}: {err}")))?;
        prop_assert_eq!(zeus_syntax::print_const_expr(&parsed), text);
    }

    #[test]
    fn printed_exprs_reparse(e in expr_strategy()) {
        let text = zeus_syntax::print_expr(&e);
        let parsed = zeus_syntax::parse_expr(&text)
            .map_err(|err| TestCaseError::fail(format!("{text}: {err}")))?;
        prop_assert_eq!(zeus_syntax::print_expr(&parsed), text);
    }

    #[test]
    fn printed_programs_reparse(stmts in proptest::collection::vec(stmt_strategy(), 1..5)) {
        let prog = program_with(stmts);
        let text = print_program(&prog);
        let parsed = parse_program(&text)
            .map_err(|err| TestCaseError::fail(format!("{text}\n{err}")))?;
        prop_assert_eq!(print_program(&parsed), text);
    }
}
