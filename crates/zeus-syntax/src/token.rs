//! Token definitions for the Zeus vocabulary (paper §2).

use crate::span::Span;
use std::fmt;

/// The kind of a lexical token.
///
/// Keywords are reserved words written in upper case in Zeus source, exactly
/// as listed in §2 of the paper. Identifiers are `letter {letter|digit}`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// An identifier (case-sensitive; upper-case reserved words are keywords).
    Ident(String),
    /// A number literal, already converted (octal `B`/`b` suffix handled).
    Number(i64),

    // Special symbols.
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{` (opens a layout statement list)
    LBrace,
    /// `}` (closes a layout statement list)
    RBrace,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `:`
    Colon,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `:=` (signal definition)
    Assign,
    /// `==` (aliasing)
    Alias,
    /// `..` (range)
    DotDot,
    /// `*` (unspecified signal / multiplication)
    Star,

    // Keywords (§2 vocabulary). One variant per reserved word; each
    // corresponds 1:1 to its upper-case spelling.
    /// `AND`
    KwAnd,
    /// `ARRAY`
    KwArray,
    /// `BEGIN`
    KwBegin,
    /// `BIN`
    KwBin,
    /// `BOTTOM`
    KwBottom,
    /// `CLK`
    KwClk,
    /// `COMPONENT`
    KwComponent,
    /// `CONST`
    KwConst,
    /// `DIV`
    KwDiv,
    /// `DO`
    KwDo,
    /// `DOWNTO`
    KwDownto,
    /// `ELSE`
    KwElse,
    /// `ELSIF`
    KwElsif,
    /// `END`
    KwEnd,
    /// `FOR`
    KwFor,
    /// `IF`
    KwIf,
    /// `IN`
    KwIn,
    /// `IS`
    KwIs,
    /// `LEFT`
    KwLeft,
    /// `MOD`
    KwMod,
    /// `NOT`
    KwNot,
    /// `NUM`
    KwNum,
    /// `OF`
    KwOf,
    /// `OR`
    KwOr,
    /// `ORDER`
    KwOrder,
    /// `OTHERWISE`
    KwOtherwise,
    /// `OTHERWISEWHEN`
    KwOtherwisewhen,
    /// `OUT`
    KwOut,
    /// `PARALLEL`
    KwParallel,
    /// `RSET`
    KwRset,
    /// `RESULT`
    KwResult,
    /// `RIGHT`
    KwRight,
    /// `SEQUENTIAL`
    KwSequential,
    /// `SEQUENTIALLY`
    KwSequentially,
    /// `SIGNAL`
    KwSignal,
    /// `THEN`
    KwThen,
    /// `TO`
    KwTo,
    /// `TOP`
    KwTop,
    /// `TYPE`
    KwType,
    /// `USES`
    KwUses,
    /// `WHEN`
    KwWhen,
    /// `WITH`
    KwWith,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Looks up an upper-case word in the reserved keyword table.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match word {
            "AND" => KwAnd,
            "ARRAY" => KwArray,
            "BEGIN" => KwBegin,
            "BIN" => KwBin,
            "BOTTOM" => KwBottom,
            "CLK" => KwClk,
            "COMPONENT" => KwComponent,
            "CONST" => KwConst,
            "DIV" => KwDiv,
            "DO" => KwDo,
            "DOWNTO" => KwDownto,
            "ELSE" => KwElse,
            "ELSIF" => KwElsif,
            "END" => KwEnd,
            "FOR" => KwFor,
            "IF" => KwIf,
            "IN" => KwIn,
            "IS" => KwIs,
            "LEFT" => KwLeft,
            "MOD" => KwMod,
            "NOT" => KwNot,
            "NUM" => KwNum,
            "OF" => KwOf,
            "OR" => KwOr,
            "ORDER" => KwOrder,
            "OTHERWISE" => KwOtherwise,
            "OTHERWISEWHEN" => KwOtherwisewhen,
            "OUT" => KwOut,
            "PARALLEL" => KwParallel,
            "RSET" => KwRset,
            "RESULT" => KwResult,
            "RIGHT" => KwRight,
            "SEQUENTIAL" => KwSequential,
            "SEQUENTIALLY" => KwSequentially,
            "SIGNAL" => KwSignal,
            "THEN" => KwThen,
            "TO" => KwTo,
            "TOP" => KwTop,
            "TYPE" => KwType,
            "USES" => KwUses,
            "WHEN" => KwWhen,
            "WITH" => KwWith,
            _ => return None,
        })
    }

    /// The canonical source text of this token kind (for messages/printing).
    pub fn text(&self) -> String {
        use TokenKind::*;
        match self {
            Ident(s) => s.clone(),
            Number(n) => n.to_string(),
            Plus => "+".into(),
            Minus => "-".into(),
            LParen => "(".into(),
            RParen => ")".into(),
            LBracket => "[".into(),
            RBracket => "]".into(),
            LBrace => "{".into(),
            RBrace => "}".into(),
            Dot => ".".into(),
            Comma => ",".into(),
            Semicolon => ";".into(),
            Colon => ":".into(),
            Lt => "<".into(),
            Le => "<=".into(),
            Gt => ">".into(),
            Ge => ">=".into(),
            Eq => "=".into(),
            Ne => "<>".into(),
            Assign => ":=".into(),
            Alias => "==".into(),
            DotDot => "..".into(),
            Star => "*".into(),
            KwAnd => "AND".into(),
            KwArray => "ARRAY".into(),
            KwBegin => "BEGIN".into(),
            KwBin => "BIN".into(),
            KwBottom => "BOTTOM".into(),
            KwClk => "CLK".into(),
            KwComponent => "COMPONENT".into(),
            KwConst => "CONST".into(),
            KwDiv => "DIV".into(),
            KwDo => "DO".into(),
            KwDownto => "DOWNTO".into(),
            KwElse => "ELSE".into(),
            KwElsif => "ELSIF".into(),
            KwEnd => "END".into(),
            KwFor => "FOR".into(),
            KwIf => "IF".into(),
            KwIn => "IN".into(),
            KwIs => "IS".into(),
            KwLeft => "LEFT".into(),
            KwMod => "MOD".into(),
            KwNot => "NOT".into(),
            KwNum => "NUM".into(),
            KwOf => "OF".into(),
            KwOr => "OR".into(),
            KwOrder => "ORDER".into(),
            KwOtherwise => "OTHERWISE".into(),
            KwOtherwisewhen => "OTHERWISEWHEN".into(),
            KwOut => "OUT".into(),
            KwParallel => "PARALLEL".into(),
            KwRset => "RSET".into(),
            KwResult => "RESULT".into(),
            KwRight => "RIGHT".into(),
            KwSequential => "SEQUENTIAL".into(),
            KwSequentially => "SEQUENTIALLY".into(),
            KwSignal => "SIGNAL".into(),
            KwThen => "THEN".into(),
            KwTo => "TO".into(),
            KwTop => "TOP".into(),
            KwType => "TYPE".into(),
            KwUses => "USES".into(),
            KwWhen => "WHEN".into(),
            KwWith => "WITH".into(),
            Eof => "<eof>".into(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text())
    }
}

/// A lexical token: kind plus source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it appears in the source.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_table_round_trips() {
        for w in [
            "AND",
            "ARRAY",
            "BEGIN",
            "BIN",
            "BOTTOM",
            "CLK",
            "COMPONENT",
            "CONST",
            "DIV",
            "DO",
            "DOWNTO",
            "ELSE",
            "ELSIF",
            "END",
            "FOR",
            "IF",
            "IN",
            "IS",
            "LEFT",
            "MOD",
            "NOT",
            "NUM",
            "OF",
            "OR",
            "ORDER",
            "OTHERWISE",
            "OTHERWISEWHEN",
            "OUT",
            "PARALLEL",
            "RSET",
            "RESULT",
            "RIGHT",
            "SEQUENTIAL",
            "SEQUENTIALLY",
            "SIGNAL",
            "THEN",
            "TO",
            "TOP",
            "TYPE",
            "USES",
            "WHEN",
            "WITH",
        ] {
            let kind = TokenKind::keyword(w).unwrap_or_else(|| panic!("{w} not a keyword"));
            assert_eq!(kind.text(), w);
        }
    }

    #[test]
    fn non_keywords_are_none() {
        assert_eq!(TokenKind::keyword("and"), None);
        assert_eq!(TokenKind::keyword("REG"), None); // REG is predefined, not reserved
        assert_eq!(TokenKind::keyword("score"), None);
    }

    #[test]
    fn token_display() {
        let t = Token::new(TokenKind::Assign, Span::new(0, 2));
        assert_eq!(format!("{t}"), ":=");
    }
}
