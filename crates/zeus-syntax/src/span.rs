//! Source positions and spans.
//!
//! Every token and AST node carries a [`Span`] into the original source so
//! diagnostics can point at the offending text.

use std::fmt;

/// A half-open byte range `[start, end)` into a source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    pub fn new(start: u32, end: u32) -> Self {
        Span { start, end }
    }

    /// A zero-width span at offset 0, used for synthesized nodes.
    pub fn dummy() -> Self {
        Span { start: 0, end: 0 }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the span is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A 1-based line/column position, computed on demand from a byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maps byte offsets back to line/column positions for one source text.
#[derive(Debug, Clone)]
pub struct SourceMap {
    /// Byte offsets at which each line starts. `line_starts[0] == 0`.
    line_starts: Vec<u32>,
    len: u32,
}

impl SourceMap {
    /// Builds the line table for `text`.
    pub fn new(text: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceMap {
            line_starts,
            len: text.len() as u32,
        }
    }

    /// Converts a byte offset to a 1-based line/column pair.
    ///
    /// Offsets past the end of the text are clamped to the last position.
    pub fn line_col(&self, offset: u32) -> LineCol {
        let offset = offset.min(self.len);
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line as u32 + 1,
            col: offset - self.line_starts[line] + 1,
        }
    }

    /// Number of lines in the source.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_union_and_len() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(b.to(a), Span::new(2, 9));
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Span::dummy().is_empty());
    }

    #[test]
    fn line_col_lookup() {
        let sm = SourceMap::new("ab\ncde\n\nf");
        assert_eq!(sm.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(sm.line_col(1), LineCol { line: 1, col: 2 });
        assert_eq!(sm.line_col(3), LineCol { line: 2, col: 1 });
        assert_eq!(sm.line_col(5), LineCol { line: 2, col: 3 });
        assert_eq!(sm.line_col(7), LineCol { line: 3, col: 1 });
        assert_eq!(sm.line_col(8), LineCol { line: 4, col: 1 });
        assert_eq!(sm.line_count(), 4);
    }

    #[test]
    fn line_col_clamps_past_end() {
        let sm = SourceMap::new("xy");
        assert_eq!(sm.line_col(99), LineCol { line: 1, col: 3 });
    }

    #[test]
    fn empty_source() {
        let sm = SourceMap::new("");
        assert_eq!(sm.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(sm.line_count(), 1);
    }
}
