//! Recursive-descent parser for the Zeus grammar of paper §7.
//!
//! The parser covers the main grammar (rules 1-63) and the layout-language
//! grammar. Deviations from the (typo-ridden) printed EBNF are documented in
//! `DESIGN.md`; the important disambiguation decisions are:
//!
//! * In expression position, `ident (...)` is a function-component call and
//!   `ident [c1,..] (...)` is a call with numeric type parameters (the prose
//!   of §3.2 writes `plus[n](a,b)`).
//! * In statement position, `signal (expr)` is a connection statement.
//! * `ARRAY[a..b, c..d] OF t` is accepted as sugar for nested arrays, and
//!   `m[i,j]` as sugar for `m[i][j]` (used by the chessboard example).
//! * A `BOUNDARY` layout list contains only basic items (pins).

use crate::ast::*;
use crate::diag::{codes, Diagnostic, Diagnostics};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Classifies untagged lexer/parser diagnostics as `Z001` (syntax).
fn tag_syntax(mut ds: Diagnostics) -> Diagnostics {
    ds.tag_default_code(codes::SYNTAX);
    ds
}

/// Parses a complete Zeus program.
///
/// # Errors
///
/// Returns all lexical and syntactic diagnostics accumulated; parsing stops
/// at the first syntax error (recovery in a `;`-separated, keyword-rich
/// grammar adds little value for a compiler used programmatically).
pub fn parse_program(src: &str) -> Result<Program, Diagnostics> {
    let tokens = lex(src).map_err(tag_syntax)?;
    let mut p = Parser::new(tokens);
    let prog = p.program();
    match prog {
        Ok(prog) if !p.diags.has_errors() => Ok(prog),
        Ok(_) => Err(tag_syntax(p.diags)),
        Err(d) => {
            p.diags.push(d);
            Err(tag_syntax(p.diags))
        }
    }
}

/// Parses a single expression (useful for tests and tools).
///
/// # Errors
///
/// Returns diagnostics when the text is not exactly one expression.
pub fn parse_expr(src: &str) -> Result<Expr, Diagnostics> {
    let tokens = lex(src).map_err(tag_syntax)?;
    let mut p = Parser::new(tokens);
    match p.expression().and_then(|e| {
        p.expect(&TokenKind::Eof)?;
        Ok(e)
    }) {
        Ok(e) => Ok(e),
        Err(d) => {
            p.diags.push(d);
            Err(tag_syntax(p.diags))
        }
    }
}

/// Parses a single constant expression.
///
/// # Errors
///
/// Returns diagnostics when the text is not exactly one constant expression.
pub fn parse_const_expr(src: &str) -> Result<ConstExpr, Diagnostics> {
    let tokens = lex(src).map_err(tag_syntax)?;
    let mut p = Parser::new(tokens);
    match p.const_expr().and_then(|e| {
        p.expect(&TokenKind::Eof)?;
        Ok(e)
    }) {
        Ok(e) => Ok(e),
        Err(d) => {
            p.diags.push(d);
            Err(tag_syntax(p.diags))
        }
    }
}

type PResult<T> = Result<T, Diagnostic>;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    diags: Diagnostics,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            diags: Diagnostics::new(),
        }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1).min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> PResult<Token> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            Err(Diagnostic::error(
                self.span(),
                format!(
                    "expected '{}' but found '{}'",
                    kind.text(),
                    self.peek().text()
                ),
            ))
        }
    }

    fn ident(&mut self) -> PResult<Ident> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let t = self.bump();
                Ok(Ident::new(name, t.span))
            }
            other => Err(Diagnostic::error(
                self.span(),
                format!("expected an identifier but found '{}'", other.text()),
            )),
        }
    }

    // -- program & declarations ------------------------------------------

    fn program(&mut self) -> PResult<Program> {
        let mut decls = Vec::new();
        while !self.at(&TokenKind::Eof) {
            decls.push(self.declaration()?);
        }
        Ok(Program { decls })
    }

    fn declaration(&mut self) -> PResult<Decl> {
        match self.peek() {
            TokenKind::KwConst => self.const_decl(),
            TokenKind::KwType => self.type_decl(),
            TokenKind::KwSignal => self.signal_decl(),
            other => Err(Diagnostic::error(
                self.span(),
                format!(
                    "expected CONST, TYPE or SIGNAL but found '{}'",
                    other.text()
                ),
            )),
        }
    }

    fn const_decl(&mut self) -> PResult<Decl> {
        self.expect(&TokenKind::KwConst)?;
        let mut defs = Vec::new();
        while let TokenKind::Ident(_) = self.peek() {
            let name = self.ident()?;
            self.expect(&TokenKind::Eq)?;
            let value = self.constant()?;
            self.expect(&TokenKind::Semicolon)?;
            defs.push(ConstDef { name, value });
        }
        Ok(Decl::Const(defs))
    }

    /// `constant = ConstExpression | sigConstExpression`.
    ///
    /// A leading `(` or `BIN` or a bare `0`/`1` not followed by an operator
    /// means a signal constant; everything else is numeric.
    fn constant(&mut self) -> PResult<Constant> {
        match self.peek() {
            TokenKind::LParen => Ok(Constant::Sig(self.sig_const()?)),
            TokenKind::KwBin => Ok(Constant::Sig(self.sig_const()?)),
            _ => Ok(Constant::Num(self.const_expr()?)),
        }
    }

    fn sig_const(&mut self) -> PResult<SigConst> {
        match self.peek().clone() {
            TokenKind::LParen => {
                let start = self.bump().span;
                let mut items = vec![self.sig_const()?];
                while self.eat(&TokenKind::Comma) {
                    items.push(self.sig_const()?);
                }
                let end = self.expect(&TokenKind::RParen)?.span;
                Ok(SigConst::Tuple(items, start.to(end)))
            }
            TokenKind::KwBin => {
                let start = self.bump().span;
                self.expect(&TokenKind::LParen)?;
                let a = self.const_expr()?;
                self.expect(&TokenKind::Comma)?;
                let b = self.const_expr()?;
                let end = self.expect(&TokenKind::RParen)?.span;
                Ok(SigConst::Bin(a, b, start.to(end)))
            }
            TokenKind::Number(0) => {
                let t = self.bump();
                Ok(SigConst::Value(SigValue::Zero(t.span)))
            }
            TokenKind::Number(1) => {
                let t = self.bump();
                Ok(SigConst::Value(SigValue::One(t.span)))
            }
            TokenKind::Ident(_) => {
                let id = self.ident()?;
                Ok(SigConst::Value(SigValue::Name(id)))
            }
            other => Err(Diagnostic::error(
                self.span(),
                format!(
                    "expected a signal constant (0, 1, name, tuple or BIN) but found '{}'",
                    other.text()
                ),
            )),
        }
    }

    fn type_decl(&mut self) -> PResult<Decl> {
        self.expect(&TokenKind::KwType)?;
        let mut defs = Vec::new();
        while let TokenKind::Ident(_) = self.peek() {
            let name = self.ident()?;
            let mut params = Vec::new();
            if self.eat(&TokenKind::LParen) {
                params.push(self.ident()?);
                while self.eat(&TokenKind::Comma) {
                    params.push(self.ident()?);
                }
                self.expect(&TokenKind::RParen)?;
            }
            self.expect(&TokenKind::Eq)?;
            let ty = self.ty()?;
            self.expect(&TokenKind::Semicolon)?;
            defs.push(TypeDef { name, params, ty });
        }
        Ok(Decl::Type(defs))
    }

    fn signal_decl(&mut self) -> PResult<Decl> {
        self.expect(&TokenKind::KwSignal)?;
        let mut defs = Vec::new();
        while let TokenKind::Ident(_) = self.peek() {
            let mut names = vec![self.ident()?];
            while self.eat(&TokenKind::Comma) {
                names.push(self.ident()?);
            }
            self.expect(&TokenKind::Colon)?;
            let ty = self.ty()?;
            self.expect(&TokenKind::Semicolon)?;
            defs.push(SignalDef { names, ty });
        }
        Ok(Decl::Signal(defs))
    }

    // -- types -------------------------------------------------------------

    fn ty(&mut self) -> PResult<Type> {
        match self.peek() {
            TokenKind::KwArray => self.array_type(),
            TokenKind::KwComponent => self.component_type(),
            TokenKind::Ident(_) => {
                let name = self.ident()?;
                let mut args = Vec::new();
                if self.eat(&TokenKind::LParen) {
                    args.push(self.const_expr()?);
                    while self.eat(&TokenKind::Comma) {
                        args.push(self.const_expr()?);
                    }
                    self.expect(&TokenKind::RParen)?;
                }
                Ok(Type::Named { name, args })
            }
            other => Err(Diagnostic::error(
                self.span(),
                format!(
                    "expected ARRAY, COMPONENT or a type name but found '{}'",
                    other.text()
                ),
            )),
        }
    }

    /// `ARRAY [a..b {, c..d}] OF type` — comma-separated dimensions are
    /// sugar for nested arrays.
    fn array_type(&mut self) -> PResult<Type> {
        let start = self.expect(&TokenKind::KwArray)?.span;
        self.expect(&TokenKind::LBracket)?;
        let mut dims = Vec::new();
        loop {
            let lo = self.const_expr()?;
            self.expect(&TokenKind::DotDot)?;
            let hi = self.const_expr()?;
            dims.push((lo, hi));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RBracket)?;
        self.expect(&TokenKind::KwOf)?;
        let elem = self.ty()?;
        let span = start.to(elem.span());
        let mut ty = elem;
        for (lo, hi) in dims.into_iter().rev() {
            ty = Type::Array {
                lo,
                hi,
                elem: Box::new(ty),
                span,
            };
        }
        Ok(ty)
    }

    fn component_type(&mut self) -> PResult<Type> {
        let start = self.expect(&TokenKind::KwComponent)?.span;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            params.push(self.fparams()?);
            while self.eat(&TokenKind::Semicolon) {
                params.push(self.fparams()?);
            }
        }
        self.expect(&TokenKind::RParen)?;
        let mut header_layout = Vec::new();
        if self.eat(&TokenKind::LBrace) {
            header_layout = self.layout_list()?;
            self.expect(&TokenKind::RBrace)?;
        }
        let mut result = None;
        if self.eat(&TokenKind::Colon) {
            result = Some(self.ty()?);
        }
        let mut body = None;
        let mut end = self.prev_span();
        if self.eat(&TokenKind::KwIs) {
            let mut uses = None;
            if self.eat(&TokenKind::KwUses) {
                let mut list = Vec::new();
                if let TokenKind::Ident(_) = self.peek() {
                    list.push(self.ident()?);
                    while self.eat(&TokenKind::Comma) {
                        list.push(self.ident()?);
                    }
                }
                self.expect(&TokenKind::Semicolon)?;
                uses = Some(list);
            }
            let mut decls = Vec::new();
            while matches!(
                self.peek(),
                TokenKind::KwConst | TokenKind::KwType | TokenKind::KwSignal
            ) {
                decls.push(self.declaration()?);
            }
            let mut layout = Vec::new();
            if self.eat(&TokenKind::LBrace) {
                layout = self.layout_list()?;
                self.expect(&TokenKind::RBrace)?;
            }
            self.expect(&TokenKind::KwBegin)?;
            let stmts = self.stmt_list()?;
            end = self.expect(&TokenKind::KwEnd)?.span;
            body = Some(ComponentBody {
                uses,
                decls,
                layout,
                stmts,
            });
        }
        Ok(Type::Component(Box::new(ComponentType {
            params,
            header_layout,
            result,
            body,
            span: start.to(end),
        })))
    }

    fn fparams(&mut self) -> PResult<FParams> {
        let mode = if self.eat(&TokenKind::KwIn) {
            Mode::In
        } else if self.eat(&TokenKind::KwOut) {
            Mode::Out
        } else {
            Mode::InOut
        };
        let mut names = vec![self.ident()?];
        while self.eat(&TokenKind::Comma) {
            names.push(self.ident()?);
        }
        self.expect(&TokenKind::Colon)?;
        let ty = self.ty()?;
        Ok(FParams { mode, names, ty })
    }

    // -- constant expressions ----------------------------------------------

    fn const_expr(&mut self) -> PResult<ConstExpr> {
        let lhs = self.simple_const_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => Some(ConstBinOp::Eq),
            TokenKind::Ne => Some(ConstBinOp::Ne),
            TokenKind::Lt => Some(ConstBinOp::Lt),
            TokenKind::Le => Some(ConstBinOp::Le),
            TokenKind::Gt => Some(ConstBinOp::Gt),
            TokenKind::Ge => Some(ConstBinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.simple_const_expr()?;
            Ok(ConstExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            })
        } else {
            Ok(lhs)
        }
    }

    fn simple_const_expr(&mut self) -> PResult<ConstExpr> {
        let start = self.span();
        let neg = if self.eat(&TokenKind::Minus) {
            true
        } else {
            self.eat(&TokenKind::Plus);
            false
        };
        let mut lhs = self.const_term()?;
        if neg {
            let span = start.to(lhs.span());
            lhs = ConstExpr::Unary {
                op: ConstUnOp::Minus,
                expr: Box::new(lhs),
                span,
            };
        }
        loop {
            let op = match self.peek() {
                TokenKind::Plus => ConstBinOp::Add,
                TokenKind::Minus => ConstBinOp::Sub,
                TokenKind::KwOr => ConstBinOp::Or,
                _ => break,
            };
            self.bump();
            let rhs = self.const_term()?;
            lhs = ConstExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn const_term(&mut self) -> PResult<ConstExpr> {
        let mut lhs = self.const_factor()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => ConstBinOp::Mul,
                TokenKind::KwDiv => ConstBinOp::Div,
                TokenKind::KwMod => ConstBinOp::Mod,
                TokenKind::KwAnd => ConstBinOp::And,
                _ => break,
            };
            self.bump();
            let rhs = self.const_factor()?;
            lhs = ConstExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn const_factor(&mut self) -> PResult<ConstExpr> {
        match self.peek().clone() {
            TokenKind::Number(n) => {
                let t = self.bump();
                Ok(ConstExpr::Num(n, t.span))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.const_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::KwNot => {
                let start = self.bump().span;
                let e = self.const_factor()?;
                let span = start.to(e.span());
                Ok(ConstExpr::Unary {
                    op: ConstUnOp::Not,
                    expr: Box::new(e),
                    span,
                })
            }
            TokenKind::Ident(_) => {
                let name = self.ident()?;
                if self.eat(&TokenKind::LParen) {
                    let mut args = vec![self.const_expr()?];
                    // Grammar separates arguments with ';'; we accept ','.
                    while self.eat(&TokenKind::Semicolon) || self.eat(&TokenKind::Comma) {
                        args.push(self.const_expr()?);
                    }
                    let end = self.expect(&TokenKind::RParen)?.span;
                    let span = name.span.to(end);
                    Ok(ConstExpr::Call { name, args, span })
                } else {
                    Ok(ConstExpr::Name(name))
                }
            }
            other => Err(Diagnostic::error(
                self.span(),
                format!(
                    "expected a constant expression but found '{}'",
                    other.text()
                ),
            )),
        }
    }

    // -- signals -------------------------------------------------------------

    /// Parses `ident { selectors }`; `base` has already been consumed.
    fn signal_ref_after(&mut self, base: Ident) -> PResult<SignalRef> {
        let mut sels = Vec::new();
        let start = base.span;
        loop {
            if self.eat(&TokenKind::LBracket) {
                loop {
                    if self.at(&TokenKind::KwNum) {
                        let nstart = self.bump().span;
                        self.expect(&TokenKind::LParen)?;
                        let inner = self.signal_ref()?;
                        self.expect(&TokenKind::RParen)?;
                        let span = nstart.to(self.prev_span());
                        sels.push(Selector::NumIndex(Box::new(inner), span));
                    } else {
                        let lo = self.const_expr()?;
                        if self.eat(&TokenKind::DotDot) {
                            let hi = self.const_expr()?;
                            sels.push(Selector::Range(lo, hi));
                        } else {
                            sels.push(Selector::Index(lo));
                        }
                    }
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RBracket)?;
            } else if self.at(&TokenKind::Dot) {
                self.bump();
                let field = self.ident()?;
                if self.eat(&TokenKind::DotDot) {
                    let last = self.ident()?;
                    sels.push(Selector::FieldRange(field, last));
                } else {
                    sels.push(Selector::Field(field));
                }
            } else {
                break;
            }
        }
        let span = start.to(self.prev_span());
        Ok(SignalRef { base, sels, span })
    }

    fn signal_ref(&mut self) -> PResult<SignalRef> {
        let base = self.signal_base()?;
        self.signal_ref_after(base)
    }

    /// A signal base identifier; the predefined CLK and RSET are keywords
    /// in the token stream but ordinary signals semantically.
    fn signal_base(&mut self) -> PResult<Ident> {
        match self.peek() {
            TokenKind::KwClk => {
                let t = self.bump();
                Ok(Ident::new("CLK", t.span))
            }
            TokenKind::KwRset => {
                let t = self.bump();
                Ok(Ident::new("RSET", t.span))
            }
            _ => self.ident(),
        }
    }

    // -- expressions -----------------------------------------------------------

    fn expression(&mut self) -> PResult<Expr> {
        match self.peek().clone() {
            TokenKind::Star => {
                let start = self.bump().span;
                let mut count = None;
                if self.eat(&TokenKind::Colon) {
                    count = Some(self.const_expr()?);
                }
                let span = start.to(self.prev_span());
                Ok(Expr::Star { count, span })
            }
            TokenKind::LParen => {
                let start = self.bump().span;
                let mut items = vec![self.expression()?];
                while self.eat(&TokenKind::Comma) {
                    items.push(self.expression()?);
                }
                let end = self.expect(&TokenKind::RParen)?.span;
                Ok(Expr::Tuple(items, start.to(end)))
            }
            TokenKind::KwNot => {
                let start = self.bump().span;
                let e = self.expression()?;
                let span = start.to(e.span());
                Ok(Expr::Not(Box::new(e), span))
            }
            TokenKind::KwBin => {
                let start = self.bump().span;
                self.expect(&TokenKind::LParen)?;
                let a = self.const_expr()?;
                self.expect(&TokenKind::Comma)?;
                let b = self.const_expr()?;
                let end = self.expect(&TokenKind::RParen)?.span;
                Ok(Expr::Bin(a, b, start.to(end)))
            }
            // The gate keywords AND/OR are callable in expressions.
            TokenKind::KwAnd | TokenKind::KwOr => {
                let name = match self.peek() {
                    TokenKind::KwAnd => "AND",
                    _ => "OR",
                };
                let t = self.bump();
                let ident = Ident::new(name, t.span);
                self.finish_call(ident, Vec::new())
            }
            TokenKind::KwClk | TokenKind::KwRset => {
                let r = self.signal_ref()?;
                Ok(Expr::Sig(r))
            }
            TokenKind::Number(n) => {
                let t = self.bump();
                match n {
                    0 => Ok(Expr::Const(SigConst::Value(SigValue::Zero(t.span)))),
                    1 => Ok(Expr::Const(SigConst::Value(SigValue::One(t.span)))),
                    _ => Err(Diagnostic::error(
                        t.span,
                        "a number in an expression must be the signal value 0 or 1 (use BIN for wider constants)",
                    )),
                }
            }
            TokenKind::Ident(_) => {
                let base = self.ident()?;
                // `ident(` is a call; `ident[c1,..](` is a call with type
                // parameters; anything else is a signal reference.
                if self.at(&TokenKind::LParen) {
                    return self.finish_call(base, Vec::new());
                }
                if self.at(&TokenKind::LBracket) && self.is_call_with_type_args() {
                    self.bump(); // '['
                    let mut type_args = vec![self.const_expr()?];
                    while self.eat(&TokenKind::Comma) {
                        type_args.push(self.const_expr()?);
                    }
                    self.expect(&TokenKind::RBracket)?;
                    return self.finish_call(base, type_args);
                }
                let r = self.signal_ref_after(base)?;
                Ok(Expr::Sig(r))
            }
            other => Err(Diagnostic::error(
                self.span(),
                format!("expected an expression but found '{}'", other.text()),
            )),
        }
    }

    /// Lookahead: does `[ ... ] (` follow? Then the brackets are numeric
    /// type parameters of a call, not an index selector.
    fn is_call_with_type_args(&self) -> bool {
        debug_assert!(self.at(&TokenKind::LBracket));
        let mut depth = 0usize;
        let mut i = 0usize;
        loop {
            match self.peek_at(i) {
                TokenKind::LBracket => depth += 1,
                TokenKind::RBracket => {
                    depth -= 1;
                    if depth == 0 {
                        return self.peek_at(i + 1) == &TokenKind::LParen;
                    }
                }
                TokenKind::Eof => return false,
                // Ranges and NUM can only be selectors.
                TokenKind::DotDot | TokenKind::KwNum => return false,
                _ => {}
            }
            i += 1;
        }
    }

    fn finish_call(&mut self, name: Ident, type_args: Vec<ConstExpr>) -> PResult<Expr> {
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.at(&TokenKind::RParen) {
            args.push(self.expression()?);
            while self.eat(&TokenKind::Comma) {
                args.push(self.expression()?);
            }
        }
        let end = self.expect(&TokenKind::RParen)?.span;
        let span = name.span.to(end);
        Ok(Expr::Call {
            name,
            type_args,
            args,
            span,
        })
    }

    // -- statements -----------------------------------------------------------

    fn stmt_starts(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Ident(_)
                | TokenKind::Star
                | TokenKind::KwFor
                | TokenKind::KwWhen
                | TokenKind::KwIf
                | TokenKind::KwResult
                | TokenKind::KwParallel
                | TokenKind::KwSequential
                | TokenKind::KwWith
                | TokenKind::KwClk
                | TokenKind::KwRset
        )
    }

    fn stmt_list(&mut self) -> PResult<Vec<Stmt>> {
        let mut stmts = Vec::new();
        loop {
            if self.eat(&TokenKind::Semicolon) {
                continue; // empty statement
            }
            if !self.stmt_starts() {
                break;
            }
            stmts.push(self.statement()?);
            if !self.at(&TokenKind::Semicolon) {
                break;
            }
        }
        Ok(stmts)
    }

    fn statement(&mut self) -> PResult<Stmt> {
        match self.peek().clone() {
            TokenKind::KwFor => self.for_stmt(),
            TokenKind::KwWhen => self.when_stmt(),
            TokenKind::KwIf => self.if_stmt(),
            TokenKind::KwResult => {
                let start = self.bump().span;
                let e = self.expression()?;
                let span = start.to(e.span());
                Ok(Stmt::Result(e, span))
            }
            TokenKind::KwParallel => {
                let start = self.bump().span;
                let body = self.stmt_list()?;
                let end = self.expect(&TokenKind::KwEnd)?.span;
                Ok(Stmt::Parallel(body, start.to(end)))
            }
            TokenKind::KwSequential => {
                let start = self.bump().span;
                let body = self.stmt_list()?;
                let end = self.expect(&TokenKind::KwEnd)?.span;
                Ok(Stmt::Sequential(body, start.to(end)))
            }
            TokenKind::KwWith => {
                let start = self.bump().span;
                let signal = self.signal_ref()?;
                self.expect(&TokenKind::KwDo)?;
                let body = self.stmt_list()?;
                let end = self.expect(&TokenKind::KwEnd)?.span;
                Ok(Stmt::With {
                    signal,
                    body,
                    span: start.to(end),
                })
            }
            TokenKind::Star => {
                let star = self.bump();
                let lhs = Signal::Star(star.span);
                let op = if self.eat(&TokenKind::Assign) {
                    AssignOp::Define
                } else if self.eat(&TokenKind::Alias) {
                    AssignOp::Alias
                } else {
                    return Err(Diagnostic::error(
                        self.span(),
                        "'*' at statement level must be followed by ':=' or '=='",
                    ));
                };
                let rhs = self.expression()?;
                let span = star.span.to(rhs.span());
                Ok(Stmt::Assign { lhs, op, rhs, span })
            }
            TokenKind::Ident(_) | TokenKind::KwClk | TokenKind::KwRset => {
                let target = self.signal_ref()?;
                if self.eat(&TokenKind::Assign) {
                    let rhs = self.expression()?;
                    let span = target.span.to(rhs.span());
                    Ok(Stmt::Assign {
                        lhs: Signal::Ref(target),
                        op: AssignOp::Define,
                        rhs,
                        span,
                    })
                } else if self.eat(&TokenKind::Alias) {
                    let rhs = self.expression()?;
                    let span = target.span.to(rhs.span());
                    Ok(Stmt::Assign {
                        lhs: Signal::Ref(target),
                        op: AssignOp::Alias,
                        rhs,
                        span,
                    })
                } else if self.at(&TokenKind::LParen) {
                    let args = self.expression()?;
                    let span = target.span.to(args.span());
                    Ok(Stmt::Connection {
                        target,
                        args: Some(args),
                        span,
                    })
                } else {
                    let span = target.span;
                    Ok(Stmt::Connection {
                        target,
                        args: None,
                        span,
                    })
                }
            }
            other => Err(Diagnostic::error(
                self.span(),
                format!("expected a statement but found '{}'", other.text()),
            )),
        }
    }

    fn for_stmt(&mut self) -> PResult<Stmt> {
        let start = self.expect(&TokenKind::KwFor)?.span;
        let var = self.ident()?;
        self.expect(&TokenKind::Assign)?;
        let from = self.const_expr()?;
        let downto = if self.eat(&TokenKind::KwTo) {
            false
        } else {
            self.expect(&TokenKind::KwDownto)?;
            true
        };
        let to = self.const_expr()?;
        self.expect(&TokenKind::KwDo)?;
        let sequentially = self.eat(&TokenKind::KwSequentially);
        let body = self.stmt_list()?;
        let end = self.expect(&TokenKind::KwEnd)?.span;
        Ok(Stmt::For {
            var,
            from,
            to,
            downto,
            sequentially,
            body,
            span: start.to(end),
        })
    }

    fn when_stmt(&mut self) -> PResult<Stmt> {
        let start = self.expect(&TokenKind::KwWhen)?.span;
        let mut arms = Vec::new();
        let cond = self.const_expr()?;
        self.expect(&TokenKind::KwThen)?;
        arms.push((cond, self.stmt_list()?));
        while self.eat(&TokenKind::KwOtherwisewhen) {
            let cond = self.const_expr()?;
            self.expect(&TokenKind::KwThen)?;
            arms.push((cond, self.stmt_list()?));
        }
        let otherwise = if self.eat(&TokenKind::KwOtherwise) {
            Some(self.stmt_list()?)
        } else {
            None
        };
        let end = self.expect(&TokenKind::KwEnd)?.span;
        Ok(Stmt::WhenGen {
            arms,
            otherwise,
            span: start.to(end),
        })
    }

    fn if_stmt(&mut self) -> PResult<Stmt> {
        let start = self.expect(&TokenKind::KwIf)?.span;
        let mut arms = Vec::new();
        let cond = self.expression()?;
        self.expect(&TokenKind::KwThen)?;
        arms.push((cond, self.stmt_list()?));
        while self.eat(&TokenKind::KwElsif) {
            let cond = self.expression()?;
            self.expect(&TokenKind::KwThen)?;
            arms.push((cond, self.stmt_list()?));
        }
        let els = if self.eat(&TokenKind::KwElse) {
            Some(self.stmt_list()?)
        } else {
            None
        };
        let end = self.expect(&TokenKind::KwEnd)?.span;
        Ok(Stmt::If {
            arms,
            els,
            span: start.to(end),
        })
    }

    // -- layout language -------------------------------------------------------

    fn layout_starts(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Ident(_)
                | TokenKind::KwOrder
                | TokenKind::KwFor
                | TokenKind::KwWhen
                | TokenKind::KwWith
                | TokenKind::KwTop
                | TokenKind::KwRight
                | TokenKind::KwBottom
                | TokenKind::KwLeft
        )
    }

    fn layout_list(&mut self) -> PResult<Vec<LayoutStmt>> {
        let mut stmts = Vec::new();
        loop {
            if self.eat(&TokenKind::Semicolon) {
                continue;
            }
            if !self.layout_starts() {
                break;
            }
            stmts.push(self.layout_stmt()?);
            if !self.at(&TokenKind::Semicolon) {
                break;
            }
        }
        Ok(stmts)
    }

    fn layout_stmt(&mut self) -> PResult<LayoutStmt> {
        match self.peek().clone() {
            TokenKind::KwOrder => {
                let start = self.bump().span;
                let direction = self.ident()?;
                if !DIRECTIONS.contains(&direction.name.as_str()) {
                    return Err(Diagnostic::error(
                        direction.span,
                        format!("'{}' is not a direction of separation", direction.name),
                    ));
                }
                let body = self.layout_list()?;
                let end = self.expect(&TokenKind::KwEnd)?.span;
                Ok(LayoutStmt::Order {
                    direction,
                    body,
                    span: start.to(end),
                })
            }
            TokenKind::KwFor => {
                let start = self.bump().span;
                let var = self.ident()?;
                // The layout grammar writes `i = 1 TO n` in examples and
                // `":="` in the EBNF; accept both.
                if !self.eat(&TokenKind::Assign) {
                    self.expect(&TokenKind::Eq)?;
                }
                let from = self.const_expr()?;
                let downto = if self.eat(&TokenKind::KwTo) {
                    false
                } else {
                    self.expect(&TokenKind::KwDownto)?;
                    true
                };
                let to = self.const_expr()?;
                self.expect(&TokenKind::KwDo)?;
                let body = self.layout_list()?;
                let end = self.expect(&TokenKind::KwEnd)?.span;
                Ok(LayoutStmt::For {
                    var,
                    from,
                    to,
                    downto,
                    body,
                    span: start.to(end),
                })
            }
            TokenKind::KwWhen => {
                let start = self.bump().span;
                let mut arms = Vec::new();
                let cond = self.const_expr()?;
                self.expect(&TokenKind::KwThen)?;
                arms.push((cond, self.layout_list()?));
                while self.eat(&TokenKind::KwOtherwisewhen) {
                    let cond = self.const_expr()?;
                    self.expect(&TokenKind::KwThen)?;
                    arms.push((cond, self.layout_list()?));
                }
                let otherwise = if self.eat(&TokenKind::KwOtherwise) {
                    Some(self.layout_list()?)
                } else {
                    None
                };
                let end = self.expect(&TokenKind::KwEnd)?.span;
                Ok(LayoutStmt::WhenGen {
                    arms,
                    otherwise,
                    span: start.to(end),
                })
            }
            TokenKind::KwWith => {
                let start = self.bump().span;
                let signal = self.signal_ref()?;
                self.expect(&TokenKind::KwDo)?;
                let body = self.layout_list()?;
                let end = self.expect(&TokenKind::KwEnd)?.span;
                Ok(LayoutStmt::With {
                    signal,
                    body,
                    span: start.to(end),
                })
            }
            TokenKind::KwTop | TokenKind::KwRight | TokenKind::KwBottom | TokenKind::KwLeft => {
                let side = match self.peek() {
                    TokenKind::KwTop => Side::Top,
                    TokenKind::KwRight => Side::Right,
                    TokenKind::KwBottom => Side::Bottom,
                    _ => Side::Left,
                };
                let start = self.bump().span;
                // A boundary list contains only basic pin items.
                let mut body = Vec::new();
                loop {
                    if self.eat(&TokenKind::Semicolon) {
                        if matches!(self.peek(), TokenKind::Ident(_)) {
                            body.push(self.layout_basic()?);
                            continue;
                        }
                        break;
                    }
                    if matches!(self.peek(), TokenKind::Ident(_)) && body.is_empty() {
                        body.push(self.layout_basic()?);
                        continue;
                    }
                    break;
                }
                let span = start.to(self.prev_span());
                Ok(LayoutStmt::Boundary { side, body, span })
            }
            TokenKind::Ident(_) => self.layout_basic(),
            other => Err(Diagnostic::error(
                self.span(),
                format!("expected a layout statement but found '{}'", other.text()),
            )),
        }
    }

    fn layout_basic(&mut self) -> PResult<LayoutStmt> {
        let first = self.ident()?;
        let start = first.span;
        // Orientation prefix: a known orientation name followed by an
        // identifier is `orientationchange signal`.
        let (orientation, signal) = if ORIENTATIONS.contains(&first.name.as_str())
            && matches!(self.peek(), TokenKind::Ident(_))
        {
            let sig = self.signal_ref()?;
            (Some(first), sig)
        } else {
            let sig = self.signal_ref_after(first)?;
            (None, sig)
        };
        let mut replace = None;
        if self.eat(&TokenKind::Eq) {
            replace = Some(self.ty()?);
        }
        let span = start.to(self.prev_span());
        Ok(LayoutStmt::Basic {
            orientation,
            signal,
            replace,
            span,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(src: &str) -> Program {
        match parse_program(src) {
            Ok(p) => p,
            Err(e) => panic!("parse failed for:\n{src}\n{e}"),
        }
    }

    #[test]
    fn empty_program() {
        assert_eq!(ok("").decls.len(), 0);
    }

    #[test]
    fn const_declarations() {
        let p = ok("CONST start=(0,0,0); length = 7; a=((0,1),(1,0),(0,0)); ten = BIN(10,5);");
        let Decl::Const(defs) = &p.decls[0] else {
            panic!("expected const")
        };
        assert_eq!(defs.len(), 4);
        assert!(matches!(
            defs[0].value,
            Constant::Sig(SigConst::Tuple(_, _))
        ));
        assert!(matches!(defs[1].value, Constant::Num(ConstExpr::Num(7, _))));
        assert!(matches!(
            defs[3].value,
            Constant::Sig(SigConst::Bin(_, _, _))
        ));
    }

    #[test]
    fn halfadder_parses() {
        let p = ok(
            "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS \
                    BEGIN s := XOR(a,b); cout := AND(a,b) END;",
        );
        let Decl::Type(defs) = &p.decls[0] else {
            panic!()
        };
        let Type::Component(c) = &defs[0].ty else {
            panic!()
        };
        assert_eq!(c.params.len(), 2);
        assert_eq!(c.params[0].mode, Mode::In);
        assert_eq!(c.params[1].mode, Mode::Out);
        let body = c.body.as_ref().expect("has body");
        assert_eq!(body.stmts.len(), 2);
    }

    #[test]
    fn fulladder_with_connections() {
        let p = ok(
            "TYPE fulladder = COMPONENT (IN a,b,cin: boolean; OUT cout,s: boolean) IS \
                    SIGNAL h1,h2:halfadder; \
                    BEGIN h1(a,b,*,h2.a); h2(h1.s,cin,*,s); cout := OR(h1.cout,h2.cout) END;",
        );
        let Decl::Type(defs) = &p.decls[0] else {
            panic!()
        };
        let Type::Component(c) = &defs[0].ty else {
            panic!()
        };
        let body = c.body.as_ref().unwrap();
        assert!(matches!(
            &body.stmts[0],
            Stmt::Connection { args: Some(_), .. }
        ));
        assert!(matches!(
            &body.stmts[2],
            Stmt::Assign {
                op: AssignOp::Define,
                ..
            }
        ));
    }

    #[test]
    fn record_type_without_body() {
        let p = ok("TYPE bus = COMPONENT (r,s,t:bo(3); u:boolean);");
        let Decl::Type(defs) = &p.decls[0] else {
            panic!()
        };
        let Type::Component(c) = &defs[0].ty else {
            panic!()
        };
        assert!(c.body.is_none());
        assert_eq!(c.params[0].mode, Mode::InOut);
    }

    #[test]
    fn parameterized_array_type() {
        let p = ok("TYPE bo(n) = ARRAY[1..n] OF boolean;");
        let Decl::Type(defs) = &p.decls[0] else {
            panic!()
        };
        assert_eq!(defs[0].params.len(), 1);
        assert!(matches!(defs[0].ty, Type::Array { .. }));
    }

    #[test]
    fn multidim_array_desugars() {
        let p = ok("TYPE m = ARRAY[1..3,1..4] OF boolean;");
        let Decl::Type(defs) = &p.decls[0] else {
            panic!()
        };
        let Type::Array { elem, .. } = &defs[0].ty else {
            panic!()
        };
        assert!(matches!(**elem, Type::Array { .. }));
    }

    #[test]
    fn function_component_with_result() {
        let p = ok(
            "TYPE mux4 = COMPONENT (IN d:bo(4); IN a:bo(2); IN g: boolean):boolean IS \
                    CONST bit2 = ((0,0),(0,1),(1,0),(1,1)); \
                    SIGNAL h: multiplex; \
                    BEGIN \
                      FOR i:=1 TO 4 DO IF EQUAL(a,bit2[i]) THEN h :=d[i] END END; \
                      RESULT AND(NOT g,h) \
                    END;",
        );
        let Decl::Type(defs) = &p.decls[0] else {
            panic!()
        };
        let Type::Component(c) = &defs[0].ty else {
            panic!()
        };
        assert!(c.result.is_some());
        let body = c.body.as_ref().unwrap();
        assert!(matches!(body.stmts.last(), Some(Stmt::Result(_, _))));
    }

    #[test]
    fn replication_and_when() {
        let p = ok("TYPE t = COMPONENT (IN a: boolean) IS BEGIN \
             FOR i:=2 TO 2*n-1 DO \
               WHEN i MOD 2 <> 0 THEN x := a OTHERWISE y := a END \
             END END;");
        let Decl::Type(defs) = &p.decls[0] else {
            panic!()
        };
        let Type::Component(c) = &defs[0].ty else {
            panic!()
        };
        let Stmt::For { body, .. } = &c.body.as_ref().unwrap().stmts[0] else {
            panic!()
        };
        assert!(matches!(body[0], Stmt::WhenGen { .. }));
    }

    #[test]
    fn sequential_parallel_with() {
        ok("TYPE t = COMPONENT (IN a: boolean) IS BEGIN \
            SEQUENTIAL PARALLEL x := a; y := a END; z := a END; \
            WITH g[1] DO x := x1; z == h END \
            END;");
    }

    #[test]
    fn star_lhs_statement() {
        let p = ok("TYPE t = COMPONENT (IN a: boolean) IS BEGIN * := x.b END;");
        let Decl::Type(defs) = &p.decls[0] else {
            panic!()
        };
        let Type::Component(c) = &defs[0].ty else {
            panic!()
        };
        assert!(matches!(
            c.body.as_ref().unwrap().stmts[0],
            Stmt::Assign {
                lhs: Signal::Star(_),
                ..
            }
        ));
    }

    #[test]
    fn call_with_type_args_in_brackets() {
        let e = parse_expr("plus[n](a,b)").unwrap();
        let Expr::Call {
            name,
            type_args,
            args,
            ..
        } = e
        else {
            panic!()
        };
        assert_eq!(name.name, "plus");
        assert_eq!(type_args.len(), 1);
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn indexed_signal_is_not_call() {
        let e = parse_expr("d[i]").unwrap();
        assert!(matches!(e, Expr::Sig(_)));
        let e = parse_expr("x[2..7]").unwrap();
        assert!(matches!(e, Expr::Sig(_)));
    }

    #[test]
    fn num_selector() {
        let e = parse_expr("ram[NUM(a)].out").unwrap();
        let Expr::Sig(r) = e else { panic!() };
        assert!(matches!(r.sels[0], Selector::NumIndex(_, _)));
        assert!(matches!(r.sels[1], Selector::Field(_)));
    }

    #[test]
    fn star_with_count() {
        let e = parse_expr("*:3").unwrap();
        assert!(matches!(e, Expr::Star { count: Some(_), .. }));
    }

    #[test]
    fn rset_in_condition() {
        ok("TYPE t = COMPONENT (IN a: boolean) IS BEGIN \
            IF RSET THEN x := a ELSE y := CLK END END;");
    }

    #[test]
    fn signal_instantiation_with_args() {
        let p = ok("SIGNAL adder: rippleCarry(4);");
        let Decl::Signal(defs) = &p.decls[0] else {
            panic!()
        };
        let Type::Named { name, args } = &defs[0].ty else {
            panic!()
        };
        assert_eq!(name.name, "rippleCarry");
        assert_eq!(args.len(), 1);
    }

    #[test]
    fn layout_order_and_boundary() {
        let p = ok(
            "TYPE htree = COMPONENT(IN in:boolean; out: multiplex) { BOTTOM in; out } IS \
             SIGNAL s: ARRAY[1..4] OF h; \
             { ORDER lefttoright \
                 ORDER toptobottom s[1]; flip90 s[3] END; \
                 ORDER toptobottom s[2]; flip90 s[4] END; \
               END } \
             BEGIN x := in END;",
        );
        let Decl::Type(defs) = &p.decls[0] else {
            panic!()
        };
        let Type::Component(c) = &defs[0].ty else {
            panic!()
        };
        assert_eq!(c.header_layout.len(), 1);
        let LayoutStmt::Boundary { side, body, .. } = &c.header_layout[0] else {
            panic!()
        };
        assert_eq!(*side, Side::Bottom);
        assert_eq!(body.len(), 2);
        let body_layout = &c.body.as_ref().unwrap().layout;
        let LayoutStmt::Order {
            direction, body, ..
        } = &body_layout[0]
        else {
            panic!()
        };
        assert_eq!(direction.name, "lefttoright");
        assert_eq!(body.len(), 2);
        let LayoutStmt::Order { body: inner, .. } = &body[0] else {
            panic!()
        };
        assert!(matches!(
            &inner[1],
            LayoutStmt::Basic {
                orientation: Some(o),
                ..
            } if o.name == "flip90"
        ));
    }

    #[test]
    fn layout_replacement_chessboard() {
        let p = ok("TYPE chessboard(n) = COMPONENT(IN a:boolean) IS \
             SIGNAL m: ARRAY[1..n,1..n] OF virtual; \
             { ORDER toptobottom \
                 FOR i := 1 TO n DO \
                   ORDER lefttoright \
                     FOR j := 1 TO n DO \
                       WHEN odd(i+j) THEN m[i,j] = black OTHERWISE m[i,j] = white END \
                     END \
                   END \
                 END \
               END } \
             BEGIN x := a END;");
        let Decl::Type(defs) = &p.decls[0] else {
            panic!()
        };
        let Type::Component(c) = &defs[0].ty else {
            panic!()
        };
        let layout = &c.body.as_ref().unwrap().layout;
        assert_eq!(layout.len(), 1);
    }

    #[test]
    fn bad_direction_is_error() {
        let r = parse_program(
            "TYPE t = COMPONENT(IN a:boolean) IS { ORDER sideways x END } BEGIN y := a END;",
        );
        assert!(r.is_err());
    }

    #[test]
    fn syntax_error_reports() {
        assert!(parse_program("TYPE = ;").is_err());
        assert!(parse_program("SIGNAL x boolean;").is_err());
        assert!(parse_expr("2").is_err()); // numbers other than 0/1
    }

    #[test]
    fn field_range_selector() {
        let e = parse_expr("s.b1..c1").unwrap();
        let Expr::Sig(r) = e else { panic!() };
        assert!(matches!(r.sels[0], Selector::FieldRange(_, _)));
    }

    #[test]
    fn connection_without_args() {
        let p = ok("TYPE t = COMPONENT(IN a: boolean) IS BEGIN r END;");
        let Decl::Type(defs) = &p.decls[0] else {
            panic!()
        };
        let Type::Component(c) = &defs[0].ty else {
            panic!()
        };
        assert!(matches!(
            c.body.as_ref().unwrap().stmts[0],
            Stmt::Connection { args: None, .. }
        ));
    }

    #[test]
    fn uses_list() {
        let p = ok(
            "TYPE t = COMPONENT(IN a: boolean) IS USES bo, fulladder; BEGIN x := a END; \
                    u = COMPONENT(IN a: boolean) IS USES ; BEGIN x := a END;",
        );
        let Decl::Type(defs) = &p.decls[0] else {
            panic!()
        };
        let Type::Component(c) = &defs[0].ty else {
            panic!()
        };
        assert_eq!(c.body.as_ref().unwrap().uses.as_ref().unwrap().len(), 2);
        let Type::Component(c) = &defs[1].ty else {
            panic!()
        };
        assert_eq!(c.body.as_ref().unwrap().uses.as_ref().unwrap().len(), 0);
    }

    #[test]
    fn downto_replication() {
        ok("TYPE t = COMPONENT(IN a: boolean) IS BEGIN \
            FOR i:=4 DOWNTO 1 DO x[i] := a END END;");
    }

    #[test]
    fn for_sequentially() {
        let p = ok("TYPE t = COMPONENT(IN a: boolean) IS BEGIN \
            SEQUENTIAL h[1] := cin; \
              FOR i:=1 TO 4 DO SEQUENTIALLY add[i](a[i],b[i],h[i],h[i+1],s[i]) END; \
              cout := h[5] \
            END END;");
        let Decl::Type(defs) = &p.decls[0] else {
            panic!()
        };
        let Type::Component(c) = &defs[0].ty else {
            panic!()
        };
        let Stmt::Sequential(body, _) = &c.body.as_ref().unwrap().stmts[0] else {
            panic!()
        };
        let Stmt::For { sequentially, .. } = &body[1] else {
            panic!()
        };
        assert!(sequentially);
    }
}
