//! Abstract syntax tree for Zeus programs.
//!
//! The shapes follow the cross-referenced EBNF of paper §7 (main grammar)
//! and the layout-language grammar of §6/§7. Nodes carry [`Span`]s for
//! diagnostics; spans never affect equality-relevant semantics but are kept
//! in `PartialEq` since tests compare freshly parsed trees.

use crate::span::Span;
use std::fmt;

/// An identifier with its source span.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ident {
    /// The identifier text (case-sensitive).
    pub name: String,
    /// Source location.
    pub span: Span,
}

impl Ident {
    /// Creates an identifier.
    pub fn new(name: impl Into<String>, span: Span) -> Self {
        Ident {
            name: name.into(),
            span,
        }
    }

    /// Creates an identifier with a dummy span (for synthesized nodes).
    pub fn synthetic(name: impl Into<String>) -> Self {
        Ident::new(name, Span::dummy())
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// `Hardware = {declaration}` — a whole Zeus program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level declarations in source order.
    pub decls: Vec<Decl>,
}

/// A declaration section.
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// `CONST { ident "=" constant ";" }`
    Const(Vec<ConstDef>),
    /// `TYPE { ident [params] "=" type ";" }`
    Type(Vec<TypeDef>),
    /// `SIGNAL { idlist ":" type [args] ";" }`
    Signal(Vec<SignalDef>),
}

/// One `ident = constant` binding.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstDef {
    /// Bound name.
    pub name: Ident,
    /// Numeric or signal constant.
    pub value: Constant,
}

/// `constant = ConstExpression | sigConstExpression`.
#[derive(Debug, Clone, PartialEq)]
pub enum Constant {
    /// A numeric constant expression, e.g. `length = 7`.
    Num(ConstExpr),
    /// A signal constant, e.g. `start = (0,0,0)`.
    Sig(SigConst),
}

/// A signal constant: nested tuples of basic values, or `BIN(a,b)`.
#[derive(Debug, Clone, PartialEq)]
pub enum SigConst {
    /// `( sc {, sc} )`
    Tuple(Vec<SigConst>, Span),
    /// `0`, `1`, or a named value (`UNDEF`, `NOINFL`, or another constant).
    Value(SigValue),
    /// `BIN(ConstExpression, ConstExpression)`
    Bin(ConstExpr, ConstExpr, Span),
}

impl SigConst {
    /// Source span of this constant.
    pub fn span(&self) -> Span {
        match self {
            SigConst::Tuple(_, s) | SigConst::Bin(_, _, s) => *s,
            SigConst::Value(v) => v.span(),
        }
    }
}

/// `value = "0" | "1" | ident`.
#[derive(Debug, Clone, PartialEq)]
pub enum SigValue {
    /// Literal `0`.
    Zero(Span),
    /// Literal `1`.
    One(Span),
    /// A named value — `UNDEF`, `NOINFL`, or a reference to another
    /// signal constant; resolved in semantic analysis.
    Name(Ident),
}

impl SigValue {
    /// Source span.
    pub fn span(&self) -> Span {
        match self {
            SigValue::Zero(s) | SigValue::One(s) => *s,
            SigValue::Name(i) => i.span,
        }
    }
}

/// One `TYPE` definition, possibly parameterized: `tree(n) = ...`.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeDef {
    /// Type name.
    pub name: Ident,
    /// Formal numeric parameters, e.g. `(n)`.
    pub params: Vec<Ident>,
    /// The defined type.
    pub ty: Type,
}

/// `type = arrayDeclaration | componentDeclaration | ident [args]`.
#[derive(Debug, Clone, PartialEq)]
pub enum Type {
    /// `ARRAY [lo..hi] OF elem`. Multi-dimensional shorthand
    /// `ARRAY[1..n,1..n] OF t` desugars to nested arrays at parse time.
    Array {
        /// Lower bound (inclusive).
        lo: ConstExpr,
        /// Upper bound (inclusive).
        hi: ConstExpr,
        /// Element type.
        elem: Box<Type>,
        /// Source span.
        span: Span,
    },
    /// A component (or function component / record) declaration.
    Component(Box<ComponentType>),
    /// A reference to a named type, with optional actual parameters:
    /// `bo(4)`, `boolean`, `REG`, `tree(n DIV 2)`.
    Named {
        /// Referenced type name.
        name: Ident,
        /// Actual numeric parameters.
        args: Vec<ConstExpr>,
    },
}

impl Type {
    /// Source span of the type.
    pub fn span(&self) -> Span {
        match self {
            Type::Array { span, .. } => *span,
            Type::Component(c) => c.span,
            Type::Named { name, args } => args
                .last()
                .map(|a| name.span.to(a.span()))
                .unwrap_or(name.span),
        }
    }
}

/// Parameter passing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// `IN` — value transmitted to the component.
    In,
    /// `OUT` — value transmitted from the component.
    Out,
    /// Neither keyword — bidirectional communication.
    InOut,
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::In => write!(f, "IN"),
            Mode::Out => write!(f, "OUT"),
            Mode::InOut => write!(f, "INOUT"),
        }
    }
}

/// One formal-parameter group: `[IN|OUT] idlist : type`.
#[derive(Debug, Clone, PartialEq)]
pub struct FParams {
    /// Passing mode (INOUT when no keyword given).
    pub mode: Mode,
    /// The parameter names in this group.
    pub names: Vec<Ident>,
    /// Their common type.
    pub ty: Type,
}

/// `componentDeclaration` (§7 rules 25-29).
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentType {
    /// Formal parameter groups.
    pub params: Vec<FParams>,
    /// Layout statements between the parameter list and `IS`
    /// (used for boundary/pin placement, e.g. `{ BOTTOM in; out }`).
    pub header_layout: Vec<LayoutStmt>,
    /// Function-component result type (`: type` before `IS`).
    pub result: Option<Type>,
    /// The body; `None` makes this a record type (no internal connections).
    pub body: Option<ComponentBody>,
    /// Source span.
    pub span: Span,
}

/// The `IS ... BEGIN ... END` part of a component declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentBody {
    /// `USES idlist;` — `None` means everything visible, `Some(empty)`
    /// means nothing imported (§3.2).
    pub uses: Option<Vec<Ident>>,
    /// Local declarations.
    pub decls: Vec<Decl>,
    /// Layout statement list before `BEGIN`.
    pub layout: Vec<LayoutStmt>,
    /// The statement part.
    pub stmts: Vec<Stmt>,
}

/// One `SIGNAL` definition for a group of names.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalDef {
    /// Declared signal names.
    pub names: Vec<Ident>,
    /// Their type (actual parameters are part of [`Type::Named`]).
    pub ty: Type,
}

// ---------------------------------------------------------------------------
// Constant expressions (Modula-2 style, §3.1)
// ---------------------------------------------------------------------------

/// Binary operators of constant expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `OR`
    Or,
    /// `*`
    Mul,
    /// `DIV`
    Div,
    /// `MOD`
    Mod,
    /// `AND`
    And,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl ConstBinOp {
    /// Canonical source text.
    pub fn text(self) -> &'static str {
        match self {
            ConstBinOp::Add => "+",
            ConstBinOp::Sub => "-",
            ConstBinOp::Or => "OR",
            ConstBinOp::Mul => "*",
            ConstBinOp::Div => "DIV",
            ConstBinOp::Mod => "MOD",
            ConstBinOp::And => "AND",
            ConstBinOp::Eq => "=",
            ConstBinOp::Ne => "<>",
            ConstBinOp::Lt => "<",
            ConstBinOp::Le => "<=",
            ConstBinOp::Gt => ">",
            ConstBinOp::Ge => ">=",
        }
    }
}

/// Unary operators of constant expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstUnOp {
    /// Unary `+` (identity).
    Plus,
    /// Unary `-` (negation).
    Minus,
    /// `NOT` (boolean complement over 0/1).
    Not,
}

/// A compile-time numeric expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstExpr {
    /// A number literal.
    Num(i64, Span),
    /// A named constant or replication variable.
    Name(Ident),
    /// A call of a predefined constant function: `min(a;b)`, `odd(i+j)`.
    /// The grammar separates arguments with `;` (§7 rule 14); we accept
    /// `,` as well.
    Call {
        /// Function name.
        name: Ident,
        /// Arguments.
        args: Vec<ConstExpr>,
        /// Span of the whole call.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: ConstUnOp,
        /// Operand.
        expr: Box<ConstExpr>,
        /// Span.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: ConstBinOp,
        /// Left operand.
        lhs: Box<ConstExpr>,
        /// Right operand.
        rhs: Box<ConstExpr>,
    },
}

impl ConstExpr {
    /// Source span.
    pub fn span(&self) -> Span {
        match self {
            ConstExpr::Num(_, s) => *s,
            ConstExpr::Name(i) => i.span,
            ConstExpr::Call { span, .. } | ConstExpr::Unary { span, .. } => *span,
            ConstExpr::Binary { lhs, rhs, .. } => lhs.span().to(rhs.span()),
        }
    }
}

// ---------------------------------------------------------------------------
// Signals and expressions (§7 rules 36-45)
// ---------------------------------------------------------------------------

/// One selector step in a signal path.
#[derive(Debug, Clone, PartialEq)]
pub enum Selector {
    /// `[ConstExpression]`
    Index(ConstExpr),
    /// `[lo .. hi]`
    Range(ConstExpr, ConstExpr),
    /// `[NUM(signal)]` — dynamic index; elaborates to mux/demux hardware.
    NumIndex(Box<SignalRef>, Span),
    /// `.field`
    Field(Ident),
    /// `.first..last` — a range of record fields (§7 rule 39).
    FieldRange(Ident, Ident),
}

/// `signal` without the `*` alternative: `ident {selector}`.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalRef {
    /// The base identifier.
    pub base: Ident,
    /// Selector chain.
    pub sels: Vec<Selector>,
    /// Span of the whole reference.
    pub span: Span,
}

/// `signal = ident{...} | "*"` — a possibly-empty signal reference.
#[derive(Debug, Clone, PartialEq)]
pub enum Signal {
    /// A real signal path.
    Ref(SignalRef),
    /// `*` — "empty signal" / no connection.
    Star(Span),
}

impl Signal {
    /// Source span.
    pub fn span(&self) -> Span {
        match self {
            Signal::Ref(r) => r.span,
            Signal::Star(s) => *s,
        }
    }
}

/// Run-time expressions (§7 rules 40-45).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A signal reference.
    Sig(SignalRef),
    /// A call of a (function) component: `XOR(a,b)`, `plus[n](a,b)`.
    /// `type_args` holds the numeric parameters (written in brackets per
    /// the prose of §3.2; the printer emits brackets).
    Call {
        /// Function component type name.
        name: Ident,
        /// Numeric type parameters.
        type_args: Vec<ConstExpr>,
        /// The argument expressions (the flattened actual parameters).
        args: Vec<Expr>,
        /// Span.
        span: Span,
    },
    /// `NOT expression` — prefix form of the NOT function component.
    Not(Box<Expr>, Span),
    /// `BIN(a, b)` — constant `a` as `b` boolean bits.
    Bin(ConstExpr, ConstExpr, Span),
    /// A signal constant, e.g. `(0,1,0)` cannot be distinguished from a
    /// tuple expression at parse time; plain `0`/`1` literals land here.
    Const(SigConst),
    /// `*` optionally with a replication count: `* : n` stands for `n`
    /// empty signals (§7 rule 44).
    Star {
        /// How many empty bit positions; `None` means "as many as needed".
        count: Option<ConstExpr>,
        /// Span.
        span: Span,
    },
    /// `( e {, e} )` — tuple; parenthesization is insignificant for
    /// parameter passing (§4.7) but preserved for printing.
    Tuple(Vec<Expr>, Span),
}

impl Expr {
    /// Source span.
    pub fn span(&self) -> Span {
        match self {
            Expr::Sig(r) => r.span,
            Expr::Call { span, .. }
            | Expr::Not(_, span)
            | Expr::Bin(_, _, span)
            | Expr::Star { span, .. }
            | Expr::Tuple(_, span) => *span,
            Expr::Const(c) => c.span(),
        }
    }
}

// ---------------------------------------------------------------------------
// Statements (§7 rules 33-60)
// ---------------------------------------------------------------------------

/// Which assignment operator a statement uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `:=` — signal definition.
    Define,
    /// `==` — aliasing (one signal, several names).
    Alias,
}

/// A Zeus statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `signal (:= | ==) expression`
    Assign {
        /// Left-hand side (may be `*`).
        lhs: Signal,
        /// Operator.
        op: AssignOp,
        /// Right-hand side.
        rhs: Expr,
        /// Span.
        span: Span,
    },
    /// `signal [expression]` — connection statement.
    Connection {
        /// The instantiated component (or array of components).
        target: SignalRef,
        /// The actual-parameter expression, if any.
        args: Option<Expr>,
        /// Span.
        span: Span,
    },
    /// `FOR i := a (TO|DOWNTO) b DO [SEQUENTIALLY] ... END`
    For {
        /// Replication variable.
        var: Ident,
        /// Start bound.
        from: ConstExpr,
        /// End bound.
        to: ConstExpr,
        /// `DOWNTO` instead of `TO`.
        downto: bool,
        /// `SEQUENTIALLY` marker (§4.5).
        sequentially: bool,
        /// Replicated statements.
        body: Vec<Stmt>,
        /// Span.
        span: Span,
    },
    /// `WHEN c THEN ... {OTHERWISEWHEN c THEN ...} [OTHERWISE ...] END` —
    /// compile-time conditional generation (§4.2).
    WhenGen {
        /// `(condition, statements)` arms in order.
        arms: Vec<(ConstExpr, Vec<Stmt>)>,
        /// `OTHERWISE` statements.
        otherwise: Option<Vec<Stmt>>,
        /// Span.
        span: Span,
    },
    /// `IF e THEN ... {ELSIF e THEN ...} [ELSE ...] END` — hardware switch.
    If {
        /// `(condition, statements)` arms in order.
        arms: Vec<(Expr, Vec<Stmt>)>,
        /// `ELSE` statements.
        els: Option<Vec<Stmt>>,
        /// Span.
        span: Span,
    },
    /// `RESULT expression` — value of a function component.
    Result(Expr, Span),
    /// `PARALLEL ... END`
    Parallel(Vec<Stmt>, Span),
    /// `SEQUENTIAL ... END`
    Sequential(Vec<Stmt>, Span),
    /// `WITH signal DO ... END`
    With {
        /// The qualifying signal (must be written out completely, §4.6).
        signal: SignalRef,
        /// Statements with the qualification opened.
        body: Vec<Stmt>,
        /// Span.
        span: Span,
    },
    /// The empty statement (grammar rule 35 allows it).
    Empty(Span),
}

impl Stmt {
    /// Source span.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Assign { span, .. }
            | Stmt::Connection { span, .. }
            | Stmt::For { span, .. }
            | Stmt::WhenGen { span, .. }
            | Stmt::If { span, .. }
            | Stmt::Result(_, span)
            | Stmt::Parallel(_, span)
            | Stmt::Sequential(_, span)
            | Stmt::With { span, .. }
            | Stmt::Empty(span) => *span,
        }
    }
}

// ---------------------------------------------------------------------------
// Layout language (§6)
// ---------------------------------------------------------------------------

/// Which edge of a component a boundary statement names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// `TOP`
    Top,
    /// `RIGHT`
    Right,
    /// `BOTTOM`
    Bottom,
    /// `LEFT`
    Left,
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Top => write!(f, "TOP"),
            Side::Right => write!(f, "RIGHT"),
            Side::Bottom => write!(f, "BOTTOM"),
            Side::Left => write!(f, "LEFT"),
        }
    }
}

/// A layout-language statement (§6, layout grammar of §7).
#[derive(Debug, Clone, PartialEq)]
pub enum LayoutStmt {
    /// `basic = [orientationchange] signal ["=" type]`.
    ///
    /// The `= type` form is the *replacement* of a `virtual` signal
    /// (§6.4); the orientation change is one of the dihedral-group
    /// elements, e.g. `flip90 s[3]`.
    Basic {
        /// Optional orientation change identifier.
        orientation: Option<Ident>,
        /// The placed (or replaced) signal.
        signal: SignalRef,
        /// Replacement type for virtual signals.
        replace: Option<Type>,
        /// Span.
        span: Span,
    },
    /// `ORDER direction ... END`.
    Order {
        /// Direction of separation, e.g. `lefttoright`.
        direction: Ident,
        /// Ordered layout statements.
        body: Vec<LayoutStmt>,
        /// Span.
        span: Span,
    },
    /// `FOR i := a (TO|DOWNTO) b DO ... END` in layout context.
    For {
        /// Replication variable.
        var: Ident,
        /// Start bound.
        from: ConstExpr,
        /// End bound.
        to: ConstExpr,
        /// `DOWNTO` instead of `TO`.
        downto: bool,
        /// Replicated layout statements.
        body: Vec<LayoutStmt>,
        /// Span.
        span: Span,
    },
    /// `TOP|RIGHT|BOTTOM|LEFT layoutStatementList` — pin placement.
    Boundary {
        /// The named edge.
        side: Side,
        /// The pins (signals) placed on that edge, in order.
        body: Vec<LayoutStmt>,
        /// Span.
        span: Span,
    },
    /// `WHEN c THEN ... {OTHERWISEWHEN ...} [OTHERWISE ...] END`.
    WhenGen {
        /// Arms.
        arms: Vec<(ConstExpr, Vec<LayoutStmt>)>,
        /// Otherwise branch.
        otherwise: Option<Vec<LayoutStmt>>,
        /// Span.
        span: Span,
    },
    /// `WITH signal DO ... END`.
    With {
        /// Qualifying signal.
        signal: SignalRef,
        /// Body.
        body: Vec<LayoutStmt>,
        /// Span.
        span: Span,
    },
}

impl LayoutStmt {
    /// Source span.
    pub fn span(&self) -> Span {
        match self {
            LayoutStmt::Basic { span, .. }
            | LayoutStmt::Order { span, .. }
            | LayoutStmt::For { span, .. }
            | LayoutStmt::Boundary { span, .. }
            | LayoutStmt::WhenGen { span, .. }
            | LayoutStmt::With { span, .. } => *span,
        }
    }
}

/// The eight directions of separation (§6/§7).
pub const DIRECTIONS: &[&str] = &[
    "toptobottom",
    "bottomtotop",
    "lefttoright",
    "righttoleft",
    "toplefttobottomright",
    "bottomrighttotopleft",
    "toprighttobottomleft",
    "bottomlefttotopright",
];

/// The seven orientation changes (all of the dihedral group D4 except the
/// identity, §6.3).
pub const ORIENTATIONS: &[&str] = &[
    "rotate90",
    "rotate180",
    "rotate270",
    "flip0",
    "flip45",
    "flip90",
    "flip135",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_display() {
        assert_eq!(Mode::In.to_string(), "IN");
        assert_eq!(Mode::Out.to_string(), "OUT");
        assert_eq!(Mode::InOut.to_string(), "INOUT");
    }

    #[test]
    fn const_expr_span_composition() {
        let lhs = ConstExpr::Num(1, Span::new(0, 1));
        let rhs = ConstExpr::Num(2, Span::new(4, 5));
        let e = ConstExpr::Binary {
            op: ConstBinOp::Add,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        };
        assert_eq!(e.span(), Span::new(0, 5));
    }

    #[test]
    fn direction_and_orientation_tables() {
        assert_eq!(DIRECTIONS.len(), 8);
        assert_eq!(ORIENTATIONS.len(), 7);
        assert!(DIRECTIONS.contains(&"toptobottom"));
        assert!(ORIENTATIONS.contains(&"flip135"));
    }

    #[test]
    fn binop_text_round_trip() {
        for op in [
            ConstBinOp::Add,
            ConstBinOp::Sub,
            ConstBinOp::Or,
            ConstBinOp::Mul,
            ConstBinOp::Div,
            ConstBinOp::Mod,
            ConstBinOp::And,
            ConstBinOp::Eq,
            ConstBinOp::Ne,
            ConstBinOp::Lt,
            ConstBinOp::Le,
            ConstBinOp::Gt,
            ConstBinOp::Ge,
        ] {
            assert!(!op.text().is_empty());
        }
    }
}
