//! Diagnostics shared by the whole toolchain.
//!
//! All phases (lexing, parsing, semantic analysis, elaboration, simulation)
//! report problems as [`Diagnostic`] values carrying a [`Span`] and a
//! severity, so a driver can render them uniformly against the source text.

use crate::span::{SourceMap, Span};
use std::error::Error;
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advice that does not affect the result.
    Note,
    /// Suspicious but legal construct (e.g. the multiplex "abuse" of §4.7).
    Warning,
    /// A rule violation; compilation cannot produce a valid design.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A single problem report with source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity of the report.
    pub severity: Severity,
    /// Where in the source the problem is.
    pub span: Span,
    /// Human-readable message, lowercase, no trailing punctuation.
    pub message: String,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            span,
            message: message.into(),
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            span,
            message: message.into(),
        }
    }

    /// Creates a note diagnostic.
    pub fn note(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Note,
            span,
            message: message.into(),
        }
    }

    /// Renders the diagnostic with a line/column prefix resolved via `map`.
    pub fn render(&self, map: &SourceMap) -> String {
        format!(
            "{}: {}: {}",
            map.line_col(self.span.start),
            self.severity,
            self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} (at {})", self.severity, self.message, self.span)
    }
}

impl Error for Diagnostic {}

/// A collection of diagnostics accumulated by a phase.
///
/// Phases push into a `DiagSink` and return `Result<T, Diagnostics>` so a
/// single run can report many independent problems.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    diags: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Convenience: push an error.
    pub fn error(&mut self, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::error(span, message));
    }

    /// Convenience: push a warning.
    pub fn warning(&mut self, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::warning(span, message));
    }

    /// True if any diagnostic is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of diagnostics of all severities.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// True when no diagnostics were reported.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Iterates over the diagnostics in emission order.
    pub fn iter(&self) -> std::slice::Iter<'_, Diagnostic> {
        self.diags.iter()
    }

    /// Merges another collection into this one.
    pub fn extend(&mut self, other: Diagnostics) {
        self.diags.extend(other.diags);
    }

    /// Renders all diagnostics, one per line, against `map`.
    pub fn render(&self, map: &SourceMap) -> String {
        self.diags
            .iter()
            .map(|d| d.render(map))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl Error for Diagnostics {}

impl From<Diagnostic> for Diagnostics {
    fn from(d: Diagnostic) -> Self {
        Diagnostics { diags: vec![d] }
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.diags.into_iter()
    }
}

impl<'a> IntoIterator for &'a Diagnostics {
    type Item = &'a Diagnostic;
    type IntoIter = std::slice::Iter<'a, Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.diags.iter()
    }
}

impl FromIterator<Diagnostic> for Diagnostics {
    fn from_iter<T: IntoIterator<Item = Diagnostic>>(iter: T) -> Self {
        Diagnostics {
            diags: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn sink_tracks_errors() {
        let mut ds = Diagnostics::new();
        assert!(ds.is_empty());
        ds.warning(Span::new(0, 1), "odd but legal");
        assert!(!ds.has_errors());
        ds.error(Span::new(1, 2), "boom");
        assert!(ds.has_errors());
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn render_with_source_map() {
        let map = SourceMap::new("abc\ndef");
        let d = Diagnostic::error(Span::new(5, 6), "bad token");
        assert_eq!(d.render(&map), "2:2: error: bad token");
    }

    #[test]
    fn display_impls_are_nonempty() {
        let d = Diagnostic::note(Span::new(0, 0), "hi");
        assert!(!format!("{d}").is_empty());
        let ds: Diagnostics = std::iter::once(d).collect();
        assert!(!format!("{ds}").is_empty());
    }
}
