//! Diagnostics shared by the whole toolchain.
//!
//! All phases (lexing, parsing, semantic analysis, elaboration, simulation)
//! report problems as [`Diagnostic`] values carrying a [`Span`] and a
//! severity, so a driver can render them uniformly against the source text.

use crate::span::{SourceMap, Span};
use std::error::Error;
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advice that does not affect the result.
    Note,
    /// Suspicious but legal construct (e.g. the multiplex "abuse" of §4.7).
    Warning,
    /// A rule violation; compilation cannot produce a valid design.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A machine-readable diagnostic code, rendered as `error[Z201]: ...`.
///
/// The taxonomy partitions the pipeline by leading digit:
///
/// | range | phase                                  |
/// |-------|----------------------------------------|
/// | Z0xx  | lexing / parsing                       |
/// | Z1xx  | semantic analysis                      |
/// | Z2xx  | elaboration                            |
/// | Z3xx  | simulation                             |
/// | Z9xx  | resource limits (Z999: internal error) |
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Code(pub &'static str);

impl Code {
    /// The code text, e.g. `"Z201"`.
    pub fn as_str(self) -> &'static str {
        self.0
    }

    /// True for the Z9xx resource-limit family (Z999 internal errors are
    /// *not* limits: they indicate a compiler bug, not an exhausted budget).
    pub fn is_resource_limit(self) -> bool {
        self.0.starts_with("Z9") && self != codes::INTERNAL
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// Well-known diagnostic codes for the Zeus pipeline.
pub mod codes {
    use super::Code;

    /// Generic lexing/parsing error.
    pub const SYNTAX: Code = Code("Z001");
    /// Generic semantic (type/name/const) error.
    pub const SEMA: Code = Code("Z101");
    /// Generic elaboration error.
    pub const ELAB: Code = Code("Z201");
    /// Generic simulation error.
    pub const SIM: Code = Code("Z301");
    /// A simulator relaxation/delta loop failed to converge (oscillation).
    pub const OSCILLATION: Code = Code("Z310");
    /// Instance budget (`Limits::max_instances`) exhausted.
    pub const LIMIT_INSTANCES: Code = Code("Z901");
    /// Net budget (`Limits::max_nets`) exhausted.
    pub const LIMIT_NETS: Code = Code("Z902");
    /// Node budget (`Limits::max_nodes`) exhausted.
    pub const LIMIT_NODES: Code = Code("Z903");
    /// Cooperative fuel budget (`Limits::fuel`) exhausted.
    pub const LIMIT_FUEL: Code = Code("Z904");
    /// Wall-clock deadline (`Limits::deadline`) exceeded.
    pub const LIMIT_DEADLINE: Code = Code("Z905");
    /// Function-component call depth (`Limits::max_call_depth`) exceeded.
    pub const LIMIT_CALL_DEPTH: Code = Code("Z906");
    /// Type-expansion depth (`Limits::max_type_depth`) exceeded.
    pub const LIMIT_TYPE_DEPTH: Code = Code("Z907");
    /// Simulation step budget (`Limits::max_steps`) exhausted.
    pub const LIMIT_STEPS: Code = Code("Z908");
    /// Equivalence-check input width (`Limits::max_input_bits`) exceeded.
    pub const LIMIT_INPUT_BITS: Code = Code("Z909");
    /// Invalid tool invocation (bad flag value, unusable socket path).
    pub const USAGE: Code = Code("Z401");
    /// Internal compiler error (a bug — caught panic or broken invariant).
    pub const INTERNAL: Code = Code("Z999");
}

/// A single problem report with source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity of the report.
    pub severity: Severity,
    /// Where in the source the problem is.
    pub span: Span,
    /// Human-readable message, lowercase, no trailing punctuation.
    pub message: String,
    /// Machine-readable code (`error[Z201]`), if classified.
    pub code: Option<Code>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            span,
            message: message.into(),
            code: None,
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            span,
            message: message.into(),
            code: None,
        }
    }

    /// Creates a note diagnostic.
    pub fn note(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Note,
            span,
            message: message.into(),
            code: None,
        }
    }

    /// Creates a `Z999` internal-error diagnostic: a broken compiler
    /// invariant surfaced as a report instead of a panic.
    pub fn internal(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            span,
            message: format!(
                "internal error: {} (this is a bug in the Zeus toolchain, not in \
                 your program; please report it)",
                message.into()
            ),
            code: Some(codes::INTERNAL),
        }
    }

    /// Attaches a diagnostic code (builder style).
    pub fn with_code(mut self, code: Code) -> Self {
        self.code = Some(code);
        self
    }

    /// True when this diagnostic reports an exhausted resource budget
    /// (Z9xx except Z999).
    pub fn is_resource_limit(&self) -> bool {
        self.code.is_some_and(Code::is_resource_limit)
    }

    /// `error[Z201]` or plain `error` when no code is attached.
    fn severity_tag(&self) -> String {
        match self.code {
            Some(c) => format!("{}[{}]", self.severity, c),
            None => self.severity.to_string(),
        }
    }

    /// Renders the diagnostic with a line/column prefix resolved via `map`.
    pub fn render(&self, map: &SourceMap) -> String {
        format!(
            "{}: {}: {}",
            map.line_col(self.span.start),
            self.severity_tag(),
            self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.severity_tag(), self.message)?;
        if self.span != Span::dummy() {
            write!(f, " (at {})", self.span)?;
        }
        Ok(())
    }
}

impl Error for Diagnostic {}

/// Runs `f` behind a panic firewall: a panic is caught and downgraded to
/// a `Z999` internal-error [`Diagnostic`] carrying the panic payload.
///
/// This is the single unwinding boundary of the toolchain — the `zeus`
/// facade wraps its entry points with it, and long-running drivers (fault
/// campaigns, servers) use it to isolate one unit of work so a residual
/// bug cannot take down the whole run.
///
/// # Errors
///
/// Returns the `Z999` diagnostic when `f` panicked.
pub fn catch_panic<T>(f: impl FnOnce() -> T) -> Result<T, Diagnostic> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "unknown panic payload".to_string()
            };
            Err(Diagnostic::internal(
                Span::dummy(),
                format!("caught panic: {msg}"),
            ))
        }
    }
}

/// A collection of diagnostics accumulated by a phase.
///
/// Phases push into a `DiagSink` and return `Result<T, Diagnostics>` so a
/// single run can report many independent problems.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    diags: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Convenience: push an error.
    pub fn error(&mut self, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::error(span, message));
    }

    /// Convenience: push a warning.
    pub fn warning(&mut self, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::warning(span, message));
    }

    /// True if any diagnostic is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of diagnostics of all severities.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// True when no diagnostics were reported.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Iterates over the diagnostics in emission order.
    pub fn iter(&self) -> std::slice::Iter<'_, Diagnostic> {
        self.diags.iter()
    }

    /// Merges another collection into this one.
    pub fn extend(&mut self, other: Diagnostics) {
        self.diags.extend(other.diags);
    }

    /// Gives every untagged diagnostic the phase's default code.
    ///
    /// Phases call this at their boundary so that specific codes set deeper
    /// in the pipeline (e.g. Z9xx limits) survive, while everything else is
    /// classified by the phase that emitted it.
    pub fn tag_default_code(&mut self, code: Code) {
        for d in &mut self.diags {
            d.code.get_or_insert(code);
        }
    }

    /// True if any diagnostic reports an exhausted resource budget (Z9xx).
    pub fn has_resource_limit(&self) -> bool {
        self.diags.iter().any(Diagnostic::is_resource_limit)
    }

    /// Renders all diagnostics, one per line, against `map`.
    pub fn render(&self, map: &SourceMap) -> String {
        self.diags
            .iter()
            .map(|d| d.render(map))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl Error for Diagnostics {}

impl From<Diagnostic> for Diagnostics {
    fn from(d: Diagnostic) -> Self {
        Diagnostics { diags: vec![d] }
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.diags.into_iter()
    }
}

impl<'a> IntoIterator for &'a Diagnostics {
    type Item = &'a Diagnostic;
    type IntoIter = std::slice::Iter<'a, Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.diags.iter()
    }
}

impl FromIterator<Diagnostic> for Diagnostics {
    fn from_iter<T: IntoIterator<Item = Diagnostic>>(iter: T) -> Self {
        Diagnostics {
            diags: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn sink_tracks_errors() {
        let mut ds = Diagnostics::new();
        assert!(ds.is_empty());
        ds.warning(Span::new(0, 1), "odd but legal");
        assert!(!ds.has_errors());
        ds.error(Span::new(1, 2), "boom");
        assert!(ds.has_errors());
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn render_with_source_map() {
        let map = SourceMap::new("abc\ndef");
        let d = Diagnostic::error(Span::new(5, 6), "bad token");
        assert_eq!(d.render(&map), "2:2: error: bad token");
    }

    #[test]
    fn codes_render_and_classify() {
        let map = SourceMap::new("abc");
        let d = Diagnostic::error(Span::new(0, 1), "too many nets").with_code(codes::LIMIT_NETS);
        assert_eq!(d.render(&map), "1:1: error[Z902]: too many nets");
        assert!(format!("{d}").starts_with("error[Z902]:"));
        assert!(d.is_resource_limit());
        assert!(!Diagnostic::error(Span::new(0, 1), "bug")
            .with_code(codes::INTERNAL)
            .is_resource_limit());
        assert!(!Diagnostic::error(Span::new(0, 1), "plain").is_resource_limit());
    }

    #[test]
    fn tag_default_code_preserves_existing() {
        let mut ds = Diagnostics::new();
        ds.error(Span::new(0, 1), "untagged");
        ds.push(Diagnostic::error(Span::new(1, 2), "out of fuel").with_code(codes::LIMIT_FUEL));
        ds.tag_default_code(codes::ELAB);
        let codes: Vec<_> = ds.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Some(codes::ELAB), Some(codes::LIMIT_FUEL)]);
        assert!(ds.has_resource_limit());
    }

    #[test]
    fn display_impls_are_nonempty() {
        let d = Diagnostic::note(Span::new(0, 0), "hi");
        assert!(!format!("{d}").is_empty());
        let ds: Diagnostics = std::iter::once(d).collect();
        assert!(!format!("{ds}").is_empty());
    }

    #[test]
    fn catch_panic_downgrades_to_z999() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let err = catch_panic(|| panic!("kaboom {}", 7)).unwrap_err();
        let ok = catch_panic(|| 41 + 1);
        std::panic::set_hook(prev);
        assert_eq!(err.code, Some(codes::INTERNAL));
        assert!(err.message.contains("kaboom 7"), "{}", err.message);
        assert!(!err.is_resource_limit());
        assert_eq!(ok.unwrap(), 42);
    }
}
