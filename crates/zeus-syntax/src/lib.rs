//! # zeus-syntax
//!
//! Lexer, abstract syntax tree, parser and pretty-printer for **Zeus**, the
//! hardware description language for VLSI of Lieberherr & Knudsen (1983).
//!
//! The grammar implemented is the cross-referenced EBNF of §7 of the paper,
//! including the layout-language grammar of §6. See the repository's
//! `DESIGN.md` for the handful of places where the printed grammar contains
//! typos and how they are resolved.
//!
//! ## Example
//!
//! ```
//! use zeus_syntax::parse_program;
//!
//! # fn main() -> Result<(), zeus_syntax::Diagnostics> {
//! let program = parse_program(
//!     "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS
//!      BEGIN s := XOR(a,b); cout := AND(a,b) END;",
//! )?;
//! assert_eq!(program.decls.len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod span;
pub mod token;

pub use ast::Program;
pub use diag::{catch_panic, codes, Code, Diagnostic, Diagnostics, Severity};
pub use lexer::lex;
pub use parser::{parse_const_expr, parse_expr, parse_program};
pub use printer::{print_const_expr, print_expr, print_program, print_stmt};
pub use span::{LineCol, SourceMap, Span};
pub use token::{Token, TokenKind};
