//! The Zeus lexer.
//!
//! Implements the vocabulary of paper §2: identifiers, numbers with an
//! optional octal suffix `B`/`b`, the special symbols, and `<* ... *>`
//! comments (which nest, so commented-out code containing comments works).

use crate::diag::{Diagnostic, Diagnostics};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Converts Zeus source text into a token stream.
///
/// # Errors
///
/// Returns the accumulated [`Diagnostics`] if the source contains characters
/// outside the vocabulary, an unterminated comment, or a malformed number.
/// Lexing continues past recoverable errors so several problems can be
/// reported at once.
pub fn lex(src: &str) -> Result<Vec<Token>, Diagnostics> {
    let mut lx = Lexer::new(src);
    lx.run();
    if lx.diags.has_errors() {
        Err(lx.diags)
    } else {
        Ok(lx.tokens)
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
    diags: Diagnostics,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
            diags: Diagnostics::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn emit(&mut self, kind: TokenKind, start: usize) {
        self.tokens
            .push(Token::new(kind, Span::new(start as u32, self.pos as u32)));
    }

    fn run(&mut self) {
        loop {
            self.skip_trivia();
            let start = self.pos;
            let Some(c) = self.peek() else {
                self.emit(TokenKind::Eof, start);
                return;
            };
            match c {
                b'a'..=b'z' | b'A'..=b'Z' => self.ident(start),
                b'0'..=b'9' => self.number(start),
                b'+' => {
                    self.bump();
                    self.emit(TokenKind::Plus, start);
                }
                b'-' => {
                    self.bump();
                    self.emit(TokenKind::Minus, start);
                }
                b'(' => {
                    self.bump();
                    self.emit(TokenKind::LParen, start);
                }
                b')' => {
                    self.bump();
                    self.emit(TokenKind::RParen, start);
                }
                b'[' => {
                    self.bump();
                    self.emit(TokenKind::LBracket, start);
                }
                b']' => {
                    self.bump();
                    self.emit(TokenKind::RBracket, start);
                }
                b'{' => {
                    self.bump();
                    self.emit(TokenKind::LBrace, start);
                }
                b'}' => {
                    self.bump();
                    self.emit(TokenKind::RBrace, start);
                }
                b',' => {
                    self.bump();
                    self.emit(TokenKind::Comma, start);
                }
                b';' => {
                    self.bump();
                    self.emit(TokenKind::Semicolon, start);
                }
                b'*' => {
                    self.bump();
                    self.emit(TokenKind::Star, start);
                }
                b'.' => {
                    self.bump();
                    if self.peek() == Some(b'.') {
                        self.bump();
                        self.emit(TokenKind::DotDot, start);
                    } else {
                        self.emit(TokenKind::Dot, start);
                    }
                }
                b':' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.emit(TokenKind::Assign, start);
                    } else {
                        self.emit(TokenKind::Colon, start);
                    }
                }
                b'=' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.emit(TokenKind::Alias, start);
                    } else {
                        self.emit(TokenKind::Eq, start);
                    }
                }
                b'<' => {
                    // `<*` comments are consumed in skip_trivia; here `<`
                    // can only begin `<=`, `<>` or plain `<`.
                    self.bump();
                    match self.peek() {
                        Some(b'=') => {
                            self.bump();
                            self.emit(TokenKind::Le, start);
                        }
                        Some(b'>') => {
                            self.bump();
                            self.emit(TokenKind::Ne, start);
                        }
                        _ => self.emit(TokenKind::Lt, start),
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.emit(TokenKind::Ge, start);
                    } else {
                        self.emit(TokenKind::Gt, start);
                    }
                }
                other => {
                    self.bump();
                    self.diags.push(Diagnostic::error(
                        Span::new(start as u32, self.pos as u32),
                        format!(
                            "character '{}' is not in the Zeus vocabulary",
                            other as char
                        ),
                    ));
                }
            }
        }
    }

    /// Skips whitespace and (nested) `<* ... *>` comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.bump();
                }
                Some(b'<') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    let mut depth = 1usize;
                    while depth > 0 {
                        match self.peek() {
                            None => {
                                self.diags.push(Diagnostic::error(
                                    Span::new(start as u32, self.pos as u32),
                                    "unterminated comment",
                                ));
                                return;
                            }
                            Some(b'<') if self.peek2() == Some(b'*') => {
                                self.pos += 2;
                                depth += 1;
                            }
                            Some(b'*') if self.peek2() == Some(b'>') => {
                                self.pos += 2;
                                depth -= 1;
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn ident(&mut self, start: usize) {
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
        match TokenKind::keyword(text) {
            Some(kw) => self.emit(kw, start),
            None => self.emit(TokenKind::Ident(text.to_string()), start),
        }
    }

    /// `number = digit {digit} ["B"|"b"]` — the suffix marks octal (§2).
    ///
    /// A digit run followed by a letter other than the octal suffix is a
    /// malformed number (identifiers must start with a letter, so `12ab`
    /// cannot be re-tokenized).
    fn number(&mut self, start: usize) {
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                self.bump();
            } else {
                break;
            }
        }
        let digits_end = self.pos;
        let mut octal = false;
        if let Some(c) = self.peek() {
            if c == b'B' || c == b'b' {
                // Octal suffix only if not followed by more ident chars
                // (so `10b` is octal 8 but `10bits` is an error).
                if !self
                    .peek2()
                    .map(|n| n.is_ascii_alphanumeric())
                    .unwrap_or(false)
                {
                    self.bump();
                    octal = true;
                }
            }
        }
        let text = std::str::from_utf8(&self.src[start..digits_end]).expect("ascii digits");
        let radix = if octal { 8 } else { 10 };
        let value = i64::from_str_radix(text, radix);
        match value {
            Ok(v) => self.emit(TokenKind::Number(v), start),
            Err(_) => {
                let span = Span::new(start as u32, self.pos as u32);
                self.diags.push(Diagnostic::error(
                    span,
                    if octal && text.bytes().any(|d| d >= b'8') {
                        format!("'{text}' contains digits not valid in an octal number")
                    } else {
                        format!("number '{text}' is out of range")
                    },
                ));
                self.emit(TokenKind::Number(0), start);
            }
        }
        // Trailing alphanumerics right after a number are malformed.
        if self
            .peek()
            .map(|c| c.is_ascii_alphanumeric())
            .unwrap_or(false)
        {
            let tail_start = self.pos;
            while self
                .peek()
                .map(|c| c.is_ascii_alphanumeric())
                .unwrap_or(false)
            {
                self.bump();
            }
            self.diags.push(Diagnostic::error(
                Span::new(tail_start as u32, self.pos as u32),
                "identifier characters may not follow a number",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .expect("lex ok")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds(""), vec![Eof]);
        assert_eq!(kinds("   \n\t"), vec![Eof]);
    }

    #[test]
    fn symbols() {
        assert_eq!(
            kinds("+ - ( ) [ ] . , ; : < <= > >= := == .. * = <> { }"),
            vec![
                Plus, Minus, LParen, RParen, LBracket, RBracket, Dot, Comma, Semicolon, Colon, Lt,
                Le, Gt, Ge, Assign, Alias, DotDot, Star, Eq, Ne, LBrace, RBrace, Eof
            ]
        );
    }

    #[test]
    fn compound_symbols_without_spaces() {
        assert_eq!(kinds("a:=b"), vec![ident("a"), Assign, ident("b"), Eof]);
        assert_eq!(kinds("a==b"), vec![ident("a"), Alias, ident("b"), Eof]);
        assert_eq!(kinds("1..4"), vec![Number(1), DotDot, Number(4), Eof]);
    }

    fn ident(s: &str) -> TokenKind {
        Ident(s.to_string())
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            kinds("IF score THEN END"),
            vec![KwIf, ident("score"), KwThen, KwEnd, Eof]
        );
        // Lower-case reserved-looking words are plain identifiers.
        assert_eq!(kinds("if then"), vec![ident("if"), ident("then"), Eof]);
        // Mixed-case is an identifier too.
        assert_eq!(kinds("If"), vec![ident("If"), Eof]);
    }

    #[test]
    fn identifiers_with_digits() {
        assert_eq!(
            kinds("h1 bo5 x2y"),
            vec![ident("h1"), ident("bo5"), ident("x2y"), Eof]
        );
    }

    #[test]
    fn decimal_and_octal_numbers() {
        assert_eq!(
            kinds("0 7 22 1023"),
            vec![Number(0), Number(7), Number(22), Number(1023), Eof]
        );
        assert_eq!(kinds("10B"), vec![Number(8), Eof]);
        assert_eq!(kinds("17b"), vec![Number(15), Eof]);
        assert_eq!(kinds("777B"), vec![Number(511), Eof]);
    }

    #[test]
    fn bad_octal_digit_is_error() {
        assert!(lex("19B").is_err());
    }

    #[test]
    fn number_followed_by_letters_is_error() {
        assert!(lex("12ab").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a <* hi there *> b"),
            vec![ident("a"), ident("b"), Eof]
        );
        assert_eq!(kinds("<* leading *> x"), vec![ident("x"), Eof]);
    }

    #[test]
    fn comments_nest() {
        assert_eq!(
            kinds("a <* outer <* inner *> still out *> b"),
            vec![ident("a"), ident("b"), Eof]
        );
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(lex("a <* oops").is_err());
    }

    #[test]
    fn comment_containing_symbols() {
        // `<*the * indicates that no connection is made*>` from the paper.
        assert_eq!(
            kinds("h2; <*the * indicates that no connection is made*> x"),
            vec![ident("h2"), Semicolon, ident("x"), Eof]
        );
    }

    #[test]
    fn invalid_character_reports_error() {
        assert!(lex("a # b").is_err());
    }

    #[test]
    fn spans_cover_tokens() {
        let toks = lex("ab :=").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
    }

    #[test]
    fn paper_fragment_lexes() {
        let src = "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS\n\
                   BEGIN s := XOR(a,b); cout := AND(a,b) END;";
        let toks = lex(src).unwrap();
        assert!(toks.len() > 20);
        assert_eq!(toks.last().unwrap().kind, Eof);
    }
}
