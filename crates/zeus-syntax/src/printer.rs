//! Pretty-printer: AST back to canonical Zeus source.
//!
//! The printer produces text that re-parses to an equal AST (modulo spans),
//! which the property tests in this crate verify. It is also used by
//! `zeusc` to echo normalized programs.

use crate::ast::*;

/// Prints a whole program.
pub fn print_program(p: &Program) -> String {
    let mut pr = Printer::new();
    for d in &p.decls {
        pr.decl(d);
    }
    pr.out
}

/// Prints a single expression.
pub fn print_expr(e: &Expr) -> String {
    let mut pr = Printer::new();
    pr.expr(e);
    pr.out
}

/// Prints a single constant expression.
pub fn print_const_expr(e: &ConstExpr) -> String {
    let mut pr = Printer::new();
    pr.const_expr(e);
    pr.out
}

/// Prints a single statement.
pub fn print_stmt(s: &Stmt) -> String {
    let mut pr = Printer::new();
    pr.stmt(s);
    pr.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Self {
        Printer {
            out: String::new(),
            indent: 0,
        }
    }

    fn nl(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn word(&mut self, s: &str) {
        self.out.push_str(s);
    }

    fn decl(&mut self, d: &Decl) {
        match d {
            Decl::Const(defs) => {
                self.word("CONST");
                self.indent += 1;
                for def in defs {
                    self.nl();
                    self.word(&def.name.name);
                    self.word(" = ");
                    match &def.value {
                        Constant::Num(e) => self.const_expr(e),
                        Constant::Sig(c) => self.sig_const(c),
                    }
                    self.word(";");
                }
                self.indent -= 1;
                self.nl();
            }
            Decl::Type(defs) => {
                self.word("TYPE");
                self.indent += 1;
                for def in defs {
                    self.nl();
                    self.word(&def.name.name);
                    if !def.params.is_empty() {
                        self.word("(");
                        for (i, p) in def.params.iter().enumerate() {
                            if i > 0 {
                                self.word(", ");
                            }
                            self.word(&p.name);
                        }
                        self.word(")");
                    }
                    self.word(" = ");
                    self.ty(&def.ty);
                    self.word(";");
                }
                self.indent -= 1;
                self.nl();
            }
            Decl::Signal(defs) => {
                self.word("SIGNAL");
                self.indent += 1;
                for def in defs {
                    self.nl();
                    for (i, n) in def.names.iter().enumerate() {
                        if i > 0 {
                            self.word(", ");
                        }
                        self.word(&n.name);
                    }
                    self.word(": ");
                    self.ty(&def.ty);
                    self.word(";");
                }
                self.indent -= 1;
                self.nl();
            }
        }
    }

    fn ty(&mut self, t: &Type) {
        match t {
            Type::Array { lo, hi, elem, .. } => {
                self.word("ARRAY [");
                self.const_expr(lo);
                self.word("..");
                self.const_expr(hi);
                self.word("] OF ");
                self.ty(elem);
            }
            Type::Named { name, args } => {
                self.word(&name.name);
                if !args.is_empty() {
                    self.word("(");
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            self.word(", ");
                        }
                        self.const_expr(a);
                    }
                    self.word(")");
                }
            }
            Type::Component(c) => self.component(c),
        }
    }

    fn component(&mut self, c: &ComponentType) {
        self.word("COMPONENT (");
        for (i, g) in c.params.iter().enumerate() {
            if i > 0 {
                self.word("; ");
            }
            match g.mode {
                Mode::In => self.word("IN "),
                Mode::Out => self.word("OUT "),
                Mode::InOut => {}
            }
            for (j, n) in g.names.iter().enumerate() {
                if j > 0 {
                    self.word(", ");
                }
                self.word(&n.name);
            }
            self.word(": ");
            self.ty(&g.ty);
        }
        self.word(")");
        if !c.header_layout.is_empty() {
            self.word(" { ");
            self.layout_list_inline(&c.header_layout);
            self.word(" }");
        }
        if let Some(r) = &c.result {
            self.word(": ");
            self.ty(r);
        }
        if let Some(body) = &c.body {
            self.word(" IS");
            self.indent += 1;
            if let Some(uses) = &body.uses {
                self.nl();
                self.word("USES ");
                for (i, u) in uses.iter().enumerate() {
                    if i > 0 {
                        self.word(", ");
                    }
                    self.word(&u.name);
                }
                self.word(";");
            }
            for d in &body.decls {
                self.nl();
                self.decl(d);
            }
            if !body.layout.is_empty() {
                self.nl();
                self.word("{ ");
                self.layout_list_inline(&body.layout);
                self.word(" }");
            }
            self.nl();
            self.word("BEGIN");
            self.indent += 1;
            self.stmt_list(&body.stmts);
            self.indent -= 1;
            self.nl();
            self.word("END");
            self.indent -= 1;
        }
    }

    fn stmt_list(&mut self, stmts: &[Stmt]) {
        for (i, s) in stmts.iter().enumerate() {
            self.nl();
            self.stmt(s);
            if i + 1 < stmts.len() {
                self.word(";");
            }
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign { lhs, op, rhs, .. } => {
                match lhs {
                    Signal::Ref(r) => self.signal_ref(r),
                    Signal::Star(_) => self.word("*"),
                }
                self.word(match op {
                    AssignOp::Define => " := ",
                    AssignOp::Alias => " == ",
                });
                self.expr(rhs);
            }
            Stmt::Connection { target, args, .. } => {
                self.signal_ref(target);
                if let Some(a) = args {
                    self.expr(a);
                }
            }
            Stmt::For {
                var,
                from,
                to,
                downto,
                sequentially,
                body,
                ..
            } => {
                self.word("FOR ");
                self.word(&var.name);
                self.word(" := ");
                self.const_expr(from);
                self.word(if *downto { " DOWNTO " } else { " TO " });
                self.const_expr(to);
                self.word(" DO");
                if *sequentially {
                    self.word(" SEQUENTIALLY");
                }
                self.indent += 1;
                self.stmt_list(body);
                self.indent -= 1;
                self.nl();
                self.word("END");
            }
            Stmt::WhenGen {
                arms, otherwise, ..
            } => {
                for (i, (c, stmts)) in arms.iter().enumerate() {
                    self.word(if i == 0 { "WHEN " } else { "OTHERWISEWHEN " });
                    self.const_expr(c);
                    self.word(" THEN");
                    self.indent += 1;
                    self.stmt_list(stmts);
                    self.indent -= 1;
                    self.nl();
                }
                if let Some(o) = otherwise {
                    self.word("OTHERWISE");
                    self.indent += 1;
                    self.stmt_list(o);
                    self.indent -= 1;
                    self.nl();
                }
                self.word("END");
            }
            Stmt::If { arms, els, .. } => {
                for (i, (c, stmts)) in arms.iter().enumerate() {
                    self.word(if i == 0 { "IF " } else { "ELSIF " });
                    self.expr(c);
                    self.word(" THEN");
                    self.indent += 1;
                    self.stmt_list(stmts);
                    self.indent -= 1;
                    self.nl();
                }
                if let Some(e) = els {
                    self.word("ELSE");
                    self.indent += 1;
                    self.stmt_list(e);
                    self.indent -= 1;
                    self.nl();
                }
                self.word("END");
            }
            Stmt::Result(e, _) => {
                self.word("RESULT ");
                self.expr(e);
            }
            Stmt::Parallel(body, _) => {
                self.word("PARALLEL");
                self.indent += 1;
                self.stmt_list(body);
                self.indent -= 1;
                self.nl();
                self.word("END");
            }
            Stmt::Sequential(body, _) => {
                self.word("SEQUENTIAL");
                self.indent += 1;
                self.stmt_list(body);
                self.indent -= 1;
                self.nl();
                self.word("END");
            }
            Stmt::With { signal, body, .. } => {
                self.word("WITH ");
                self.signal_ref(signal);
                self.word(" DO");
                self.indent += 1;
                self.stmt_list(body);
                self.indent -= 1;
                self.nl();
                self.word("END");
            }
            Stmt::Empty(_) => {}
        }
    }

    fn signal_ref(&mut self, r: &SignalRef) {
        self.word(&r.base.name);
        for sel in &r.sels {
            match sel {
                Selector::Index(e) => {
                    self.word("[");
                    self.const_expr(e);
                    self.word("]");
                }
                Selector::Range(lo, hi) => {
                    self.word("[");
                    self.const_expr(lo);
                    self.word("..");
                    self.const_expr(hi);
                    self.word("]");
                }
                Selector::NumIndex(s, _) => {
                    self.word("[NUM(");
                    self.signal_ref(s);
                    self.word(")]");
                }
                Selector::Field(f) => {
                    self.word(".");
                    self.word(&f.name);
                }
                Selector::FieldRange(a, b) => {
                    self.word(".");
                    self.word(&a.name);
                    self.word("..");
                    self.word(&b.name);
                }
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Sig(r) => self.signal_ref(r),
            Expr::Call {
                name,
                type_args,
                args,
                ..
            } => {
                self.word(&name.name);
                if !type_args.is_empty() {
                    self.word("[");
                    for (i, a) in type_args.iter().enumerate() {
                        if i > 0 {
                            self.word(", ");
                        }
                        self.const_expr(a);
                    }
                    self.word("]");
                }
                self.word("(");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.word(", ");
                    }
                    self.expr(a);
                }
                self.word(")");
            }
            Expr::Not(inner, _) => {
                self.word("NOT ");
                self.expr(inner);
            }
            Expr::Bin(a, b, _) => {
                self.word("BIN(");
                self.const_expr(a);
                self.word(", ");
                self.const_expr(b);
                self.word(")");
            }
            Expr::Const(c) => self.sig_const(c),
            Expr::Star { count, .. } => {
                self.word("*");
                if let Some(c) = count {
                    self.word(" : ");
                    self.const_expr(c);
                }
            }
            Expr::Tuple(items, _) => {
                self.word("(");
                for (i, a) in items.iter().enumerate() {
                    if i > 0 {
                        self.word(", ");
                    }
                    self.expr(a);
                }
                self.word(")");
            }
        }
    }

    fn sig_const(&mut self, c: &SigConst) {
        match c {
            SigConst::Tuple(items, _) => {
                self.word("(");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        self.word(", ");
                    }
                    self.sig_const(item);
                }
                self.word(")");
            }
            SigConst::Value(v) => match v {
                SigValue::Zero(_) => self.word("0"),
                SigValue::One(_) => self.word("1"),
                SigValue::Name(n) => self.word(&n.name),
            },
            SigConst::Bin(a, b, _) => {
                self.word("BIN(");
                self.const_expr(a);
                self.word(", ");
                self.const_expr(b);
                self.word(")");
            }
        }
    }

    fn const_expr(&mut self, e: &ConstExpr) {
        self.const_expr_prec(e, 0);
    }

    /// Precedence: 0 relation, 1 additive, 2 multiplicative, 3 unary/atom.
    fn const_prec(e: &ConstExpr) -> u8 {
        match e {
            ConstExpr::Binary { op, .. } => match op {
                ConstBinOp::Eq
                | ConstBinOp::Ne
                | ConstBinOp::Lt
                | ConstBinOp::Le
                | ConstBinOp::Gt
                | ConstBinOp::Ge => 0,
                ConstBinOp::Add | ConstBinOp::Sub | ConstBinOp::Or => 1,
                ConstBinOp::Mul | ConstBinOp::Div | ConstBinOp::Mod | ConstBinOp::And => 2,
            },
            ConstExpr::Unary { .. } => 1, // leading sign parses at additive level
            _ => 3,
        }
    }

    fn const_expr_prec(&mut self, e: &ConstExpr, min: u8) {
        let prec = Self::const_prec(e);
        let paren = prec < min;
        if paren {
            self.word("(");
        }
        match e {
            ConstExpr::Num(n, _) => {
                self.word(&n.to_string());
            }
            ConstExpr::Name(i) => self.word(&i.name),
            ConstExpr::Call { name, args, .. } => {
                self.word(&name.name);
                self.word("(");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.word("; ");
                    }
                    self.const_expr_prec(a, 0);
                }
                self.word(")");
            }
            ConstExpr::Unary { op, expr, .. } => match op {
                ConstUnOp::Plus => {
                    self.word("+");
                    self.const_expr_prec(expr, 2);
                }
                ConstUnOp::Minus => {
                    self.word("-");
                    self.const_expr_prec(expr, 2);
                }
                ConstUnOp::Not => {
                    self.word("NOT ");
                    self.const_expr_prec(expr, 3);
                }
            },
            ConstExpr::Binary { op, lhs, rhs } => {
                // Relations are non-associative in the grammar
                // (`ConstExpression = SimpleConstExpr [relation
                // SimpleConstExpr]`), so a relation operand of a relation
                // must be parenthesized; the arithmetic levels are left
                // associative.
                let lhs_min = if prec == 0 { 1 } else { prec };
                self.const_expr_prec(lhs, lhs_min);
                self.word(" ");
                self.word(op.text());
                self.word(" ");
                self.const_expr_prec(rhs, prec + 1);
            }
        }
        if paren {
            self.word(")");
        }
    }

    fn layout_list_inline(&mut self, stmts: &[LayoutStmt]) {
        for (i, s) in stmts.iter().enumerate() {
            if i > 0 {
                self.word("; ");
            }
            self.layout_stmt(s);
        }
    }

    fn layout_stmt(&mut self, s: &LayoutStmt) {
        match s {
            LayoutStmt::Basic {
                orientation,
                signal,
                replace,
                ..
            } => {
                if let Some(o) = orientation {
                    self.word(&o.name);
                    self.word(" ");
                }
                self.signal_ref(signal);
                if let Some(t) = replace {
                    self.word(" = ");
                    self.ty(t);
                }
            }
            LayoutStmt::Order {
                direction, body, ..
            } => {
                self.word("ORDER ");
                self.word(&direction.name);
                self.word(" ");
                self.layout_list_inline(body);
                self.word(" END");
            }
            LayoutStmt::For {
                var,
                from,
                to,
                downto,
                body,
                ..
            } => {
                self.word("FOR ");
                self.word(&var.name);
                self.word(" := ");
                self.const_expr(from);
                self.word(if *downto { " DOWNTO " } else { " TO " });
                self.const_expr(to);
                self.word(" DO ");
                self.layout_list_inline(body);
                self.word(" END");
            }
            LayoutStmt::Boundary { side, body, .. } => {
                self.word(&side.to_string());
                self.word(" ");
                self.layout_list_inline(body);
            }
            LayoutStmt::WhenGen {
                arms, otherwise, ..
            } => {
                for (i, (c, stmts)) in arms.iter().enumerate() {
                    self.word(if i == 0 { "WHEN " } else { "OTHERWISEWHEN " });
                    self.const_expr(c);
                    self.word(" THEN ");
                    self.layout_list_inline(stmts);
                    self.word(" ");
                }
                if let Some(o) = otherwise {
                    self.word("OTHERWISE ");
                    self.layout_list_inline(o);
                    self.word(" ");
                }
                self.word("END");
            }
            LayoutStmt::With { signal, body, .. } => {
                self.word("WITH ");
                self.signal_ref(signal);
                self.word(" DO ");
                self.layout_list_inline(body);
                self.word(" END");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    /// Strips spans by re-parsing printed text and printing again.
    fn round_trip_program(src: &str) {
        let p1 = parse_program(src).expect("first parse");
        let printed = print_program(&p1);
        let p2 =
            parse_program(&printed).unwrap_or_else(|e| panic!("re-parse failed:\n{printed}\n{e}"));
        let printed2 = print_program(&p2);
        assert_eq!(printed, printed2, "printer not a fixpoint");
    }

    #[test]
    fn round_trip_halfadder() {
        round_trip_program(
            "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS \
             BEGIN s := XOR(a,b); cout := AND(a,b) END;",
        );
    }

    #[test]
    fn round_trip_function_component() {
        round_trip_program(
            "TYPE bo(n) = ARRAY[1..n] OF boolean; \
             mux4 = COMPONENT (IN d:bo(4); IN a:bo(2); IN g: boolean):boolean IS \
             CONST bit2 = ((0,0),(0,1),(1,0),(1,1)); \
             SIGNAL h: multiplex; \
             BEGIN FOR i:=1 TO 4 DO IF EQUAL(a,bit2[i]) THEN h := d[i] END END; \
             RESULT AND(NOT g,h) END;",
        );
    }

    #[test]
    fn round_trip_layout() {
        round_trip_program(
            "TYPE t = COMPONENT(IN in:boolean; out: multiplex) { BOTTOM in; out } IS \
             SIGNAL s: ARRAY[1..4] OF x; \
             { ORDER lefttoright ORDER toptobottom s[1]; flip90 s[3] END; \
               ORDER toptobottom s[2]; flip90 s[4] END END } \
             BEGIN out == s[1].out END;",
        );
    }

    #[test]
    fn round_trip_sequential() {
        round_trip_program(
            "TYPE t = COMPONENT(IN a:boolean) IS BEGIN \
             SEQUENTIAL h[1] := a; \
             FOR i:=1 TO 4 DO SEQUENTIALLY add[i](a, h[i], h[i+1]) END; \
             cout := h[5] END END;",
        );
    }

    #[test]
    fn const_expr_precedence_survives() {
        let e1 = crate::parser::parse_const_expr("(1+2)*3 MOD (4-5)").unwrap();
        let printed = print_const_expr(&e1);
        let e2 = crate::parser::parse_const_expr(&printed).unwrap();
        assert_eq!(print_const_expr(&e2), printed);
    }

    #[test]
    fn expr_star_count() {
        let e = parse_expr("* : 3").unwrap();
        assert_eq!(print_expr(&e), "* : 3");
    }

    #[test]
    fn round_trip_when_generation() {
        round_trip_program(
            "TYPE routingnetwork(n) = COMPONENT(IN input: channel(n-1); OUT output: channel(n-1)) IS \
             SIGNAL top,bottom: routingnetwork(n DIV 2); \
             c: ARRAY[0..n DIV 2-1] OF router; \
             BEGIN \
             WHEN n=2 THEN c[0](input[0],input[1],output[0],output[1]) \
             OTHERWISE \
               FOR i := 0 TO n DIV 2 -1 DO \
                 c[i](input[2*i],input[2*i+1],top.input[i],bottom.input[i]); \
                 output[i] := top.output[i]; \
                 output[i+ n DIV 2] := bottom.output[i] \
               END \
             END END;",
        );
    }
}
