//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so this workspace crate implements the subset of the proptest 1.x API
//! that the Zeus test suites use: the [`Strategy`] trait with `prop_map`
//! / `prop_filter` / `prop_recursive`, range and tuple strategies, a
//! small regex-like string generator, `prop_oneof!`, `collection::vec`,
//! `option::of`, and the [`proptest!`] macro with
//! `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, by design:
//!
//! * generation is plain pseudo-random (deterministic per test name) —
//!   there is no shrinking; a failure reports the case number and the
//!   generated inputs' `Debug` rendering when available;
//! * regex strategies support only the concatenation of literals,
//!   character classes and `.` with `*`, `+`, `?` and `{m,n}`
//!   quantifiers — exactly what the Zeus suites need.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Harness configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed or rejected test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold; the payload explains why.
    Fail(String),
    /// The input was rejected (filter exhaustion).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given explanation.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given explanation.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Result type of one property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `f` (with bounded retries).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for the
    /// sub-cases and returns the composite case; nesting is bounded by
    /// `depth`. The `_desired_size` / `_expected_branch_size` hints of
    /// real proptest are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            // Each level mixes the leaf back in so composites can bottom
            // out before the full depth is reached.
            let mixed = Union {
                arms: vec![leaf.clone(), level],
            }
            .boxed();
            level = recurse(mixed).boxed();
        }
        Union {
            arms: vec![leaf, level],
        }
        .boxed()
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 candidates", self.whence);
    }
}

/// A weighted-equal union of strategies (`prop_oneof!`).
pub struct Union<T> {
    /// The alternatives.
    pub arms: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! of zero strategies");
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Generates a constant by cloning (`Just(x)`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

// -- primitive strategies ---------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                let raw: u64 = rng.gen();
                raw as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

/// Strategy for an unconstrained value of `T` (`any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Creates the [`Any`] strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 S0)
    (0 S0, 1 S1)
    (0 S0, 1 S1, 2 S2)
    (0 S0, 1 S1, 2 S2, 3 S3)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5)
}

// -- regex-like string strategies ------------------------------------------

/// One element of a simple pattern: the characters it may produce and the
/// repetition range.
struct PatPart {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_class(pattern: &[char], mut i: usize) -> (Vec<char>, usize) {
    // pattern[i] is the char after '['.
    let mut chars = Vec::new();
    while i < pattern.len() && pattern[i] != ']' {
        let c = if pattern[i] == '\\' && i + 1 < pattern.len() {
            i += 1;
            unescape(pattern[i])
        } else {
            pattern[i]
        };
        if i + 2 < pattern.len() && pattern[i + 1] == '-' && pattern[i + 2] != ']' {
            let hi = pattern[i + 2];
            for v in (c as u32)..=(hi as u32) {
                if let Some(ch) = char::from_u32(v) {
                    chars.push(ch);
                }
            }
            i += 3;
        } else {
            chars.push(c);
            i += 1;
        }
    }
    (chars, i + 1) // skip ']'
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

fn parse_quantifier(pattern: &[char], i: usize) -> (usize, usize, usize) {
    // Returns (min, max, next index).
    match pattern.get(i) {
        Some('*') => (0, 32, i + 1),
        Some('+') => (1, 32, i + 1),
        Some('?') => (0, 1, i + 1),
        Some('{') => {
            let close = pattern[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or(pattern.len());
            let body: String = pattern[i + 1..close].iter().collect();
            let (lo, hi) = match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().unwrap_or(0),
                    b.trim().parse().unwrap_or(32),
                ),
                None => {
                    let n = body.trim().parse().unwrap_or(1);
                    (n, n)
                }
            };
            (lo, hi, close + 1)
        }
        _ => (1, 1, i),
    }
}

fn parse_pattern(pattern: &str) -> Vec<PatPart> {
    // Printable ASCII plus newline, the universe for '.' (close enough
    // for generation purposes).
    let dot: Vec<char> = (' '..='~').chain(std::iter::once('\n')).collect();
    let chars: Vec<char> = pattern.chars().collect();
    let mut parts = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i + 1);
                i = next;
                set
            }
            '.' => {
                i += 1;
                dot.clone()
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                vec![unescape(chars[i - 1])]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max, next) = parse_quantifier(&chars, i);
        i = next;
        parts.push(PatPart {
            chars: set,
            min,
            max,
        });
    }
    parts
}

/// String literals act as (simplified) regex generators, as in proptest.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for part in parse_pattern(self) {
            if part.chars.is_empty() {
                continue;
            }
            let n = rng.gen_range(part.min..=part.max);
            for _ in 0..n {
                out.push(part.chars[rng.gen_range(0..part.chars.len())]);
            }
        }
        out
    }
}

// -- modules ----------------------------------------------------------------

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A vector of `len` elements generated by `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>`: `None` a quarter of the time.
    pub struct OptionStrategy<S>(S);

    /// `Some` of `inner` three times out of four, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            use rand::Rng;
            if rng.gen_range(0..4u32) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// `use proptest::prelude::*;` — everything the test files need.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
    /// Alias so `prop::collection::vec(..)` style paths work.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Picks uniformly from the listed strategies (all must generate the
/// same type). Real proptest's `weight => strategy` arms are not
/// supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union { arms: vec![$($crate::Strategy::boxed($strat)),+] }
    };
}

/// `prop_assert!(cond)` — fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional context message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), a, b
            )));
        }
    }};
}

/// `prop_assert_ne!(a, b)` with optional context message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a), stringify!($b), a
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}", format!($($fmt)*), a
            )));
        }
    }};
}

#[doc(hidden)]
pub fn __run_cases(
    test_name: &str,
    cases: u32,
    mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    // Deterministic per test name so failures reproduce without a seed
    // file; the case index is reported on failure.
    let mut seed = 0xC0FF_EE00_2E05_1983u64;
    for b in test_name.bytes() {
        seed = seed.wrapping_mul(1099511628211).wrapping_add(b as u64);
    }
    let mut rng = TestRng::seed_from_u64(seed);
    let mut rejects = 0u32;
    let mut case = 0u32;
    while case < cases {
        match body(&mut rng) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject(_)) if rejects < cases * 4 => rejects += 1,
            Err(e) => panic!("proptest '{test_name}' failed at case {case}/{cases}: {e}"),
        }
    }
}

/// The property-test harness macro. Supports the form
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(512))]
///     #[test]
///     fn my_property(x in 0..10i64, v in any::<bool>()) { ... }
/// }
/// ```
///
/// Bodies may use `prop_assert*` and `?` with [`TestCaseError`].
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) ) => {};
    // `#[test]` is written by the caller and consumed as one of the metas,
    // matching real proptest (a literal `#[test]` arm would be ambiguous
    // with the meta repetition).
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            // A tuple of strategies is itself a strategy for the tuple of
            // values, so one generate() draws every argument.
            let strategies = ( $($crate::Strategy::boxed($strat),)+ );
            $crate::__run_cases(stringify!($name), config.cases, |rng| {
                let ( $($arg,)+ ) = $crate::Strategy::generate(&strategies, rng);
                $body
                Ok(())
            });
        }
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_within_class() {
        use rand::SeedableRng as _;
        let mut rng = crate::TestRng::seed_from_u64(1);
        let s = "[a-z][a-z0-9]{0,5}";
        for _ in 0..200 {
            let v = crate::Strategy::generate(&s, &mut rng);
            assert!(!v.is_empty() && v.len() <= 6, "{v:?}");
            assert!(v.chars().next().unwrap().is_ascii_lowercase());
            assert!(v
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..20, b in any::<bool>()) {
            prop_assert!((3..20).contains(&x));
            let _ = b;
        }

        #[test]
        fn oneof_and_vec(words in crate::collection::vec(
            prop_oneof![Just("a"), Just("b")], 0..10)) {
            prop_assert!(words.len() < 10);
            prop_assert!(words.iter().all(|w| *w == "a" || *w == "b"));
        }

        #[test]
        fn map_filter_recursive(v in (0i64..100)
            .prop_filter("even", |n| n % 2 == 0)
            .prop_map(|n| n / 2)) {
            prop_assert!((0..50).contains(&v));
        }
    }
}
