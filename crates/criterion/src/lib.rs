//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so this workspace crate provides the small API subset the Zeus bench
//! harnesses use — `Criterion`, `benchmark_group` / `sample_size` /
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box`,
//! `criterion_group!` and `criterion_main!` — implemented as a plain
//! wall-clock timer that prints median / mean per iteration.
//!
//! There is no warm-up modelling, outlier analysis, or HTML report; the
//! numbers are honest medians over `sample_size` samples of an adaptive
//! iteration count, which is enough for the relative comparisons the
//! `EXPERIMENTS.md` figures make.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from hoisting or folding
/// the benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A named benchmark id (`BenchmarkId::new("elaborate", n)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// The timing loop handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    /// Times `f`, collecting `sample_count` samples.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Calibrate: aim for samples of at least ~1 ms.
        let start = Instant::now();
        black_box(f());
        let one = start.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(1);
        self.iters_per_sample = (target.as_nanos() / one.as_nanos()).clamp(1, 10_000) as u64;
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples
                .push(t.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: self.sample_size,
        };
        f(&mut b);
        let mut s = b.samples;
        if s.is_empty() {
            println!("{}/{}: no samples", self.name, id);
            return;
        }
        s.sort();
        let median = s[s.len() / 2];
        let mean = s.iter().sum::<Duration>() / s.len() as u32;
        println!(
            "{}/{}: median {:?}  mean {:?}  ({} samples x {} iters)",
            self.name,
            id,
            median,
            mean,
            s.len(),
            b.iters_per_sample
        );
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        self.run(id.to_string(), f);
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run(id.to_string(), |b| f(b, input));
    }

    /// Ends the group (printing is eager, so this is a no-op).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        let name = id.to_string();
        let mut g = self.benchmark_group(name.clone());
        g.bench_function(name, f);
        g.finish();
    }
}

/// Declares a benchmark group function list (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }
}
