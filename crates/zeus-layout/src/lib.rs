//! # zeus-layout
//!
//! The layout language of Zeus (§6): order statements with eight
//! directions of separation, orientation changes (the dihedral group D4),
//! boundary (pin) statements and `virtual` replacement — all already
//! resolved by `zeus-elab` into per-instance [`LayoutItem`] programs.
//!
//! This crate turns that instance tree into a concrete *floorplan*: an
//! integer-grid rectangle per instance, satisfying the relative-position
//! semantics of §8 ("the right edge of the bounding rectangle of x1 is
//! left of the left edge of the bounding rectangle of x2"). Leaf
//! components occupy a unit cell; composites are the abutted bounding
//! boxes of their children.
//!
//! ## Example
//!
//! ```
//! use zeus_syntax::parse_program;
//! use zeus_elab::elaborate;
//! use zeus_layout::floorplan;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "TYPE cell = COMPONENT (IN a: boolean; OUT b: boolean) IS BEGIN b := a END;
//!      row = COMPONENT (IN a: boolean; OUT b: boolean) IS
//!      SIGNAL c: ARRAY[1..4] OF cell;
//!      { ORDER lefttoright FOR i := 1 TO 4 DO c[i] END END }
//!      BEGIN c[1].a := a; c[2].a := c[1].b; c[3].a := c[2].b;
//!            c[4].a := c[3].b; b := c[4].b END;",
//! )?;
//! let design = elaborate(&program, "row", &[])?;
//! let plan = floorplan(&design);
//! assert_eq!((plan.width, plan.height), (4, 1));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use std::collections::HashMap;
use zeus_elab::{Design, Direction, InstanceNode, LayoutItem, Orientation};
use zeus_syntax::ast::Side;

/// A placed rectangle in the final floorplan (absolute coordinates,
/// origin top-left, y grows downward).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacedRect {
    /// Hierarchical instance path.
    pub path: String,
    /// Component type name.
    pub type_name: String,
    /// Left edge.
    pub x: i64,
    /// Top edge.
    pub y: i64,
    /// Width (≥ 1).
    pub w: i64,
    /// Height (≥ 1).
    pub h: i64,
    /// True when the instance has no placed children (drawn as a cell).
    pub leaf: bool,
}

/// A pin placed on an instance edge by a boundary statement (§6.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacedPin {
    /// Owning instance path.
    pub instance: String,
    /// Pin (formal parameter) name.
    pub name: String,
    /// The edge it sits on, after orientation changes.
    pub side: Side,
    /// Absolute x.
    pub x: i64,
    /// Absolute y.
    pub y: i64,
}

/// A complete floorplan.
#[derive(Debug, Clone, Default)]
pub struct Floorplan {
    /// All instance rectangles (composites and leaves).
    pub rects: Vec<PlacedRect>,
    /// All placed pins.
    pub pins: Vec<PlacedPin>,
    /// Total width of the bounding box.
    pub width: i64,
    /// Total height of the bounding box.
    pub height: i64,
}

impl Floorplan {
    /// Bounding-box area.
    pub fn area(&self) -> i64 {
        self.width * self.height
    }

    /// The rectangle of an instance by path.
    pub fn rect(&self, path: &str) -> Option<&PlacedRect> {
        self.rects.iter().find(|r| r.path == path)
    }

    /// Number of leaf cells.
    pub fn leaf_count(&self) -> usize {
        self.rects.iter().filter(|r| r.leaf).count()
    }

    /// Checks that no two leaf rectangles overlap (layout invariant).
    pub fn leaves_disjoint(&self) -> bool {
        let leaves: Vec<&PlacedRect> = self.rects.iter().filter(|r| r.leaf).collect();
        for (i, a) in leaves.iter().enumerate() {
            for b in &leaves[i + 1..] {
                let sep =
                    a.x + a.w <= b.x || b.x + b.w <= a.x || a.y + a.h <= b.y || b.y + b.h <= a.y;
                if !sep {
                    return false;
                }
            }
        }
        true
    }

    /// Renders the floorplan as ASCII art: leaves drawn with the first
    /// letter of their type, empty cells with `.`.
    pub fn render_ascii(&self) -> String {
        let w = self.width.max(0) as usize;
        let h = self.height.max(0) as usize;
        if w == 0 || h == 0 || w > 4096 || h > 4096 {
            return String::new();
        }
        let mut grid = vec![vec!['.'; w]; h];
        for r in self.rects.iter().filter(|r| r.leaf) {
            let c = r
                .type_name
                .chars()
                .next()
                .unwrap_or('#')
                .to_ascii_uppercase();
            for y in r.y..r.y + r.h {
                for x in r.x..r.x + r.w {
                    if y >= 0 && x >= 0 && (y as usize) < h && (x as usize) < w {
                        grid[y as usize][x as usize] = c;
                    }
                }
            }
        }
        let mut out = String::with_capacity((w + 1) * h);
        for row in grid {
            out.extend(row);
            out.push('\n');
        }
        out
    }
}

/// Computes the floorplan of an elaborated design.
pub fn floorplan(design: &Design) -> Floorplan {
    floorplan_of(&design.instances)
}

/// Computes the floorplan of one instance subtree.
pub fn floorplan_of(root: &InstanceNode) -> Floorplan {
    let frame = layout_node(root);
    let mut plan = Floorplan {
        rects: Vec::new(),
        pins: Vec::new(),
        width: frame.w,
        height: frame.h,
    };
    frame.emit(0, 0, &mut plan);
    plan
}

/// A laid-out box in local coordinates.
struct Frame {
    path: String,
    type_name: String,
    w: i64,
    h: i64,
    /// Children with local offsets.
    children: Vec<(i64, i64, Frame)>,
    /// Pins in local coordinates.
    pins: Vec<(String, Side, i64, i64)>,
    leaf: bool,
}

impl Frame {
    fn unit(path: String, type_name: String) -> Frame {
        Frame {
            path,
            type_name,
            w: 1,
            h: 1,
            children: Vec::new(),
            pins: Vec::new(),
            leaf: true,
        }
    }

    fn emit(&self, ox: i64, oy: i64, plan: &mut Floorplan) {
        if !self.path.is_empty() {
            plan.rects.push(PlacedRect {
                path: self.path.clone(),
                type_name: self.type_name.clone(),
                x: ox,
                y: oy,
                w: self.w,
                h: self.h,
                leaf: self.leaf,
            });
        }
        for (name, side, px, py) in &self.pins {
            plan.pins.push(PlacedPin {
                instance: self.path.clone(),
                name: name.clone(),
                side: *side,
                x: ox + px,
                y: oy + py,
            });
        }
        for (cx, cy, child) in &self.children {
            child.emit(ox + cx, oy + cy, plan);
        }
    }

    /// Applies an orientation change to the whole frame.
    fn orient(mut self, o: Orientation) -> Frame {
        if o == Orientation::Identity {
            return self;
        }
        let (w, h) = (self.w, self.h);
        let (_, _, nw, nh) = o.apply(0, 0, w, h);
        let children = std::mem::take(&mut self.children);
        self.children = children
            .into_iter()
            .map(|(cx, cy, child)| {
                let (x1, y1, _, _) = o.apply(cx, cy, w, h);
                let (x2, y2, _, _) = o.apply(cx + child.w - 1, cy + child.h - 1, w, h);
                let nx = x1.min(x2);
                let ny = y1.min(y2);
                (nx, ny, child.orient(o))
            })
            .collect();
        for (_, side, px, py) in &mut self.pins {
            let (nx, ny, _, _) = o.apply(*px, *py, w, h);
            *px = nx;
            *py = ny;
            *side = map_side(*side, o);
        }
        self.w = nw;
        self.h = nh;
        self
    }
}

/// Where an edge ends up after an orientation change, computed from the
/// transform of the edge midpoint in a 3×3 box.
fn map_side(side: Side, o: Orientation) -> Side {
    let (x, y) = match side {
        Side::Top => (1, 0),
        Side::Bottom => (1, 2),
        Side::Left => (0, 1),
        Side::Right => (2, 1),
    };
    let (nx, ny, _, _) = o.apply(x, y, 3, 3);
    match (nx, ny) {
        (1, 0) => Side::Top,
        (1, 2) => Side::Bottom,
        (0, 1) => Side::Left,
        (2, 1) => Side::Right,
        _ => side,
    }
}

fn layout_node(node: &InstanceNode) -> Frame {
    let by_key: HashMap<&str, &InstanceNode> =
        node.children.iter().map(|c| (c.key.as_str(), c)).collect();
    let mut placed: Vec<String> = Vec::new();

    let mut boundary: Vec<(Side, Vec<String>)> = Vec::new();
    let mut top_items: Vec<Frame> = Vec::new();
    for item in &node.layout {
        match item {
            LayoutItem::Boundary { side, pins } => boundary.push((*side, pins.clone())),
            other => {
                if let Some(f) = layout_item(other, &by_key, &mut placed) {
                    top_items.push(f);
                }
            }
        }
    }
    // Children not mentioned in the layout are appended (stacked top to
    // bottom after the explicit layout).
    for c in &node.children {
        if !placed.contains(&c.key) {
            top_items.push(layout_node(c));
        }
    }

    let mut frame = if top_items.is_empty() {
        Frame::unit(node.path.clone(), node.type_name.clone())
    } else {
        let mut f = stack(top_items, Direction::TopToBottom);
        f.path = node.path.clone();
        f.type_name = node.type_name.clone();
        f.leaf = false;
        f
    };

    for (side, pins) in boundary {
        let k = pins.len() as i64;
        for (i, name) in pins.into_iter().enumerate() {
            let i = i as i64;
            let (x, y) = match side {
                Side::Top => ((frame.w * (i + 1)) / (k + 1), 0),
                Side::Bottom => ((frame.w * (i + 1)) / (k + 1), frame.h - 1),
                Side::Left => (0, (frame.h * (i + 1)) / (k + 1)),
                Side::Right => (frame.w - 1, (frame.h * (i + 1)) / (k + 1)),
            };
            frame.pins.push((name, side, x, y));
        }
    }
    frame
}

/// Resolves a (possibly dotted) key against the children map, returning
/// the direct child's key (for auto-append bookkeeping) and the target
/// node.
fn resolve_key<'a>(
    by_key: &HashMap<&str, &'a InstanceNode>,
    key: &str,
) -> Option<(String, &'a InstanceNode)> {
    if let Some(node) = by_key.get(key) {
        return Some((key.to_string(), node));
    }
    for (&ckey, &child) in by_key {
        if let Some(rest) = key.strip_prefix(ckey) {
            if let Some(rest) = rest.strip_prefix('.') {
                let inner: HashMap<&str, &InstanceNode> =
                    child.children.iter().map(|c| (c.key.as_str(), c)).collect();
                if let Some((_, node)) = resolve_key(&inner, rest) {
                    return Some((ckey.to_string(), node));
                }
            }
        }
    }
    None
}

fn layout_item(
    item: &LayoutItem,
    by_key: &HashMap<&str, &InstanceNode>,
    placed: &mut Vec<String>,
) -> Option<Frame> {
    match item {
        LayoutItem::Place { key, orientation } => {
            // A key may address a grandchild through a WITH-opened
            // instance (the pattern matcher's `WITH pe[i] DO comp; acc
            // END`): resolve dotted segments through the tree and mark
            // the *direct* child as placed so it is not auto-appended.
            // Unknown keys reference instances that were never generated
            // ("hardware is only generated if it is used", §4.2) — they
            // occupy no area.
            let (direct, node) = resolve_key(by_key, key)?;
            placed.push(direct);
            Some(layout_node(node).orient(*orientation))
        }
        LayoutItem::Order { direction, items } => {
            let frames: Vec<Frame> = items
                .iter()
                .filter_map(|i| layout_item(i, by_key, placed))
                .collect();
            if frames.is_empty() {
                None
            } else {
                Some(stack(frames, *direction))
            }
        }
        LayoutItem::Boundary { .. } => None,
    }
}

/// Abuts a sequence of frames along a direction of separation. The
/// cross-axis is aligned to the start; the group's bounding box covers all
/// members.
fn stack(frames: Vec<Frame>, dir: Direction) -> Frame {
    use Direction::*;
    let (dx, dy): (i64, i64) = match dir {
        LeftToRight => (1, 0),
        RightToLeft => (-1, 0),
        TopToBottom => (0, 1),
        BottomToTop => (0, -1),
        TopLeftToBottomRight => (1, 1),
        BottomRightToTopLeft => (-1, -1),
        TopRightToBottomLeft => (-1, 1),
        BottomLeftToTopRight => (1, -1),
    };
    let mut x = 0i64;
    let mut y = 0i64;
    let mut children = Vec::new();
    for f in frames {
        // For negative directions the placement point is the box's own
        // far corner; advance first so boxes do not overlap.
        if dx < 0 {
            x -= f.w;
        }
        if dy < 0 {
            y -= f.h;
        }
        let (px, py) = (x, y);
        let (fw, fh) = (f.w, f.h);
        children.push((px, py, f));
        if dx > 0 {
            x += fw;
        }
        if dy > 0 {
            y += fh;
        }
    }
    let min_x = children.iter().map(|(cx, _, _)| *cx).min().unwrap_or(0);
    let min_y = children.iter().map(|(_, cy, _)| *cy).min().unwrap_or(0);
    let mut w = 0i64;
    let mut h = 0i64;
    for (cx, cy, f) in &mut children {
        *cx -= min_x;
        *cy -= min_y;
        w = w.max(*cx + f.w);
        h = h.max(*cy + f.h);
    }
    Frame {
        path: String::new(),
        type_name: String::new(),
        w,
        h,
        children,
        pins: Vec::new(),
        leaf: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_elab::elaborate;
    use zeus_syntax::parse_program;

    fn plan(src: &str, top: &str, args: &[i64]) -> Floorplan {
        let p = parse_program(src).expect("parse");
        let d = elaborate(&p, top, args).expect("elaborate");
        floorplan(&d)
    }

    const CELL: &str = "TYPE cell = COMPONENT (IN a: boolean; OUT b: boolean) IS \
         BEGIN b := a END; ";

    #[test]
    fn row_left_to_right() {
        let p = plan(
            &format!(
                "{CELL} row = COMPONENT (IN a: boolean; OUT b: boolean) IS \
                 SIGNAL c: ARRAY[1..4] OF cell; \
                 {{ ORDER lefttoright FOR i := 1 TO 4 DO c[i] END END }} \
                 BEGIN c[1].a := a; FOR i := 2 TO 4 DO c[i].a := c[i-1].b END; \
                 b := c[4].b END;"
            ),
            "row",
            &[],
        );
        assert_eq!((p.width, p.height), (4, 1));
        assert_eq!(p.leaf_count(), 4);
        assert!(p.leaves_disjoint());
        let r1 = p.rect("row.c[1]").unwrap();
        let r4 = p.rect("row.c[4]").unwrap();
        // "x1 is left of x2"
        assert!(r1.x + r1.w <= r4.x);
    }

    #[test]
    fn column_top_to_bottom() {
        let p = plan(
            &format!(
                "{CELL} col = COMPONENT (IN a: boolean; OUT b: boolean) IS \
                 SIGNAL c: ARRAY[1..3] OF cell; \
                 {{ ORDER toptobottom c[1]; c[2]; c[3] END }} \
                 BEGIN c[1].a := a; c[2].a := c[1].b; c[3].a := c[2].b; b := c[3].b END;"
            ),
            "col",
            &[],
        );
        assert_eq!((p.width, p.height), (1, 3));
        let r1 = p.rect("col.c[1]").unwrap();
        let r3 = p.rect("col.c[3]").unwrap();
        assert!(r1.y + r1.h <= r3.y);
    }

    #[test]
    fn grid_via_nested_orders() {
        let p = plan(
            &format!(
                "{CELL} grid = COMPONENT (IN a: boolean; OUT b: boolean) IS \
                 SIGNAL m: ARRAY[1..2,1..3] OF cell; \
                 {{ ORDER toptobottom \
                      FOR i := 1 TO 2 DO \
                        ORDER lefttoright FOR j := 1 TO 3 DO m[i,j] END END \
                      END \
                    END }} \
                 BEGIN FOR i := 1 TO 2 DO FOR j := 1 TO 3 DO \
                   m[i,j].a := a; \
                   WHEN (i = 2) AND (j = 3) THEN b := m[i,j].b \
                   OTHERWISE * := m[i,j].b END \
                 END END END;"
            ),
            "grid",
            &[],
        );
        assert_eq!((p.width, p.height), (3, 2));
        assert_eq!(p.leaf_count(), 6);
        assert!(p.leaves_disjoint());
        let ascii = p.render_ascii();
        assert_eq!(ascii, "CCC\nCCC\n");
    }

    #[test]
    fn snake_layout() {
        // The Fig. Snake arrangement: rows alternate left-to-right and
        // right-to-left.
        let p = plan(
            &format!(
                "{CELL} snake = COMPONENT (IN a: boolean; OUT b: boolean) IS \
                 SIGNAL m: ARRAY[1..2,1..3] OF cell; \
                 {{ ORDER toptobottom \
                      ORDER lefttoright m[1,1]; m[1,2]; m[1,3] END; \
                      ORDER righttoleft m[2,1]; m[2,2]; m[2,3] END \
                    END }} \
                 BEGIN FOR i := 1 TO 2 DO FOR j := 1 TO 3 DO \
                   m[i,j].a := a; \
                   WHEN (i = 2) AND (j = 3) THEN b := m[i,j].b \
                   OTHERWISE * := m[i,j].b END \
                 END END END;"
            ),
            "snake",
            &[],
        );
        assert!(p.leaves_disjoint());
        // In the second row, m[2,1] is at the right.
        let first = p.rect("snake.m[2][1]").unwrap();
        let last = p.rect("snake.m[2][3]").unwrap();
        assert!(last.x + last.w <= first.x, "{first:?} {last:?}");
    }

    #[test]
    fn orientation_changes_swap_dimensions() {
        let p = plan(
            &format!(
                "{CELL} pair = COMPONENT (IN a: boolean; OUT b: boolean) IS \
                 SIGNAL c: ARRAY[1..2] OF cell; \
                 {{ ORDER lefttoright c[1]; c[2] END }} \
                 BEGIN c[1].a := a; c[2].a := c[1].b; b := c[2].b END; \
                 t = COMPONENT (IN a: boolean; OUT b: boolean) IS \
                 SIGNAL p1, p2: pair; \
                 {{ ORDER lefttoright p1; rotate90 p2 END }} \
                 BEGIN p1.a := a; p2.a := p1.b; b := p2.b END;"
            ),
            "t",
            &[],
        );
        let p1 = p.rect("t.p1").unwrap();
        let p2 = p.rect("t.p2").unwrap();
        assert_eq!((p1.w, p1.h), (2, 1));
        assert_eq!((p2.w, p2.h), (1, 2), "rotated pair must be vertical");
        assert!(p.leaves_disjoint());
    }

    #[test]
    fn unmentioned_children_are_appended() {
        let p = plan(
            &format!(
                "{CELL} t = COMPONENT (IN a: boolean; OUT b: boolean) IS \
                 SIGNAL c1, c2: cell; \
                 BEGIN c1.a := a; c2.a := c1.b; b := c2.b END;"
            ),
            "t",
            &[],
        );
        // No layout block: both children stacked vertically.
        assert_eq!((p.width, p.height), (1, 2));
        assert!(p.leaves_disjoint());
    }

    #[test]
    fn boundary_pins_are_placed() {
        let p = plan(
            &format!(
                "{CELL} t = COMPONENT (IN a: boolean; OUT b: boolean) {{ BOTTOM a; b }} IS \
                 SIGNAL c: cell; \
                 BEGIN c.a := a; b := c.b END;"
            ),
            "t",
            &[],
        );
        let pins: Vec<&PlacedPin> = p.pins.iter().collect();
        assert_eq!(pins.len(), 2);
        assert!(pins.iter().all(|pin| pin.side == Side::Bottom));
        assert!(pins.iter().all(|pin| pin.y == p.height - 1));
    }

    #[test]
    fn diagonal_direction() {
        let p = plan(
            &format!(
                "{CELL} t = COMPONENT (IN a: boolean; OUT b: boolean) IS \
                 SIGNAL c: ARRAY[1..3] OF cell; \
                 {{ ORDER toplefttobottomright c[1]; c[2]; c[3] END }} \
                 BEGIN c[1].a := a; c[2].a := c[1].b; c[3].a := c[2].b; b := c[3].b END;"
            ),
            "t",
            &[],
        );
        assert_eq!((p.width, p.height), (3, 3));
        assert!(p.leaves_disjoint());
        let r2 = p.rect("t.c[2]").unwrap();
        assert_eq!((r2.x, r2.y), (1, 1));
    }

    #[test]
    fn map_side_under_rotation() {
        assert_eq!(map_side(Side::Bottom, Orientation::Rotate180), Side::Top);
        assert_eq!(map_side(Side::Left, Orientation::Flip90), Side::Right);
        assert_eq!(map_side(Side::Top, Orientation::Flip0), Side::Bottom);
        for s in [Side::Top, Side::Bottom, Side::Left, Side::Right] {
            assert_eq!(map_side(s, Orientation::Identity), s);
        }
    }

    #[test]
    fn htree_area_is_linear() {
        // Claim C2: the H-tree has linear layout area.
        let src = "TYPE htree(n) = \
             COMPONENT(IN in:boolean; out: multiplex) { BOTTOM in; out } IS \
             TYPE leaftype = COMPONENT(IN in:boolean; out: multiplex) IS BEGIN END; \
             SIGNAL s: ARRAY[1..4] OF htree(n DIV 4); \
             leaf: leaftype; \
             { ORDER lefttoright \
                 ORDER toptobottom s[1]; flip90 s[3] END; \
                 ORDER toptobottom s[2]; flip90 s[4] END \
               END } \
             BEGIN \
               WHEN n>1 THEN \
                 FOR i := 1 TO 4 DO s[i].in := in; out == s[i].out END \
               OTHERWISE \
                 leaf.in := in; out == leaf.out \
               END \
             END;";
        let p = parse_program(src).expect("parse");
        let mut areas = Vec::new();
        for n in [4i64, 16, 64] {
            let d = elaborate(&p, "htree", &[n]).expect("elaborate");
            let plan = floorplan(&d);
            assert!(plan.leaves_disjoint(), "n={n}");
            areas.push((n, plan.area()));
        }
        // Area must grow linearly: area(4n)/area(n) = 4 exactly for the
        // ideal H-tree built from unit leaves.
        for w in areas.windows(2) {
            let (n0, a0) = w[0];
            let (_, a1) = w[1];
            let ratio = a1 as f64 / a0 as f64;
            assert!(
                (3.0..5.0).contains(&ratio),
                "area must scale ~linearly: n={n0} a0={a0} a1={a1}"
            );
        }
    }
}

impl Floorplan {
    /// Renders the floorplan as a standalone SVG document: leaf cells
    /// colored by type (stable hash), composite outlines, and pin dots.
    pub fn render_svg(&self, cell: i64) -> String {
        use std::fmt::Write as _;
        let w = self.width * cell;
        let h = self.height * cell;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
             viewBox=\"0 0 {w} {h}\">"
        );
        let color = |ty: &str| -> String {
            let mut hash = 0u32;
            for b in ty.bytes() {
                hash = hash.wrapping_mul(31).wrapping_add(b as u32);
            }
            format!("hsl({}, 55%, 75%)", hash % 360)
        };
        for r in self.rects.iter().filter(|r| r.leaf) {
            let _ = writeln!(
                out,
                "  <rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{}\" \
                 stroke=\"#333\" stroke-width=\"1\"><title>{} ({})</title></rect>",
                r.x * cell,
                r.y * cell,
                r.w * cell,
                r.h * cell,
                color(&r.type_name),
                r.path,
                r.type_name
            );
        }
        for r in self.rects.iter().filter(|r| !r.leaf) {
            let _ = writeln!(
                out,
                "  <rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"none\" \
                 stroke=\"#999\" stroke-dasharray=\"3,2\"/>",
                r.x * cell,
                r.y * cell,
                r.w * cell,
                r.h * cell
            );
        }
        for p in &self.pins {
            let _ = writeln!(
                out,
                "  <circle cx=\"{}\" cy=\"{}\" r=\"2\" fill=\"#c00\"><title>{}.{}</title>\
                 </circle>",
                p.x * cell + cell / 2,
                p.y * cell + cell / 2,
                p.instance,
                p.name
            );
        }
        out.push_str("</svg>\n");
        out
    }
}

#[cfg(test)]
mod svg_tests {
    use super::*;
    use zeus_elab::elaborate;
    use zeus_syntax::parse_program;

    #[test]
    fn svg_export_is_well_formed() {
        let p = parse_program(
            "TYPE cell = COMPONENT (IN a: boolean; OUT b: boolean) IS BEGIN b := a END; \
             t = COMPONENT (IN a: boolean; OUT b: boolean) { BOTTOM a; b } IS \
             SIGNAL c: ARRAY[1..2] OF cell; \
             { ORDER lefttoright c[1]; c[2] END } \
             BEGIN c[1].a := a; c[2].a := c[1].b; b := c[2].b END;",
        )
        .unwrap();
        let d = elaborate(&p, "t", &[]).unwrap();
        let svg = floorplan(&d).render_svg(20);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<rect").count(), 3, "2 leaves + 1 outline");
        assert_eq!(svg.matches("<circle").count(), 2, "two boundary pins");
    }
}
