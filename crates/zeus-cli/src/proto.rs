//! The `zeusd` wire protocol: line-delimited JSON over a Unix socket.
//!
//! One connection carries one request and one response, each a single
//! JSON object on a single line (the value layer below forbids raw
//! newlines inside encoded output, so a reader can frame on `\n`). The
//! encoder/decoder here is deliberately tiny — strings, unsigned
//! integers, booleans, arrays, objects — because that is the whole
//! vocabulary of the protocol, and the repository's no-new-dependencies
//! rule precludes a real JSON crate.
//!
//! ## Request
//!
//! ```json
//! {"id": 7, "argv": ["fault", "@adders", "rippleCarry4", "--seed", "1"],
//!  "sources": {"adder.zeus": "TYPE ..."}, "deadline_ms": 30000,
//!  "chaos_panic": false}
//! ```
//!
//! `argv` is the exact `zeusc` command line (subcommand first, no
//! `--remote`); `sources` inlines every file the command line
//! references, keyed by the path string used in `argv`; `deadline_ms`
//! (optional) caps the request's wall clock on top of the server
//! default; `chaos_panic` asks a chaos-enabled server to panic inside
//! the worker (test hook, ignored otherwise).
//!
//! ## Response
//!
//! One of:
//!
//! ```json
//! {"status": "ok", "code": 0, "out": "...", "err": "...",
//!  "files": {"vecs.txt": "..."}, "cached": true}
//! {"status": "overloaded", "retry_after_ms": 50}
//! {"status": "shutting_down"}
//! {"status": "bad_request", "msg": "..."}
//! ```
//!
//! `ok` mirrors a local run exactly: `code` is the process exit code,
//! `out`/`err` the bytes for stdout/stderr, `files` any `--emit-vectors`
//! output to be written client-side. `overloaded` means the bounded
//! queue was full — retry after the hinted delay. `shutting_down` means
//! the daemon is draining and will not accept new work.

use std::fmt::Write as _;

/// A JSON value restricted to the protocol's needs (numbers are
/// unsigned 64-bit integers — nothing in the protocol is negative or
/// fractional).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer.
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes to a single line (no raw newlines: they are escaped
    /// inside strings, and the encoder emits no whitespace).
    pub fn encode(&self) -> String {
        let mut s = String::new();
        self.encode_into(&mut s);
        s
    }

    fn encode_into(&self, s: &mut String) {
        match self {
            Json::Null => s.push_str("null"),
            Json::Bool(true) => s.push_str("true"),
            Json::Bool(false) => s.push_str("false"),
            Json::Num(n) => {
                let _ = write!(s, "{n}");
            }
            Json::Str(v) => encode_str(v, s),
            Json::Arr(items) => {
                s.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    item.encode_into(s);
                }
                s.push(']');
            }
            Json::Obj(pairs) => {
                s.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    encode_str(k, s);
                    s.push(':');
                    v.encode_into(s);
                }
                s.push('}');
            }
        }
    }

    /// Parses a JSON value, rejecting trailing garbage.
    ///
    /// # Errors
    ///
    /// A short position-tagged message for malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }
}

fn encode_str(v: &str, s: &mut String) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                pairs.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while b.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        Some(c) => Err(format!("unexpected byte {c:#04x} at byte {pos}")),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid UTF-8".to_string());
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        // The protocol only ever emits \u00xx for
                        // control characters; reject surrogates rather
                        // than reassemble pairs.
                        let c = char::from_u32(hex)
                            .ok_or_else(|| format!("bad \\u scalar at byte {pos}"))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Wire types
// ---------------------------------------------------------------------

/// One `zeusc` invocation shipped to the daemon.
#[derive(Debug, Clone, Default)]
pub struct Request {
    /// Client-chosen identifier, echoed nowhere but useful in logs.
    pub id: u64,
    /// The `zeusc` command line, subcommand first.
    pub argv: Vec<String>,
    /// Inlined file contents keyed by the path strings in `argv`.
    pub sources: Vec<(String, String)>,
    /// Optional per-request deadline; the server clamps it to its own
    /// maximum.
    pub deadline_ms: Option<u64>,
    /// Chaos hook: ask the worker to panic mid-request (only honored by
    /// a server started with chaos enabled).
    pub chaos_panic: bool,
}

impl Request {
    /// Serializes to one protocol line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut obj = vec![
            ("id".to_string(), Json::Num(self.id)),
            (
                "argv".to_string(),
                Json::Arr(self.argv.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "sources".to_string(),
                Json::Obj(
                    self.sources
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
        ];
        if let Some(ms) = self.deadline_ms {
            obj.push(("deadline_ms".to_string(), Json::Num(ms)));
        }
        if self.chaos_panic {
            obj.push(("chaos_panic".to_string(), Json::Bool(true)));
        }
        Json::Obj(obj).encode()
    }

    /// Parses one protocol line.
    ///
    /// # Errors
    ///
    /// A message describing the malformed field.
    pub fn decode(line: &str) -> Result<Request, String> {
        let v = Json::parse(line)?;
        let argv = match v.get("argv") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|i| i.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()
                .ok_or("argv items must be strings")?,
            _ => return Err("missing argv".to_string()),
        };
        let mut sources = Vec::new();
        if let Some(Json::Obj(pairs)) = v.get("sources") {
            for (k, val) in pairs {
                sources.push((
                    k.clone(),
                    val.as_str()
                        .ok_or("source values must be strings")?
                        .to_string(),
                ));
            }
        }
        Ok(Request {
            id: v.get("id").and_then(Json::as_u64).unwrap_or(0),
            argv,
            sources,
            deadline_ms: v.get("deadline_ms").and_then(Json::as_u64),
            chaos_panic: v
                .get("chaos_panic")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        })
    }
}

/// The daemon's answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request ran (successfully or not): a faithful mirror of the
    /// equivalent local `zeusc` run.
    Ok {
        /// Process exit code of the equivalent local run.
        code: u8,
        /// stdout bytes.
        out: String,
        /// stderr bytes.
        err: String,
        /// Files to write client-side, as `(path, content)`.
        files: Vec<(String, String)>,
        /// True when the answer came from the daemon's artifact cache.
        cached: bool,
    },
    /// The bounded queue was full; retry after the hinted delay.
    Overloaded {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The daemon is draining and accepts no new work.
    ShuttingDown,
    /// The request line did not parse or named an unsupported feature.
    BadRequest {
        /// Human-readable reason.
        msg: String,
    },
}

impl Response {
    /// Serializes to one protocol line (no trailing newline).
    pub fn encode(&self) -> String {
        let obj = match self {
            Response::Ok {
                code,
                out,
                err,
                files,
                cached,
            } => vec![
                ("status".to_string(), Json::Str("ok".to_string())),
                ("code".to_string(), Json::Num(u64::from(*code))),
                ("out".to_string(), Json::Str(out.clone())),
                ("err".to_string(), Json::Str(err.clone())),
                (
                    "files".to_string(),
                    Json::Obj(
                        files
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                            .collect(),
                    ),
                ),
                ("cached".to_string(), Json::Bool(*cached)),
            ],
            Response::Overloaded { retry_after_ms } => vec![
                ("status".to_string(), Json::Str("overloaded".to_string())),
                ("retry_after_ms".to_string(), Json::Num(*retry_after_ms)),
            ],
            Response::ShuttingDown => {
                vec![("status".to_string(), Json::Str("shutting_down".to_string()))]
            }
            Response::BadRequest { msg } => vec![
                ("status".to_string(), Json::Str("bad_request".to_string())),
                ("msg".to_string(), Json::Str(msg.clone())),
            ],
        };
        Json::Obj(obj).encode()
    }

    /// Parses one protocol line.
    ///
    /// # Errors
    ///
    /// A message describing the malformed field.
    pub fn decode(line: &str) -> Result<Response, String> {
        let v = Json::parse(line)?;
        match v.get("status").and_then(Json::as_str) {
            Some("ok") => {
                let mut files = Vec::new();
                if let Some(Json::Obj(pairs)) = v.get("files") {
                    for (k, val) in pairs {
                        files.push((
                            k.clone(),
                            val.as_str()
                                .ok_or("file values must be strings")?
                                .to_string(),
                        ));
                    }
                }
                Ok(Response::Ok {
                    code: v
                        .get("code")
                        .and_then(Json::as_u64)
                        .and_then(|c| u8::try_from(c).ok())
                        .ok_or("missing code")?,
                    out: v
                        .get("out")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                    err: v
                        .get("err")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                    files,
                    cached: v.get("cached").and_then(Json::as_bool).unwrap_or(false),
                })
            }
            Some("overloaded") => Ok(Response::Overloaded {
                retry_after_ms: v.get("retry_after_ms").and_then(Json::as_u64).unwrap_or(50),
            }),
            Some("shutting_down") => Ok(Response::ShuttingDown),
            Some("bad_request") => Ok(Response::BadRequest {
                msg: v
                    .get("msg")
                    .and_then(Json::as_str)
                    .unwrap_or("bad request")
                    .to_string(),
            }),
            _ => Err("missing or unknown status".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_nesting_and_escapes() {
        let v = Json::Obj(vec![
            ("a\n\"b\\".to_string(), Json::Str("x\ty\u{1}z".to_string())),
            (
                "list".to_string(),
                Json::Arr(vec![Json::Num(0), Json::Null, Json::Bool(true)]),
            ),
            ("empty".to_string(), Json::Obj(vec![])),
        ]);
        let text = v.encode();
        assert!(!text.contains('\n'), "{text}");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{}x").is_err());
        assert!(Json::parse("\"abc").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn request_round_trips() {
        let req = Request {
            id: 9,
            argv: vec!["sim".to_string(), "a.zeus".to_string(), "t\"op".to_string()],
            sources: vec![("a.zeus".to_string(), "TYPE x\nline2".to_string())],
            deadline_ms: Some(1500),
            chaos_panic: true,
        };
        let back = Request::decode(&req.encode()).unwrap();
        assert_eq!(back.argv, req.argv);
        assert_eq!(back.sources, req.sources);
        assert_eq!(back.deadline_ms, Some(1500));
        assert!(back.chaos_panic);
    }

    #[test]
    fn responses_round_trip() {
        let cases = [
            Response::Ok {
                code: 130,
                out: "multi\nline".to_string(),
                err: String::new(),
                files: vec![("v.txt".to_string(), "zeus-vectors\n".to_string())],
                cached: true,
            },
            Response::Overloaded { retry_after_ms: 75 },
            Response::ShuttingDown,
            Response::BadRequest {
                msg: "no argv".to_string(),
            },
        ];
        for r in cases {
            assert_eq!(Response::decode(&r.encode()).unwrap(), r);
        }
    }
}
