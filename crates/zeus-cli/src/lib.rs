//! The `zeusc` driver as a library.
//!
//! Everything the `zeusc` binary does — argument parsing, command
//! dispatch, output formatting, exit-code classification — lives here,
//! executed against a [`Session`]: a capture buffer plus the hooks a
//! *hosted* invocation needs. The binary builds a plain local session
//! and prints the buffers; the `zeusd` daemon builds one request-scoped
//! session per client request with
//!
//! * **inlined sources** ([`Session::sources`]) — the daemon never
//!   reads client-relative paths, the client ships file contents;
//! * **a cancellation flag** ([`Session::cancel`]) — the daemon's
//!   shutdown flag doubles as every in-flight campaign's Ctrl-C, so a
//!   graceful drain flushes checkpoints exactly like an interactive
//!   interrupt;
//! * **a server-enforced deadline** ([`Session::deadline`]) — merged
//!   into [`Limits::deadline`] and `campaign_deadline`, so a stuck
//!   request burns its budget and returns `Z905` instead of wedging a
//!   worker;
//! * **a content-addressed cache** ([`Cache`]) — elaborated designs,
//!   collapsed fault lists and whole deterministic reports are reused
//!   across requests (see `docs/DAEMON.md` for the exact keying).
//!
//! The contract that keeps the remote path honest: for any request a
//! daemon accepts, the bytes in [`Session::out`]/[`Session::err`] and
//! the exit code are identical to a local `zeusc` run of the same
//! command line (given the same source text), caches hit or missed.

pub mod proto;
#[cfg(unix)]
pub mod remote;

/// Graceful Ctrl-C for fault campaigns and ATPG, without a libc
/// dependency: the first SIGINT raises [`sigint::INTERRUPTED`] (runs
/// drain in-flight work, flush checkpoints and report partially) and
/// restores the default disposition so a second Ctrl-C kills the
/// process immediately.
#[cfg(unix)]
pub mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set by the first SIGINT; polled between fault words / ATPG
    /// faults.
    pub static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIG_DFL: usize = 0;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        INTERRUPTED.store(true, Ordering::Relaxed);
        // Async-signal-safe: one atomic store and one signal(2) call.
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
    }

    /// Installs the handler (idempotent).
    pub fn install() {
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    }
}

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};
use zeus::{examples, Limits, StableHasher, Zeus};

/// Appends a line to a session buffer (stdout or stderr).
macro_rules! wln {
    ($buf:expr, $($t:tt)*) => {{
        let _ = writeln!($buf, $($t)*);
    }};
}

/// Appends without a newline.
macro_rules! w {
    ($buf:expr, $($t:tt)*) => {{
        let _ = write!($buf, $($t)*);
    }};
}

/// Why `zeusc` failed; each variant maps to a documented exit code.
pub enum Failure {
    /// Bad invocation or I/O problem → exit 1.
    Usage(String),
    /// The Zeus program has diagnostics (or a check found a difference)
    /// → exit 2.
    Diags(String),
    /// A resource limit (`Z9xx`) was hit → exit 3.
    Limit(String),
    /// A fault campaign was interrupted (Ctrl-C) after reporting
    /// partially → exit 130 (128 + SIGINT), the shell convention.
    Interrupted(String),
}

impl Failure {
    /// The message printed on stderr.
    pub fn message(&self) -> &str {
        match self {
            Failure::Usage(m) | Failure::Diags(m) | Failure::Limit(m) | Failure::Interrupted(m) => {
                m
            }
        }
    }

    /// The documented exit code.
    pub fn code(&self) -> u8 {
        match self {
            Failure::Usage(_) => 1,
            Failure::Diags(_) => 2,
            Failure::Limit(_) => 3,
            Failure::Interrupted(_) => 130,
        }
    }
}

impl From<String> for Failure {
    fn from(m: String) -> Failure {
        Failure::Usage(m)
    }
}

impl From<&str> for Failure {
    fn from(m: &str) -> Failure {
        Failure::Usage(m.to_string())
    }
}

/// Cache hooks a hosting daemon may provide. All methods are
/// best-effort: a `get` miss or a dropped `put` only costs time, never
/// correctness, so implementations are free to shed entries (or whole
/// writes) under I/O pressure.
pub trait Cache {
    /// An elaborated design previously stored under `key`.
    fn get_design(&self, key: u64) -> Option<Arc<zeus::Design>>;
    /// Stores an elaborated design under `key`.
    fn put_design(&self, key: u64, design: &zeus::Design);
    /// A text artifact (report, fault list, vector set) of the given
    /// kind previously stored under `key`.
    fn get_text(&self, kind: &str, key: u64) -> Option<String>;
    /// Stores a text artifact.
    fn put_text(&self, kind: &str, key: u64, text: &str);
}

/// One driver invocation's environment and captured output.
#[derive(Default)]
pub struct Session<'a> {
    /// Captured stdout bytes.
    pub out: String,
    /// Captured stderr bytes.
    pub err: String,
    /// When set, file arguments resolve from this map instead of the
    /// filesystem (daemon mode; `@name` examples still work). Reading a
    /// path absent from the map is a usage error rather than a
    /// filesystem access.
    pub sources: Option<&'a HashMap<String, String>>,
    /// Polled between fault words / ATPG faults; when it goes high the
    /// run drains, flushes checkpoints and reports partially.
    pub cancel: Option<&'static AtomicBool>,
    /// Server-enforced wall-clock deadline, merged into every limit
    /// budget the commands build.
    pub deadline: Option<Instant>,
    /// Content-addressed cache hooks (daemon mode).
    pub cache: Option<&'a dyn Cache>,
    /// When set, fault campaigns without an explicit `--checkpoint` are
    /// journaled here under their campaign digest (and the journal is
    /// removed on completion) so a drained daemon can resume them.
    pub journal_dir: Option<PathBuf>,
    /// Files the run wants written on the *client* side (daemon mode
    /// capture of `--emit-vectors`), as `(path, content)`.
    pub emitted: Vec<(String, String)>,
    /// How many cache lookups (design, fault list, whole artifact) hit
    /// during the run. The daemon reports `cached: true` when nonzero.
    pub cache_hits: usize,
}

impl<'a> Session<'a> {
    /// A plain local session (the binary's).
    pub fn local() -> Session<'a> {
        Session::default()
    }

    /// Wall clock remaining until the server deadline, if any.
    fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Tightens `limits.deadline` to the server deadline.
    fn merge_deadline(&self, limits: &mut Limits) {
        if let Some(rem) = self.remaining() {
            limits.deadline = Some(limits.deadline.map_or(rem, |u| u.min(rem)));
        }
    }

    /// Writes a file, or captures it for the client in daemon mode.
    fn write_file(&mut self, path: &str, content: &str) -> Result<(), Failure> {
        if self.sources.is_some() {
            self.emitted.push((path.to_string(), content.to_string()));
            Ok(())
        } else {
            std::fs::write(path, content)
                .map_err(|e| Failure::Usage(format!("cannot write {path}: {e}")))
        }
    }
}

/// Runs one `zeusc` command line against `sess`, capturing output.
/// Returns the exit code (0 on success); the failure message, if any,
/// is appended to `sess.err` exactly as the binary would print it.
pub fn run_to_completion(args: &[String], sess: &mut Session) -> u8 {
    match run(args, sess) {
        Ok(()) => 0,
        Err(f) => {
            wln!(sess.err, "{}", f.message());
            f.code()
        }
    }
}

/// Convenience: run locally with a fresh session, returning
/// `(exit code, stdout, stderr)`.
pub fn run_captured(args: &[String]) -> (u8, String, String) {
    let mut sess = Session::local();
    let code = run_to_completion(args, &mut sess);
    (code, sess.out, sess.err)
}

/// Classifies rendered diagnostics: resource-limit errors exit 3, all
/// other diagnostics exit 2.
fn diags_failure(e: &zeus::Diagnostics, rendered: String) -> Failure {
    if e.has_resource_limit() {
        Failure::Limit(rendered)
    } else {
        Failure::Diags(rendered)
    }
}

/// Same classification for a single diagnostic (simulator errors).
fn diag_failure(e: &zeus::Diagnostic) -> Failure {
    if e.is_resource_limit() {
        Failure::Limit(e.to_string())
    } else {
        Failure::Diags(e.to_string())
    }
}

// ---------------------------------------------------------------------
// Argument parsing
// ---------------------------------------------------------------------

/// The resource-limit flags, accepted by every compiling command.
const LIMIT_FLAGS: [(&str, bool); 4] = [
    ("--max-instances", true),
    ("--max-nets", true),
    ("--fuel", true),
    ("--timeout", true),
];

/// Per-command flag table: `(name, takes a value)`. Flags may appear in
/// any position after the subcommand; anything not in the table is a
/// usage error.
fn known_flags(cmd: &str) -> Vec<(&'static str, bool)> {
    let mut flags: Vec<(&'static str, bool)> = Vec::new();
    if !matches!(cmd, "examples" | "help") {
        flags.extend(LIMIT_FLAGS);
    }
    match cmd {
        "elab" | "layout" | "svg" | "graph" | "synth" => flags.push(("--top", true)),
        "sim" => flags.extend([
            ("--top", true),
            ("--cycles", true),
            ("--seed", true),
            ("--set", true),
            ("--packed", false),
            ("--opt", false),
        ]),
        "fault" => flags.extend([
            ("--top", true),
            ("--vectors", true),
            ("--seed", true),
            ("--engine", true),
            ("--bridges", false),
            ("--transients", true),
            ("--json", false),
            ("--packed", false),
            ("--jobs", true),
            ("--checkpoint", true),
            ("--resume", false),
            ("--campaign-timeout", true),
            ("--vectors-file", true),
            ("--opt", false),
        ]),
        "atpg" => flags.extend([
            ("--top", true),
            ("--seed", true),
            ("--coverage-target", true),
            ("--max-vectors", true),
            ("--backtrack-limit", true),
            ("--emit-vectors", true),
            ("--json", false),
            ("--bridges", false),
            ("--transients", true),
            ("--opt", false),
        ]),
        "opt" => flags.extend([
            ("--top", true),
            ("--report", false),
            ("--json", false),
            ("--seed", true),
            ("--emit", true),
        ]),
        "fuzz" => flags.extend([
            ("--seed", true),
            ("--budget", true),
            ("--jobs", true),
            ("--size", true),
            ("--cycles", true),
            ("--vectors", true),
            ("--corpus", true),
            ("--replay", true),
            ("--chaos", true),
            ("--shrink-evals", true),
        ]),
        _ => {}
    }
    flags
}

/// One-line synopsis per command, shown by `help` and on usage errors.
fn synopsis(cmd: &str) -> &'static str {
    match cmd {
        "check" => "zeusc check <file.zeus> [limit flags]",
        "print" => "zeusc print <file.zeus> [limit flags]",
        "elab" => "zeusc elab <file.zeus> <top> [type args...] [limit flags]",
        "sim" => {
            "zeusc sim <file.zeus> <top> [type args...] [--cycles N] [--seed S] \
             [--set port=value ...] [--packed] [--opt] [limit flags]"
        }
        "layout" => "zeusc layout <file.zeus> <top> [type args...] [limit flags]",
        "svg" => "zeusc svg <file.zeus> <top> [type args...] [limit flags]",
        "graph" => "zeusc graph <file.zeus> <top> [type args...] [limit flags]",
        "synth" => "zeusc synth <file.zeus> <top> [type args...] [limit flags]",
        "equiv" => "zeusc equiv <file.zeus> <topA> [args] --vs <topB> [args] [limit flags]",
        "fault" => {
            "zeusc fault <file.zeus> <top> [type args...] [--vectors N] [--seed S] \
             [--engine graph|switch] [--bridges] [--transients C] [--json] \
             [--packed] [--jobs N] [--checkpoint FILE] [--resume] \
             [--campaign-timeout MS] [--vectors-file FILE] [--opt] [limit flags]"
        }
        "atpg" => {
            "zeusc atpg <file.zeus> <top> [type args...] [--seed S] \
             [--coverage-target PCT] [--max-vectors N] [--backtrack-limit N] \
             [--emit-vectors FILE] [--json] [--bridges] [--transients C] \
             [--opt] [limit flags]"
        }
        "opt" => {
            "zeusc opt <file.zeus> <top> [type args...] [--report] [--json] \
             [--seed S] [--emit FILE] [limit flags]"
        }
        "fuzz" => {
            "zeusc fuzz [--seed S] [--budget N] [--jobs N] [--size CLASS] \
             [--cycles N] [--vectors N] [--corpus DIR] [--replay FILE ...] \
             [--chaos ORACLE] [--shrink-evals N] [limit flags]"
        }
        "examples" => "zeusc examples",
        "help" => "zeusc help [command]",
        _ => "",
    }
}

/// Longer per-command help for `zeusc help <cmd>` / `zeusc <cmd> --help`.
fn detail(cmd: &str) -> &'static str {
    match cmd {
        "check" => "Parses the program and runs the static checks of paper §6.",
        "print" => "Parses the program and pretty-prints it in canonical form.",
        "elab" => "Elaborates <top> and prints netlist statistics and ports.",
        "sim" => {
            "Simulates <top> for --cycles clock cycles (default 8) and prints the\n\
             final port values. --set forces an IN port each cycle; --seed seeds\n\
             the RANDOM source (default 0x2E051983). --packed runs the 64-lane\n\
             bit-parallel engine (same output; used for cross-checking).\n\
             --opt runs the equivalence-gated optimizer first and simulates\n\
             the optimized netlist (gate/depth deltas echoed on stderr)."
        }
        "layout" => "Computes the §7 floorplan and draws it as ASCII art.",
        "svg" => "Computes the §7 floorplan and emits it as SVG on stdout.",
        "graph" => "Emits the elaborated semantics graph as Graphviz dot.",
        "synth" => "Synthesizes to the CMOS switch network and prints its size.",
        "equiv" => {
            "Elaborates both tops and checks exhaustive input equivalence.\n\
             Exit 0 when equivalent, 2 with a counterexample when not."
        }
        "fault" => {
            "Enumerates stuck-at (--bridges, --transients add more) faults,\n\
             runs a differential campaign against the fault-free design, and\n\
             prints a coverage report (--json for machine-readable output).\n\
             --packed simulates 64 faults per pass with the bit-parallel\n\
             engine; --jobs N shards the fault list over N threads (implies\n\
             --packed). Reports are byte-identical to the scalar engine for\n\
             the same seed.\n\
             --checkpoint FILE journals completed work after every 64-fault\n\
             word; --resume skips the journaled words (the final report is\n\
             byte-identical to an uninterrupted run, and the seed is\n\
             recovered from the checkpoint when --seed is omitted).\n\
             --campaign-timeout MS bounds the whole campaign's wall clock.\n\
             Ctrl-C drains in-flight words, flushes the checkpoint and\n\
             reports partially (exit 130); a second Ctrl-C aborts.\n\
             --vectors-file FILE replays an explicit vector set written by\n\
             `zeusc atpg --emit-vectors` instead of a random stream; the\n\
             seed is recovered from the file when --seed is omitted, and\n\
             the file's content is folded into the checkpoint digest.\n\
             --opt runs the equivalence-gated optimizer first and campaigns\n\
             against the optimized netlist (a smaller collapsed fault\n\
             universe; checkpoints are incompatible with unoptimized runs\n\
             by digest)."
        }
        "atpg" => {
            "Generates a compact deterministic test-vector set for the stuck-at\n\
             fault universe (--bridges/--transients extend it): a packed random\n\
             harvest, then a PODEM structural search for the faults random\n\
             vectors missed (proving untestable faults redundant), then\n\
             reverse-order compaction. The emitted set is re-graded by a full\n\
             fault campaign; the reported coverage is exactly what `zeusc\n\
             fault --vectors-file` reproduces on the emitted file.\n\
             --coverage-target PCT stops generation early and makes the exit\n\
             status enforce the target (exit 2 below it); --max-vectors caps\n\
             the set (default 256); --backtrack-limit bounds each PODEM\n\
             search (default 256); --emit-vectors FILE writes the canonical\n\
             vector file. Same seed + design + limits reproduce the set and\n\
             report byte for byte (default seed 0x2E051983).\n\
             Ctrl-C stops after the current fault: the vectors found so far\n\
             are still graded, emitted with a PARTIAL marker, and the exit\n\
             status is 130.\n\
             --opt runs the equivalence-gated optimizer first and generates\n\
             vectors for the optimized netlist's fault universe."
        }
        "opt" => {
            "Runs the equivalence-gated netlist optimizer (constant folding\n\
             through the 4-valued domain, chain collapse, common-subexpression\n\
             elimination, buffer elimination, dead sweep) and prints the\n\
             gate-count, levelized-depth, net-count and collapsed-fault-\n\
             universe deltas. Every changed netlist is verified against the\n\
             original before anything is reported — exhaustively on small\n\
             input cones, by packed-random lockstep elsewhere — and the\n\
             command fails (exit 2) rather than emit an unverified result.\n\
             --report adds the per-pass rewrite counts; --json emits the\n\
             whole report machine-readably; --seed S seeds the lockstep\n\
             verifier (default 0x5EED2E05); --emit FILE writes the optimized\n\
             design in the `zeus-design` interchange format, loadable by\n\
             downstream tools and distinguishable from the original by\n\
             digest."
        }
        "fuzz" => {
            "Differential fuzzing: generates --budget seeded well-typed programs\n\
             (default 100) and cross-checks the engines against each other —\n\
             scalar vs packed simulation lane-for-lane, graph vs switch-level\n\
             on the combinational subset, fault-campaign resume-from-every-\n\
             prefix vs fresh run, ATPG replay-equality, and optimized-vs-\n\
             unoptimized netlist lockstep — with every panic caught and\n\
             classified. Failures are deduplicated by signature\n\
             (oracle + Z-code + divergence site), shrunk by delta debugging,\n\
             and written to --corpus (default fuzz-corpus/) as standalone\n\
             .zeus reproducers whose comment header replays the exact check;\n\
             reproducer paths are printed on stdout. Exit 0 on a clean\n\
             budget, 2 when failures were found.\n\
             Same --seed and --budget reproduce findings, reproducers and\n\
             report byte for byte; --jobs only changes wall-clock time\n\
             (default seed 0x2E051983).\n\
             --replay FILE re-runs a reproducer: exit 0 when the failure no\n\
             longer reproduces, 2 when it still does (repeatable).\n\
             --chaos ORACLE plants an artificial divergence in one oracle\n\
             (scalar-vs-packed, graph-vs-switch, resume-prefix, atpg-replay,\n\
             opt) to prove the plumbing detects, shrinks and persists it.\n\
             --size (0..=2, default 2) bounds program complexity; --cycles,\n\
             --vectors and --shrink-evals tune per-case effort."
        }
        "examples" => "Lists the bundled example programs (usable as @name).",
        "help" => "Prints the command list, or one command's flags.",
        _ => "",
    }
}

const COMMANDS: [&str; 15] = [
    "check", "print", "elab", "sim", "layout", "svg", "graph", "synth", "equiv", "opt", "fault",
    "atpg", "fuzz", "examples", "help",
];

fn general_usage() -> String {
    let mut s = String::from("usage: zeusc <command> [...]\n\ncommands:\n");
    for cmd in COMMANDS {
        s.push_str(&format!("  {}\n", synopsis(cmd)));
    }
    s.push_str(
        "\nlimit flags (any compiling command): --max-instances N, --max-nets N,\n\
         --fuel N, --timeout MS\n\
         global flags: --remote SOCKET routes sim/fault/atpg through a zeusd\n\
         daemon; --remote-or-local SOCKET falls back to local execution with\n\
         a warning when the daemon is unreachable\n\
         file arguments of the form @name load a bundled example\n\
         run `zeusc help <command>` for details",
    );
    s
}

fn command_usage(cmd: &str) -> String {
    format!("usage: {}\n\n{}", synopsis(cmd), detail(cmd))
}

/// A parsed command line: flag values by name plus bare positionals in
/// order. `--flag=value` and `--flag value` are equivalent; repeated
/// value flags accumulate.
struct Parsed {
    cmd: String,
    flags: HashMap<&'static str, Vec<String>>,
    positionals: Vec<String>,
}

impl Parsed {
    fn has(&self, flag: &str) -> bool {
        self.flags.contains_key(flag)
    }

    fn str_value(&self, flag: &str) -> Option<&str> {
        self.flags
            .get(flag)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    fn u64_value(&self, flag: &str) -> Result<Option<u64>, Failure> {
        match self.str_value(flag) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| Failure::Usage(format!("bad value '{v}' for {flag}"))),
        }
    }

    /// Like [`Parsed::u64_value`] but rejects zero: flags where 0 would
    /// silently mean "do nothing" (or underflow a later computation)
    /// are usage errors, not clamps.
    fn u64_nonzero(&self, flag: &str) -> Result<Option<u64>, Failure> {
        match self.u64_value(flag)? {
            Some(0) => Err(Failure::Usage(format!("{flag} must be at least 1"))),
            other => Ok(other),
        }
    }

    fn values(&self, flag: &str) -> &[String] {
        self.flags.get(flag).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The resource budget from the limit flags.
    fn limits(&self) -> Result<Limits, Failure> {
        let mut limits = Limits::default();
        if let Some(n) = self.u64_nonzero("--max-instances")? {
            limits.max_instances = n as usize;
        }
        if let Some(n) = self.u64_nonzero("--max-nets")? {
            limits.max_nets = n as usize;
        }
        if let Some(n) = self.u64_value("--fuel")? {
            limits.fuel = Some(n);
        }
        if let Some(ms) = self.u64_value("--timeout")? {
            limits.deadline = Some(Duration::from_millis(ms));
        }
        Ok(limits)
    }
}

/// Splits `args` (everything after the subcommand) into flags and
/// positionals, in any order. `--vs` is kept as a positional marker for
/// `equiv`; an unknown `--flag` is a usage error.
fn parse_command_line(cmd: &str, args: &[String]) -> Result<Parsed, Failure> {
    let known = known_flags(cmd);
    let mut flags: HashMap<&'static str, Vec<String>> = HashMap::new();
    let mut positionals = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if cmd == "equiv" && arg == "--vs" {
            positionals.push(arg.clone());
            continue;
        }
        if let Some(body) = arg.strip_prefix("--") {
            let (name, inline) = match body.split_once('=') {
                Some((n, v)) => (format!("--{n}"), Some(v.to_string())),
                None => (arg.clone(), None),
            };
            let Some(&(canonical, takes_value)) = known.iter().find(|(n, _)| *n == name) else {
                return Err(Failure::Usage(format!(
                    "unknown flag '{name}' for `zeusc {cmd}`\n\n{}",
                    command_usage(cmd)
                )));
            };
            let value = match (takes_value, inline) {
                (true, Some(v)) => v,
                (true, None) => iter
                    .next()
                    .cloned()
                    .ok_or_else(|| Failure::Usage(format!("{canonical} needs a value")))?,
                (false, Some(_)) => {
                    return Err(Failure::Usage(format!("{canonical} does not take a value")))
                }
                (false, None) => String::new(),
            };
            flags.entry(canonical).or_default().push(value);
        } else {
            positionals.push(arg.clone());
        }
    }
    Ok(Parsed {
        cmd: cmd.to_string(),
        flags,
        positionals,
    })
}

/// Numeric type parameters following the top component name.
fn top_args(rest: &[String]) -> Result<Vec<i64>, Failure> {
    rest.iter()
        .map(|a| {
            a.parse::<i64>()
                .map_err(|_| Failure::Usage(format!("'{a}' is not a numeric type parameter")))
        })
        .collect()
}

/// Resolves `<file> [<top>] [type args...]` from the positionals, with
/// the top component optionally supplied as `--top` instead.
fn file_top_args(p: &Parsed) -> Result<(&str, &str, Vec<i64>), Failure> {
    let mut pos = p.positionals.iter();
    let file = pos
        .next()
        .ok_or_else(|| Failure::Usage(command_usage(&p.cmd)))?;
    let (top, rest_at) = match p.str_value("--top") {
        Some(t) => (t, 1),
        None => (
            pos.next().map(String::as_str).ok_or_else(|| {
                Failure::Usage(format!(
                    "missing top component type\n\n{}",
                    command_usage(&p.cmd)
                ))
            })?,
            2,
        ),
    };
    let targs = top_args(&p.positionals[rest_at..])?;
    Ok((file, top, targs))
}

fn load_source(sess: &Session, path: &str) -> Result<String, Failure> {
    if let Some(name) = path.strip_prefix('@') {
        for (n, src, _) in examples::ALL {
            if *n == name {
                return Ok((*src).to_string());
            }
        }
        return Err(Failure::Usage(format!(
            "no bundled example '{name}' (try `zeusc examples`)"
        )));
    }
    if let Some(map) = sess.sources {
        // Daemon mode: the client inlines every file it references; the
        // server never touches client-relative paths.
        return map.get(path).cloned().ok_or_else(|| {
            Failure::Usage(format!("cannot read {path}: not inlined in the request"))
        });
    }
    std::fs::read_to_string(path).map_err(|e| Failure::Usage(format!("cannot read {path}: {e}")))
}

fn parse(src: &str) -> Result<Zeus, Failure> {
    Zeus::parse(src).map_err(|e| {
        let map = zeus::SourceMap::new(src);
        let rendered = e.render(&map);
        diags_failure(&e, rendered)
    })
}

// ---------------------------------------------------------------------
// Cache keys
// ---------------------------------------------------------------------

/// Key for the elaborated-design cache: source text, top, type args and
/// the user's limit flags (a design elaborated under tighter budgets is
/// a different cache object — a hit must never mask the `Z9xx` a cold
/// run would produce). The server deadline is deliberately excluded.
fn design_cache_key(p: &Parsed, src: &str, top: &str, targs: &[i64]) -> u64 {
    let mut h = StableHasher::new();
    h.write_str("design-v1");
    h.write_str(src);
    h.write_str(top);
    h.write_usize(targs.len());
    for t in targs {
        h.write_u64(*t as u64);
    }
    for (flag, _) in LIMIT_FLAGS {
        match p.str_value(flag) {
            Some(v) => {
                h.write_str(flag);
                h.write_str(v);
            }
            None => h.write_str("-"),
        }
    }
    h.finish()
}

/// Key for whole-report artifacts: the full command identity (source
/// text, every flag with its values in order, positionals) plus the
/// resolved seed and any replayed vector-file content. Two invocations
/// with equal keys are guaranteed byte-identical runs.
fn artifact_key(p: &Parsed, src: &str, seed: u64, vector_text: Option<&str>) -> u64 {
    let mut h = StableHasher::new();
    h.write_str("artifact-v1");
    h.write_str(&p.cmd);
    h.write_str(src);
    h.write_u64(seed);
    match vector_text {
        Some(t) => h.write_str(t),
        None => h.write_str("-"),
    }
    let mut names: Vec<&&str> = p.flags.keys().collect();
    names.sort();
    for name in names {
        h.write_str(name);
        let vals = &p.flags[*name];
        h.write_usize(vals.len());
        for v in vals {
            h.write_str(v);
        }
    }
    h.write_usize(p.positionals.len());
    for pos in &p.positionals {
        h.write_str(pos);
    }
    h.finish()
}

/// Serializes a completed run (stdout/stderr deltas + emitted files)
/// for the artifact cache.
fn artifact_encode(out: &str, err: &str, files: &[(String, String)]) -> String {
    let mut obj = vec![
        ("out".to_string(), proto::Json::Str(out.to_string())),
        ("err".to_string(), proto::Json::Str(err.to_string())),
    ];
    let f = files
        .iter()
        .map(|(p, c)| (p.clone(), proto::Json::Str(c.clone())))
        .collect();
    obj.push(("files".to_string(), proto::Json::Obj(f)));
    proto::Json::Obj(obj).encode()
}

/// Parses an artifact back into `(out, err, files)`.
#[allow(clippy::type_complexity)]
fn artifact_decode(text: &str) -> Option<(String, String, Vec<(String, String)>)> {
    let v = proto::Json::parse(text).ok()?;
    let out = v.get("out")?.as_str()?.to_string();
    let err = v.get("err")?.as_str()?.to_string();
    let mut files = Vec::new();
    if let Some(proto::Json::Obj(fs)) = v.get("files") {
        for (p, c) in fs {
            files.push((p.clone(), c.as_str()?.to_string()));
        }
    }
    Some((out, err, files))
}

/// Replays a cached artifact into the session: the buffers are rolled
/// back to the command's start offsets (dropping any live seed
/// announcements) and replaced with the recorded bytes, which include
/// the original run's announcements — byte-identical to a cold run.
fn artifact_replay(
    sess: &mut Session,
    marks: (usize, usize),
    artifact: &str,
) -> Option<Result<(), Failure>> {
    let (out, err, files) = artifact_decode(artifact)?;
    sess.cache_hits += 1;
    sess.out.truncate(marks.0);
    sess.err.truncate(marks.1);
    sess.out.push_str(&out);
    sess.err.push_str(&err);
    for (path, content) in files {
        if let Err(e) = sess.write_file(&path, &content) {
            return Some(Err(e));
        }
    }
    Some(Ok(()))
}

/// Stores the run since `marks` as an artifact.
fn artifact_store(sess: &Session, kind: &str, key: u64, marks: (usize, usize)) {
    if let Some(cache) = sess.cache {
        let text = artifact_encode(&sess.out[marks.0..], &sess.err[marks.1..], &sess.emitted);
        cache.put_text(kind, key, &text);
    }
}

// ---------------------------------------------------------------------
// Command dispatch
// ---------------------------------------------------------------------

/// Runs one command line against the session.
///
/// # Errors
///
/// The [`Failure`] carrying the message and exit code the binary
/// prints; see the crate docs for the exit-code contract.
pub fn run(args: &[String], sess: &mut Session) -> Result<(), Failure> {
    let cmd = args.first().ok_or_else(general_usage)?;

    // `--help`/`-h` anywhere prints usage and exits 0; `zeusc help
    // [cmd]` is the spelled-out form.
    if args.iter().any(|a| a == "--help" || a == "-h") {
        let topic = if COMMANDS.contains(&cmd.as_str()) {
            Some(cmd.as_str())
        } else {
            None
        };
        match topic {
            Some(c) if c != "help" => wln!(sess.out, "{}", command_usage(c)),
            _ => wln!(sess.out, "{}", general_usage()),
        }
        return Ok(());
    }
    if cmd == "help" {
        match args.get(1).map(String::as_str) {
            None => wln!(sess.out, "{}", general_usage()),
            Some(c) if COMMANDS.contains(&c) => wln!(sess.out, "{}", command_usage(c)),
            Some(other) => {
                return Err(Failure::Usage(format!(
                    "unknown command '{other}'\n\n{}",
                    general_usage()
                )))
            }
        }
        return Ok(());
    }
    if !COMMANDS.contains(&cmd.as_str()) {
        return Err(Failure::Usage(format!(
            "unknown command '{cmd}'\n\n{}",
            general_usage()
        )));
    }

    let p = parse_command_line(cmd, &args[1..])?;
    match cmd.as_str() {
        "examples" => {
            for (name, src, top) in examples::ALL {
                wln!(sess.out, "@{name:<14} top={top:<16} ({} bytes)", src.len());
            }
            Ok(())
        }
        "check" => {
            let file = p
                .positionals
                .first()
                .ok_or_else(|| Failure::Usage(command_usage("check")))?;
            parse(&load_source(sess, file)?)?;
            wln!(sess.out, "ok");
            Ok(())
        }
        "print" => {
            let file = p
                .positionals
                .first()
                .ok_or_else(|| Failure::Usage(command_usage("print")))?;
            let z = parse(&load_source(sess, file)?)?;
            w!(sess.out, "{}", z.to_canonical_text());
            Ok(())
        }
        "equiv" => cmd_equiv(&p, sess),
        "fuzz" => cmd_fuzz(&p, sess),
        _ => cmd_elaborating(&p, sess),
    }
}

fn cmd_equiv(p: &Parsed, sess: &mut Session) -> Result<(), Failure> {
    let split = p
        .positionals
        .iter()
        .position(|a| a == "--vs")
        .ok_or("missing --vs separator")?;
    let (left, right) = p.positionals.split_at(split);
    let right = &right[1..];
    let file = left
        .first()
        .ok_or_else(|| Failure::Usage(command_usage("equiv")))?;
    let top_a = left.get(1).ok_or("missing first top")?;
    let args_a = top_args(&left[2..])?;
    let top_b = right.first().ok_or("missing second top")?;
    let args_b = top_args(&right[1..])?;
    let src = load_source(sess, file)?;
    let z = parse(&src)?;
    let map = zeus::SourceMap::new(&src);
    let mut limits = p.limits()?;
    sess.merge_deadline(&mut limits);
    // The historical CLI cap (slightly above the library default).
    limits.max_input_bits = 22;
    let elab = |top: &str, targs: &[i64]| {
        z.elaborate_limited(top, targs, &limits)
            .map_err(|e| diags_failure(&e, e.render(&map)))
    };
    let da = elab(top_a, &args_a)?;
    let db = elab(top_b, &args_b)?;
    match zeus::check_equivalent_with(&da, &db, &limits).map_err(|e| diag_failure(&e))? {
        None => {
            wln!(sess.out, "equivalent (exhaustive)");
            Ok(())
        }
        Some(ce) => Err(Failure::Diags(format!("NOT equivalent: {ce}"))),
    }
}

/// The commands that elaborate a design first: `elab`, `sim`, `layout`,
/// `svg`, `graph`, `synth`, `fault`, `atpg`.
fn cmd_elaborating(p: &Parsed, sess: &mut Session) -> Result<(), Failure> {
    let (file, top, targs) = file_top_args(p)?;
    let top = top.to_string();
    let file = file.to_string();
    let src = load_source(sess, &file)?;
    let limits = p.limits()?;
    // The server wall-clock budget merges into the limits used for
    // elaboration and simulation, but NOT into the set handed to
    // `fault`: those are hashed into the campaign digest, which must
    // be stable across requests for the auto-journal resume to find
    // its file again (the budget reaches campaigns through the
    // campaign deadline instead).
    let mut budgeted = limits.clone();
    sess.merge_deadline(&mut budgeted);

    // Only the daemon-routed commands consult the design cache: the
    // cached form drops the instance/layout tree and spans, which
    // `elab`/`layout`/`svg` output depends on.
    let cache_design = matches!(p.cmd.as_str(), "sim" | "fault" | "atpg");
    let dkey = design_cache_key(p, &src, &top, &targs);
    let cached = if cache_design {
        sess.cache.and_then(|c| c.get_design(dkey))
    } else {
        None
    };
    let design = match cached {
        // Cached designs were stored warning-free, so skipping the
        // warning loop below keeps stderr byte-identical.
        Some(d) => {
            sess.cache_hits += 1;
            (*d).clone()
        }
        None => {
            let z = parse(&src)?;
            let design = z.elaborate_limited(&top, &targs, &budgeted).map_err(|e| {
                let map = zeus::SourceMap::new(&src);
                let rendered = e.render(&map);
                diags_failure(&e, rendered)
            })?;
            for w in &design.warnings {
                wln!(sess.err, "{}", w.render(&zeus::SourceMap::new(&src)));
            }
            if cache_design && design.warnings.is_empty() {
                if let Some(cache) = sess.cache {
                    cache.put_design(dkey, &design);
                }
            }
            design
        }
    };
    // `--opt` (sim/fault/atpg) threads the elaborated design through
    // the equivalence-gated optimizer before the engine sees it. The
    // optimized design has a distinct digest, so fault checkpoints and
    // campaign journals never splice across the optimization boundary.
    let design = if p.has("--opt") {
        optimized_design(sess, design, &budgeted)?
    } else {
        design
    };
    match p.cmd.as_str() {
        "elab" => {
            wln!(sess.out, "top       : {}", design.top_type);
            wln!(sess.out, "nets      : {}", design.netlist.net_count());
            wln!(sess.out, "nodes     : {}", design.netlist.node_count());
            wln!(
                sess.out,
                "registers : {}",
                design.netlist.registers().count()
            );
            wln!(sess.out, "instances : {}", design.instances.size());
            for p in &design.ports {
                wln!(
                    sess.out,
                    "port      : {} {} [{} bit]",
                    p.mode,
                    p.name,
                    p.width()
                );
            }
            Ok(())
        }
        "sim" => cmd_sim(p, sess, design, &budgeted, &src),
        "svg" => {
            let plan = zeus::floorplan(&design);
            w!(sess.out, "{}", plan.render_svg(16));
            Ok(())
        }
        "graph" => {
            w!(sess.out, "{}", zeus::to_dot(&design.netlist));
            Ok(())
        }
        "layout" => {
            let plan = zeus::floorplan(&design);
            wln!(
                sess.out,
                "bounding box: {} x {} (area {})",
                plan.width,
                plan.height,
                plan.area()
            );
            wln!(sess.out, "leaf cells  : {}", plan.leaf_count());
            let art = plan.render_ascii();
            if !art.is_empty() {
                wln!(sess.out, "{art}");
            }
            Ok(())
        }
        "opt" => cmd_opt(p, sess, design, &budgeted),
        "fault" => cmd_fault(p, sess, design, &limits, &src, dkey),
        "atpg" => cmd_atpg(p, sess, design, &budgeted, &src, dkey),
        _ => {
            let sw = zeus::SwitchSim::with_limits(&design, &budgeted);
            wln!(sess.out, "transistors : {}", sw.transistor_count());
            wln!(sess.out, "nodes       : {}", sw.node_count());
            Ok(())
        }
    }
}

/// Runs the optimizer for a `--opt` engine command, echoing the deltas
/// on stderr so stdout stays the engine's report (and the whole-report
/// artifact cache, whose marks are taken after this line, replays
/// byte-identically).
fn optimized_design(
    sess: &mut Session,
    design: zeus::Design,
    limits: &Limits,
) -> Result<zeus::Design, Failure> {
    let cfg = zeus::OptConfig {
        limits: limits.clone(),
        ..zeus::OptConfig::default()
    };
    let out = zeus::optimize(&design, &cfg).map_err(|e| diag_failure(&e))?;
    let r = &out.report;
    if r.skipped_random {
        wln!(
            sess.err,
            "opt       : skipped (design uses RANDOM); netlist unchanged"
        );
    } else {
        wln!(
            sess.err,
            "opt       : gates {} -> {}, depth {} -> {}, verified {}",
            r.before.gates,
            r.after.gates,
            r.before.depth,
            r.after.depth,
            r.verification
        );
    }
    Ok(out.design)
}

/// One `label : before -> after (-pct%)` delta line.
fn delta_line(buf: &mut String, label: &str, before: usize, after: usize) {
    if before == after {
        wln!(buf, "{label:<10}: {before} (unchanged)");
    } else {
        let pct = 100.0 * (after as f64 - before as f64) / before as f64;
        wln!(buf, "{label:<10}: {before} -> {after} ({pct:+.1}%)");
    }
}

fn cmd_opt(
    p: &Parsed,
    sess: &mut Session,
    design: zeus::Design,
    limits: &Limits,
) -> Result<(), Failure> {
    let cfg = zeus::OptConfig {
        seed: match p.u64_value("--seed")? {
            Some(s) => s,
            None => zeus::OptConfig::default().seed,
        },
        limits: limits.clone(),
        ..zeus::OptConfig::default()
    };
    // The gate: a non-equivalent (or cyclic) result is a hard error
    // carrying the counterexample — nothing below this line runs on an
    // unverified netlist.
    let out = zeus::optimize(&design, &cfg).map_err(|e| diag_failure(&e))?;
    let r = &out.report;
    let fopts = zeus::FaultListOptions::default();
    let faults_before = zeus::enumerate_faults(&design, &fopts).faults.len();
    let faults_after = zeus::enumerate_faults(&out.design, &fopts).faults.len();
    if p.has("--json") {
        let m = |m: &zeus::Metrics| {
            proto::Json::Obj(vec![
                ("gates".to_string(), proto::Json::Num(m.gates as u64)),
                ("depth".to_string(), proto::Json::Num(m.depth as u64)),
                ("nets".to_string(), proto::Json::Num(m.nets as u64)),
            ])
        };
        let passes = r
            .passes
            .iter()
            .map(|s| {
                proto::Json::Obj(vec![
                    ("name".to_string(), proto::Json::Str(s.name.to_string())),
                    ("rewrites".to_string(), proto::Json::Num(s.rewrites as u64)),
                ])
            })
            .collect();
        let obj = proto::Json::Obj(vec![
            ("top".to_string(), proto::Json::Str(design.top_type.clone())),
            ("before".to_string(), m(&r.before)),
            ("after".to_string(), m(&r.after)),
            (
                "faults_before".to_string(),
                proto::Json::Num(faults_before as u64),
            ),
            (
                "faults_after".to_string(),
                proto::Json::Num(faults_after as u64),
            ),
            (
                "rewrites".to_string(),
                proto::Json::Num(r.total_rewrites() as u64),
            ),
            (
                "iterations".to_string(),
                proto::Json::Num(r.iterations as u64),
            ),
            (
                "skipped_random".to_string(),
                proto::Json::Bool(r.skipped_random),
            ),
            (
                "verified".to_string(),
                proto::Json::Str(r.verification.to_string()),
            ),
            ("passes".to_string(), proto::Json::Arr(passes)),
        ]);
        wln!(sess.out, "{}", obj.encode());
    } else {
        wln!(sess.out, "top       : {}", design.top_type);
        delta_line(&mut sess.out, "gates", r.before.gates, r.after.gates);
        delta_line(&mut sess.out, "depth", r.before.depth, r.after.depth);
        delta_line(&mut sess.out, "nets", r.before.nets, r.after.nets);
        delta_line(&mut sess.out, "faults", faults_before, faults_after);
        wln!(
            sess.out,
            "rewrites  : {} in {} iteration(s)",
            r.total_rewrites(),
            r.iterations
        );
        if r.skipped_random {
            wln!(
                sess.out,
                "note      : design uses RANDOM; optimization skipped"
            );
        }
        wln!(sess.out, "verified  : {}", r.verification);
        if p.has("--report") {
            for s in &r.passes {
                wln!(
                    sess.out,
                    "pass      : {:<16} {} rewrites",
                    s.name,
                    s.rewrites
                );
            }
        }
    }
    if let Some(path) = p.str_value("--emit") {
        let path = path.to_string();
        sess.write_file(&path, &zeus::design_to_text(&out.design))?;
    }
    Ok(())
}

/// The collapsed fault list, through the cache when available.
fn fault_list(
    sess: &mut Session,
    design: &zeus::Design,
    opts: &zeus::FaultListOptions,
    dkey: u64,
) -> zeus::FaultList {
    let key = {
        let mut h = zeus::StableHasher::new();
        h.write_str("faultlist-v1");
        h.write_u64(dkey);
        h.write_u64(opts.bridges as u64);
        h.write_opt_u64(opts.transients);
        h.finish()
    };
    if let Some(cache) = sess.cache {
        if let Some(text) = cache.get_text("faults", key) {
            if let Ok(list) = zeus::FaultList::parse(&text) {
                sess.cache_hits += 1;
                return list;
            }
        }
        let list = zeus::enumerate_faults(design, opts);
        cache.put_text("faults", key, &list.to_text());
        return list;
    }
    zeus::enumerate_faults(design, opts)
}

fn cmd_sim(
    p: &Parsed,
    sess: &mut Session,
    design: zeus::Design,
    limits: &Limits,
    src: &str,
) -> Result<(), Failure> {
    let marks = (sess.out.len(), sess.err.len());
    let cycles = p.u64_nonzero("--cycles")?.unwrap_or(8);
    let seed = p.u64_value("--seed")?;
    let akey = artifact_key(p, src, seed.unwrap_or(0x2E05_1983), None);
    if let Some(hit) = sess.cache.and_then(|c| c.get_text("sim", akey)) {
        if let Some(r) = artifact_replay(sess, marks, &hit) {
            return r;
        }
    }
    if seed.is_none() {
        // The fixed default seed keeps runs reproducible; say which one
        // was used (satisfying scripted reproduction) without polluting
        // stdout.
        wln!(
            sess.err,
            "seed      : {} (default; pass --seed to vary)",
            0x2E05_1983u64
        );
    }
    let forcings: Vec<(String, u64)> = p
        .values("--set")
        .iter()
        .map(|kv| {
            let (port, val) = kv
                .split_once('=')
                .ok_or_else(|| Failure::Usage(format!("bad --set '{kv}', want port=value")))?;
            let val: u64 = val
                .parse()
                .map_err(|_| Failure::Usage(format!("bad value in --set '{kv}'")))?;
            Ok((port.to_string(), val))
        })
        .collect::<Result<_, Failure>>()?;

    let ports = design.ports.clone();
    let mut violations = 0u64;
    let mut values: Vec<(String, String)> = Vec::new();
    if p.has("--packed") {
        // The 64-lane engine with every lane driven identically: output
        // must be byte-identical to the scalar run below.
        let mut sim = zeus::PackedSim::with_limits(design, limits).map_err(|e| diag_failure(&e))?;
        if let Some(s) = seed {
            sim.reseed(s);
        }
        for (port, val) in &forcings {
            sim.set_port_num(port, *val)
                .map_err(|e| Failure::Usage(e.to_string()))?;
        }
        for _ in 0..cycles {
            let r = sim.try_step().map_err(|e| diag_failure(&e))?;
            violations += r.conflicts.iter().filter(|c| c.lanes & 1 == 1).count() as u64;
        }
        for port in &ports {
            let vals: String = sim
                .port_lane(&port.name, 0)
                .iter()
                .map(|v| v.to_string())
                .collect();
            values.push((port.name.clone(), vals));
        }
    } else {
        let mut sim = zeus::Simulator::with_limits(design, limits).map_err(|e| diag_failure(&e))?;
        if let Some(s) = seed {
            sim.reseed(s);
        }
        for (port, val) in &forcings {
            sim.set_port_num(port, *val)
                .map_err(|e| Failure::Usage(e.to_string()))?;
        }
        for _ in 0..cycles {
            let r = sim.try_step().map_err(|e| diag_failure(&e))?;
            violations += r.conflicts.len() as u64;
        }
        for port in &ports {
            let vals: String = sim.port(&port.name).iter().map(|v| v.to_string()).collect();
            values.push((port.name.clone(), vals));
        }
    }
    wln!(sess.out, "cycles    : {cycles}");
    wln!(sess.out, "conflicts : {violations}");
    for (name, vals) in values {
        wln!(sess.out, "{name:<10}: {vals}");
    }
    // A completed sim is a golden port trace: deterministic for its key
    // (the default seed is fixed), so cache the whole report.
    artifact_store(sess, "sim", akey, marks);
    Ok(())
}

fn cmd_fault(
    p: &Parsed,
    sess: &mut Session,
    design: zeus::Design,
    limits: &Limits,
    src: &str,
    dkey: u64,
) -> Result<(), Failure> {
    let marks = (sess.out.len(), sess.err.len());
    let vectors = match p.u64_nonzero("--vectors")? {
        Some(n) if n > u32::MAX as u64 => {
            return Err(Failure::Usage(format!(
                "--vectors {n} is too large (max {})",
                u32::MAX
            )))
        }
        Some(n) => n as u32,
        None => 64,
    };
    let vector_text = match p.str_value("--vectors-file") {
        None => None,
        Some(path) => {
            if p.has("--vectors") {
                return Err(Failure::Usage(
                    "--vectors-file supplies the vectors; don't also pass --vectors".to_string(),
                ));
            }
            Some(load_source(sess, path)?)
        }
    };
    let vector_set = match &vector_text {
        None => None,
        Some(text) => Some(zeus::VectorSet::parse(text).map_err(|e| diag_failure(&e))?),
    };
    let checkpoint = match (p.str_value("--checkpoint"), p.has("--resume")) {
        (None, true) => {
            return Err(Failure::Usage(
                "--resume needs --checkpoint FILE to resume from".to_string(),
            ))
        }
        (None, false) => None,
        (Some(path), resume) => {
            if sess.sources.is_some() {
                return Err(Failure::Usage(
                    "--checkpoint/--resume are local-only; remote campaigns are journaled \
                     server-side and resume automatically"
                        .to_string(),
                ));
            }
            Some(zeus::CheckpointOptions {
                path: path.into(),
                resume,
            })
        }
    };
    let mut seed_deterministic = true;
    let seed = match (p.u64_value("--seed")?, &vector_set) {
        (Some(s), _) => s,
        (None, Some(set)) => {
            // An explicit vector file carries the seed it was generated
            // with in its header; reuse it so a bare `--vectors-file`
            // replay reproduces the ATPG grade exactly.
            wln!(
                sess.err,
                "seed      : {} (recovered from vector file)",
                set.seed
            );
            set.seed
        }
        (None, None) => {
            // When resuming, the original seed lives in the checkpoint
            // header: recover it so `--resume` never needs `--seed`
            // repeated (a resumed campaign with a different seed would
            // be rejected by the digest check anyway).
            let recovered = checkpoint
                .as_ref()
                .filter(|c| c.resume && c.path.exists())
                .and_then(|c| zeus::read_header(&c.path).ok())
                .map(|h| h.seed);
            match recovered {
                Some(s) => {
                    wln!(sess.err, "seed      : {s} (recovered from checkpoint)");
                    s
                }
                None => {
                    seed_deterministic = false;
                    let s = std::time::SystemTime::now()
                        .duration_since(std::time::UNIX_EPOCH)
                        .map(|d| d.as_nanos() as u64)
                        .unwrap_or(0);
                    wln!(sess.err, "seed      : {s} (pass --seed {s} to reproduce)");
                    s
                }
            }
        }
    };
    let engine = match p.str_value("--engine") {
        None | Some("graph") => zeus::Engine::Graph,
        Some("switch") => zeus::Engine::Switch,
        Some(e) => {
            return Err(Failure::Usage(format!(
                "unknown engine '{e}' (expected graph or switch)"
            )))
        }
    };
    // --jobs implies the packed engine (sharding is a packed feature).
    let packed = p.has("--packed") || p.has("--jobs");
    if packed && engine == zeus::Engine::Switch {
        return Err(Failure::Usage(
            "--packed/--jobs support the graph engine only".to_string(),
        ));
    }
    let jobs = match p.u64_value("--jobs")? {
        Some(0) => return Err(Failure::Usage("--jobs must be at least 1".to_string())),
        Some(n) => n as usize,
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    };

    // Whole-report artifact cache: only for runs whose bytes are a pure
    // function of the command line (deterministic seed, no local
    // checkpoint files involved).
    let cacheable = checkpoint.is_none() && seed_deterministic;
    let akey = artifact_key(p, src, seed, vector_text.as_deref());
    if cacheable {
        if let Some(hit) = sess.cache.and_then(|c| c.get_text("fault", akey)) {
            if let Some(r) = artifact_replay(sess, marks, &hit) {
                return r;
            }
        }
    }

    let opts = zeus::FaultListOptions {
        bridges: p.has("--bridges"),
        transients: p.u64_value("--transients")?,
        ..zeus::FaultListOptions::default()
    };
    let list = fault_list(sess, &design, &opts, dkey);
    let mut cfg = match vector_set {
        Some(set) => {
            let mut c = zeus::CampaignConfig::replay(engine, set);
            c.seed = seed;
            c
        }
        None => zeus::CampaignConfig::new(engine, vectors, seed),
    };
    cfg.limits = limits.clone();
    if let Some(ms) = p.u64_value("--campaign-timeout")? {
        cfg.campaign_deadline = Some(Duration::from_millis(ms));
    }
    if let Some(rem) = sess.remaining() {
        cfg.campaign_deadline = Some(cfg.campaign_deadline.map_or(rem, |u| u.min(rem)));
    }
    cfg.cancel = sess.cancel;

    // Daemon-side auto-journal: campaigns without a user checkpoint are
    // journaled under their campaign digest so a drained daemon resumes
    // them; a completed campaign deletes its journal (the artifact
    // cache now holds the result).
    let auto_journal = match (&checkpoint, &sess.journal_dir) {
        (None, Some(dir)) => {
            let digest = zeus::campaign_digest(&design, &list, &cfg);
            Some(zeus::CheckpointOptions {
                path: dir.join(format!("{digest:016x}.journal")),
                resume: true,
            })
        }
        _ => None,
    };
    let journal = checkpoint.as_ref().or(auto_journal.as_ref());

    let report = if packed {
        zeus::run_campaign_packed_with(&design, &list, &cfg, jobs, journal)
            .map_err(|e| diag_failure(&e))?
    } else {
        zeus::run_campaign_with(&design, &list, &cfg, journal).map_err(|e| diag_failure(&e))?
    };
    if p.has("--json") {
        wln!(sess.out, "{}", report.to_json());
    } else {
        w!(sess.out, "{}", report.to_text());
    }
    match report.partial {
        None => {
            if let Some(j) = &auto_journal {
                let _ = std::fs::remove_file(&j.path);
            }
            if cacheable {
                artifact_store(sess, "fault", akey, marks);
            }
            Ok(())
        }
        Some(zeus::PartialReason::Interrupted) => Err(Failure::Interrupted(
            "fault campaign interrupted; partial results reported above".to_string(),
        )),
        Some(zeus::PartialReason::DeadlineExceeded) => Err(Failure::Limit(
            "fault campaign stopped at --campaign-timeout; partial results reported above"
                .to_string(),
        )),
    }
}

fn cmd_atpg(
    p: &Parsed,
    sess: &mut Session,
    design: zeus::Design,
    limits: &Limits,
    src: &str,
    dkey: u64,
) -> Result<(), Failure> {
    let marks = (sess.out.len(), sess.err.len());
    let mut cfg = zeus::AtpgConfig {
        limits: limits.clone(),
        ..zeus::AtpgConfig::default()
    };
    sess.merge_deadline(&mut cfg.limits);
    cfg.seed = match p.u64_value("--seed")? {
        Some(s) => s,
        None => {
            // Unlike `fault`, the default is fixed, not time-based:
            // reproducible vector sets are the whole point of ATPG.
            wln!(
                sess.err,
                "seed      : {} (default; pass --seed to vary)",
                0x2E05_1983u64
            );
            0x2E05_1983
        }
    };
    let akey = artifact_key(p, src, cfg.seed, None);
    if let Some(hit) = sess.cache.and_then(|c| c.get_text("atpg", akey)) {
        if let Some(r) = artifact_replay(sess, marks, &hit) {
            return r;
        }
    }
    let target = match p.str_value("--coverage-target") {
        None => None,
        Some(v) => {
            let pct: f64 = v
                .parse()
                .map_err(|_| Failure::Usage(format!("bad value '{v}' for --coverage-target")))?;
            if !(0.0..=100.0).contains(&pct) {
                return Err(Failure::Usage(
                    "--coverage-target must be a percentage between 0 and 100".to_string(),
                ));
            }
            Some(pct / 100.0)
        }
    };
    if let Some(t) = target {
        cfg.coverage_target = t;
    }
    if let Some(n) = p.u64_value("--max-vectors")? {
        cfg.max_vectors = n as usize;
    }
    if let Some(n) = p.u64_value("--backtrack-limit")? {
        cfg.backtrack_limit = n;
    }
    cfg.fault_opts = zeus::FaultListOptions {
        bridges: p.has("--bridges"),
        transients: p.u64_value("--transients")?,
        ..zeus::FaultListOptions::default()
    };
    cfg.cancel = sess.cancel;
    let report = zeus::run_atpg(&design, &cfg).map_err(|e| diag_failure(&e))?;
    let _ = dkey;
    if let Some(path) = p.str_value("--emit-vectors") {
        let mut text = report.vectors.to_text();
        if report.partial {
            // Parsers drop comment lines, so a partial set still
            // replays; the marker is for humans and scripts that grep.
            text.push_str("# PARTIAL: generation was interrupted; this set is incomplete\n");
        }
        let path = path.to_string();
        sess.write_file(&path, &text)?;
    }
    if p.has("--json") {
        wln!(sess.out, "{}", report.to_json());
    } else {
        w!(sess.out, "{}", report.to_text());
    }
    if report.partial {
        return Err(Failure::Interrupted(
            "atpg interrupted; partial vector set reported above".to_string(),
        ));
    }
    // An explicit target is a pass/fail contract, not just a stopping
    // heuristic: fall below it and the exit status says so.
    match target {
        Some(t) if report.coverage() + 1e-12 < t => Err(Failure::Diags(format!(
            "coverage {:.2}% is below the target {:.2}%",
            report.coverage() * 100.0,
            t * 100.0
        ))),
        _ => {
            artifact_store(sess, "atpg", akey, marks);
            Ok(())
        }
    }
}

/// Scratch directory for fuzz checkpoint journals, keyed by seed so
/// concurrent campaigns with different seeds never collide.
fn fuzz_scratch(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("zeusc-fuzz-{seed:016x}"))
}

fn cmd_fuzz(p: &Parsed, sess: &mut Session) -> Result<(), Failure> {
    if !p.positionals.is_empty() {
        return Err(Failure::Usage(format!(
            "`zeusc fuzz` takes no positional arguments\n\n{}",
            command_usage("fuzz")
        )));
    }

    // --replay mode: re-run reproducer files instead of a fresh budget.
    let replays = p.values("--replay");
    if !replays.is_empty() {
        let mut reproduced = 0usize;
        for path in replays {
            let text = load_source(sess, path)?;
            let seed_hint = 0x2E05_1983u64;
            let outcome = zeus_fuzz::replay(&text, fuzz_scratch(seed_hint))
                .map_err(|e| Failure::Usage(format!("{path}: {e}")))?;
            let verdict = if outcome.reproduced {
                reproduced += 1;
                "REPRODUCED"
            } else {
                "clean"
            };
            wln!(
                sess.out,
                "{verdict:<10} {} {path}",
                outcome.header.signature()
            );
        }
        if reproduced > 0 {
            return Err(Failure::Diags(format!(
                "fuzz: {reproduced} reproducer(s) still fail"
            )));
        }
        return Ok(());
    }

    let seed = match p.u64_value("--seed")? {
        Some(s) => s,
        None => {
            // Fixed default, like sim/atpg: reproducible campaigns are
            // the point, and the echo satisfies scripted reproduction.
            wln!(
                sess.err,
                "seed      : {} (default; pass --seed to vary)",
                0x2E05_1983u64
            );
            0x2E05_1983
        }
    };
    let mut cfg = zeus_fuzz::FuzzConfig::new(
        seed,
        p.u64_nonzero("--budget")?.unwrap_or(100),
        fuzz_scratch(seed),
    );
    cfg.jobs = match p.u64_value("--jobs")? {
        Some(0) => return Err(Failure::Usage("--jobs must be at least 1".to_string())),
        Some(n) => n as usize,
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    if let Some(n) = p.u64_value("--size")? {
        cfg.size = n as u32;
    }
    if let Some(n) = p.u64_nonzero("--cycles")? {
        cfg.cycles = n as u32;
    }
    if let Some(n) = p.u64_nonzero("--vectors")? {
        cfg.campaign_vectors = n as u32;
    }
    if let Some(n) = p.u64_nonzero("--shrink-evals")? {
        cfg.max_shrink_evals = n as u32;
    }
    if let Some(name) = p.str_value("--chaos") {
        let oracle = zeus_fuzz::Oracle::from_name(name).ok_or_else(|| {
            Failure::Usage(format!(
                "unknown --chaos oracle '{name}' (expected one of: scalar-vs-packed, \
                 graph-vs-switch, resume-prefix, atpg-replay, opt)"
            ))
        })?;
        cfg.chaos = Some(oracle);
    }
    let mut limits = p.limits()?;
    sess.merge_deadline(&mut limits);
    cfg.limits = limits;

    let report = zeus_fuzz::run_fuzz(&cfg);
    w!(sess.out, "{}", report.render());

    if report.failures.is_empty() {
        return Ok(());
    }
    // Persist reproducers and print their paths on stdout — the exit-2
    // contract scripts rely on.
    let corpus = p.str_value("--corpus").unwrap_or("fuzz-corpus");
    if sess.sources.is_none() {
        std::fs::create_dir_all(corpus)
            .map_err(|e| Failure::Usage(format!("cannot create {corpus}: {e}")))?;
    }
    wln!(sess.out, "");
    for f in &report.failures {
        let path = format!("{corpus}/{}", f.file_name);
        sess.write_file(&path, &f.contents)?;
        wln!(sess.out, "reproducer: {path}");
    }
    Err(Failure::Diags(format!(
        "fuzz: {} unique failure(s) found; reproducers written to {corpus}/",
        report.failures.len()
    )))
}
