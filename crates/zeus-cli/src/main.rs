//! `zeusc` — command-line driver for the Zeus HDL toolchain.
//!
//! ```text
//! zeusc check <file.zeus>                      parse + static checks
//! zeusc print <file.zeus>                      canonical pretty-print
//! zeusc elab  <file.zeus> <top> [args...]      elaborate, print stats
//! zeusc sim   <file.zeus> <top> [args...] [--cycles N] [--set port=value ...]
//!             [--seed S] [--packed]            simulate N cycles
//! zeusc layout <file.zeus> <top> [args...]     floorplan + ASCII art
//! zeusc svg   <file.zeus> <top> [args...]      floorplan as SVG (stdout)
//! zeusc graph <file.zeus> <top> [args...]      semantics graph as Graphviz dot
//! zeusc synth <file.zeus> <top> [args...]      CMOS transistor budget
//! zeusc equiv <file.zeus> <topA> [args] --vs <topB> [args]
//!                                              exhaustive equivalence check
//! zeusc fault <file.zeus> <top> [args...] [--vectors N] [--seed S]
//!             [--engine graph|switch] [--bridges] [--transients C] [--json]
//!             [--packed] [--jobs N] [--checkpoint FILE] [--resume]
//!             [--campaign-timeout MS] [--vectors-file FILE]
//!                                              differential fault campaign
//! zeusc atpg  <file.zeus> <top> [args...] [--seed S] [--coverage-target PCT]
//!             [--max-vectors N] [--emit-vectors FILE] [--json]
//!             [--bridges] [--transients C]     generate a compact test set
//! zeusc examples                               list the bundled examples
//! zeusc help [command]                         this text, or one command's
//! ```
//!
//! Flags may appear anywhere after the subcommand (`zeusc sim a.zeus
//! --cycles 4 top` and `zeusc sim a.zeus top --cycles 4` are the same
//! invocation); unknown flags are usage errors. Commands taking a top
//! component also accept it as `--top <name>`. `sim` and `fault` print
//! the random seed actually used on stderr when `--seed` is omitted.
//! `fault --packed` runs the bit-parallel campaign engine (64 faults per
//! simulation pass); `--jobs N` shards it over N worker threads and
//! implies `--packed`. Reports are byte-identical to the scalar engine.
//!
//! Resource-limit flags accepted by every compiling command:
//!
//! ```text
//! --max-instances N    cap on component instances (default 1000000)
//! --max-nets N         cap on netlist nets (default 2000000)
//! --fuel N             abstract work budget for elaboration + simulation
//! --timeout MS         wall-clock deadline in milliseconds
//! ```
//!
//! Exit codes: `0` success (including `help`/`--help`), `1` usage or I/O
//! error, `2` the program has diagnostics, `3` a resource limit was hit
//! (`error[Z9xx]`), `130` a fault campaign was interrupted by Ctrl-C
//! after reporting partially.
//!
//! `fault --checkpoint FILE` journals completed fault words so a crashed
//! or interrupted campaign can continue with `--resume` (see `zeusc help
//! fault`); the resumed report is byte-identical to an uninterrupted
//! run.
//!
//! A file argument of `@name` loads the bundled example of that name
//! (e.g. `zeusc layout @trees htree 16`).

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Duration;
use zeus::{examples, Limits, Zeus};

/// Prints a line, ignoring broken pipes (`zeusc ... | head` must not
/// panic).
macro_rules! outln {
    ($($t:tt)*) => {{
        use std::io::Write;
        let _ = writeln!(std::io::stdout(), $($t)*);
    }};
}

/// Prints without a newline, ignoring broken pipes.
macro_rules! out {
    ($($t:tt)*) => {{
        use std::io::Write;
        let _ = write!(std::io::stdout(), $($t)*);
    }};
}

/// Why `zeusc` failed; each variant maps to a documented exit code.
enum Failure {
    /// Bad invocation or I/O problem → exit 1.
    Usage(String),
    /// The Zeus program has diagnostics (or a check found a difference)
    /// → exit 2.
    Diags(String),
    /// A resource limit (`Z9xx`) was hit → exit 3.
    Limit(String),
    /// A fault campaign was interrupted (Ctrl-C) after reporting
    /// partially → exit 130 (128 + SIGINT), the shell convention.
    Interrupted(String),
}

impl Failure {
    fn message(&self) -> &str {
        match self {
            Failure::Usage(m) | Failure::Diags(m) | Failure::Limit(m) | Failure::Interrupted(m) => {
                m
            }
        }
    }

    fn exit_code(&self) -> ExitCode {
        match self {
            Failure::Usage(_) => ExitCode::from(1),
            Failure::Diags(_) => ExitCode::from(2),
            Failure::Limit(_) => ExitCode::from(3),
            Failure::Interrupted(_) => ExitCode::from(130),
        }
    }
}

impl From<String> for Failure {
    fn from(m: String) -> Failure {
        Failure::Usage(m)
    }
}

impl From<&str> for Failure {
    fn from(m: &str) -> Failure {
        Failure::Usage(m.to_string())
    }
}

/// Classifies rendered diagnostics: resource-limit errors exit 3, all
/// other diagnostics exit 2.
fn diags_failure(e: &zeus::Diagnostics, rendered: String) -> Failure {
    if e.has_resource_limit() {
        Failure::Limit(rendered)
    } else {
        Failure::Diags(rendered)
    }
}

/// Same classification for a single diagnostic (simulator errors).
fn diag_failure(e: &zeus::Diagnostic) -> Failure {
    if e.is_resource_limit() {
        Failure::Limit(e.to_string())
    } else {
        Failure::Diags(e.to_string())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(f) => {
            eprintln!("{}", f.message());
            f.exit_code()
        }
    }
}

// ---------------------------------------------------------------------
// Argument parsing
// ---------------------------------------------------------------------

/// The resource-limit flags, accepted by every compiling command.
const LIMIT_FLAGS: [(&str, bool); 4] = [
    ("--max-instances", true),
    ("--max-nets", true),
    ("--fuel", true),
    ("--timeout", true),
];

/// Per-command flag table: `(name, takes a value)`. Flags may appear in
/// any position after the subcommand; anything not in the table is a
/// usage error.
fn known_flags(cmd: &str) -> Vec<(&'static str, bool)> {
    let mut flags: Vec<(&'static str, bool)> = Vec::new();
    if !matches!(cmd, "examples" | "help") {
        flags.extend(LIMIT_FLAGS);
    }
    match cmd {
        "elab" | "layout" | "svg" | "graph" | "synth" => flags.push(("--top", true)),
        "sim" => flags.extend([
            ("--top", true),
            ("--cycles", true),
            ("--seed", true),
            ("--set", true),
            ("--packed", false),
        ]),
        "fault" => flags.extend([
            ("--top", true),
            ("--vectors", true),
            ("--seed", true),
            ("--engine", true),
            ("--bridges", false),
            ("--transients", true),
            ("--json", false),
            ("--packed", false),
            ("--jobs", true),
            ("--checkpoint", true),
            ("--resume", false),
            ("--campaign-timeout", true),
            ("--vectors-file", true),
        ]),
        "atpg" => flags.extend([
            ("--top", true),
            ("--seed", true),
            ("--coverage-target", true),
            ("--max-vectors", true),
            ("--backtrack-limit", true),
            ("--emit-vectors", true),
            ("--json", false),
            ("--bridges", false),
            ("--transients", true),
        ]),
        _ => {}
    }
    flags
}

/// One-line synopsis per command, shown by `help` and on usage errors.
fn synopsis(cmd: &str) -> &'static str {
    match cmd {
        "check" => "zeusc check <file.zeus> [limit flags]",
        "print" => "zeusc print <file.zeus> [limit flags]",
        "elab" => "zeusc elab <file.zeus> <top> [type args...] [limit flags]",
        "sim" => {
            "zeusc sim <file.zeus> <top> [type args...] [--cycles N] [--seed S] \
             [--set port=value ...] [--packed] [limit flags]"
        }
        "layout" => "zeusc layout <file.zeus> <top> [type args...] [limit flags]",
        "svg" => "zeusc svg <file.zeus> <top> [type args...] [limit flags]",
        "graph" => "zeusc graph <file.zeus> <top> [type args...] [limit flags]",
        "synth" => "zeusc synth <file.zeus> <top> [type args...] [limit flags]",
        "equiv" => "zeusc equiv <file.zeus> <topA> [args] --vs <topB> [args] [limit flags]",
        "fault" => {
            "zeusc fault <file.zeus> <top> [type args...] [--vectors N] [--seed S] \
             [--engine graph|switch] [--bridges] [--transients C] [--json] \
             [--packed] [--jobs N] [--checkpoint FILE] [--resume] \
             [--campaign-timeout MS] [--vectors-file FILE] [limit flags]"
        }
        "atpg" => {
            "zeusc atpg <file.zeus> <top> [type args...] [--seed S] \
             [--coverage-target PCT] [--max-vectors N] [--backtrack-limit N] \
             [--emit-vectors FILE] [--json] [--bridges] [--transients C] \
             [limit flags]"
        }
        "examples" => "zeusc examples",
        "help" => "zeusc help [command]",
        _ => "",
    }
}

/// Longer per-command help for `zeusc help <cmd>` / `zeusc <cmd> --help`.
fn detail(cmd: &str) -> &'static str {
    match cmd {
        "check" => "Parses the program and runs the static checks of paper §6.",
        "print" => "Parses the program and pretty-prints it in canonical form.",
        "elab" => "Elaborates <top> and prints netlist statistics and ports.",
        "sim" => {
            "Simulates <top> for --cycles clock cycles (default 8) and prints the\n\
             final port values. --set forces an IN port each cycle; --seed seeds\n\
             the RANDOM source (default 0x2E051983). --packed runs the 64-lane\n\
             bit-parallel engine (same output; used for cross-checking)."
        }
        "layout" => "Computes the §7 floorplan and draws it as ASCII art.",
        "svg" => "Computes the §7 floorplan and emits it as SVG on stdout.",
        "graph" => "Emits the elaborated semantics graph as Graphviz dot.",
        "synth" => "Synthesizes to the CMOS switch network and prints its size.",
        "equiv" => {
            "Elaborates both tops and checks exhaustive input equivalence.\n\
             Exit 0 when equivalent, 2 with a counterexample when not."
        }
        "fault" => {
            "Enumerates stuck-at (--bridges, --transients add more) faults,\n\
             runs a differential campaign against the fault-free design, and\n\
             prints a coverage report (--json for machine-readable output).\n\
             --packed simulates 64 faults per pass with the bit-parallel\n\
             engine; --jobs N shards the fault list over N threads (implies\n\
             --packed). Reports are byte-identical to the scalar engine for\n\
             the same seed.\n\
             --checkpoint FILE journals completed work after every 64-fault\n\
             word; --resume skips the journaled words (the final report is\n\
             byte-identical to an uninterrupted run, and the seed is\n\
             recovered from the checkpoint when --seed is omitted).\n\
             --campaign-timeout MS bounds the whole campaign's wall clock.\n\
             Ctrl-C drains in-flight words, flushes the checkpoint and\n\
             reports partially (exit 130); a second Ctrl-C aborts.\n\
             --vectors-file FILE replays an explicit vector set written by\n\
             `zeusc atpg --emit-vectors` instead of a random stream; the\n\
             seed is recovered from the file when --seed is omitted, and\n\
             the file's content is folded into the checkpoint digest."
        }
        "atpg" => {
            "Generates a compact deterministic test-vector set for the stuck-at\n\
             fault universe (--bridges/--transients extend it): a packed random\n\
             harvest, then a PODEM structural search for the faults random\n\
             vectors missed (proving untestable faults redundant), then\n\
             reverse-order compaction. The emitted set is re-graded by a full\n\
             fault campaign; the reported coverage is exactly what `zeusc\n\
             fault --vectors-file` reproduces on the emitted file.\n\
             --coverage-target PCT stops generation early and makes the exit\n\
             status enforce the target (exit 2 below it); --max-vectors caps\n\
             the set (default 256); --backtrack-limit bounds each PODEM\n\
             search (default 256); --emit-vectors FILE writes the canonical\n\
             vector file. Same seed + design + limits reproduce the set and\n\
             report byte for byte (default seed 0x2E051983)."
        }
        "examples" => "Lists the bundled example programs (usable as @name).",
        "help" => "Prints the command list, or one command's flags.",
        _ => "",
    }
}

const COMMANDS: [&str; 13] = [
    "check", "print", "elab", "sim", "layout", "svg", "graph", "synth", "equiv", "fault", "atpg",
    "examples", "help",
];

fn general_usage() -> String {
    let mut s = String::from("usage: zeusc <command> [...]\n\ncommands:\n");
    for cmd in COMMANDS {
        s.push_str(&format!("  {}\n", synopsis(cmd)));
    }
    s.push_str(
        "\nlimit flags (any compiling command): --max-instances N, --max-nets N,\n\
         --fuel N, --timeout MS\n\
         file arguments of the form @name load a bundled example\n\
         run `zeusc help <command>` for details",
    );
    s
}

fn command_usage(cmd: &str) -> String {
    format!("usage: {}\n\n{}", synopsis(cmd), detail(cmd))
}

/// A parsed command line: flag values by name plus bare positionals in
/// order. `--flag=value` and `--flag value` are equivalent; repeated
/// value flags accumulate.
struct Parsed {
    cmd: String,
    flags: HashMap<&'static str, Vec<String>>,
    positionals: Vec<String>,
}

impl Parsed {
    fn has(&self, flag: &str) -> bool {
        self.flags.contains_key(flag)
    }

    fn str_value(&self, flag: &str) -> Option<&str> {
        self.flags
            .get(flag)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    fn u64_value(&self, flag: &str) -> Result<Option<u64>, Failure> {
        match self.str_value(flag) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| Failure::Usage(format!("bad value '{v}' for {flag}"))),
        }
    }

    fn values(&self, flag: &str) -> &[String] {
        self.flags.get(flag).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The resource budget from the limit flags.
    fn limits(&self) -> Result<Limits, Failure> {
        let mut limits = Limits::default();
        if let Some(n) = self.u64_value("--max-instances")? {
            limits.max_instances = n as usize;
        }
        if let Some(n) = self.u64_value("--max-nets")? {
            limits.max_nets = n as usize;
        }
        if let Some(n) = self.u64_value("--fuel")? {
            limits.fuel = Some(n);
        }
        if let Some(ms) = self.u64_value("--timeout")? {
            limits.deadline = Some(Duration::from_millis(ms));
        }
        Ok(limits)
    }
}

/// Splits `args` (everything after the subcommand) into flags and
/// positionals, in any order. `--vs` is kept as a positional marker for
/// `equiv`; an unknown `--flag` is a usage error.
fn parse_command_line(cmd: &str, args: &[String]) -> Result<Parsed, Failure> {
    let known = known_flags(cmd);
    let mut flags: HashMap<&'static str, Vec<String>> = HashMap::new();
    let mut positionals = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if cmd == "equiv" && arg == "--vs" {
            positionals.push(arg.clone());
            continue;
        }
        if let Some(body) = arg.strip_prefix("--") {
            let (name, inline) = match body.split_once('=') {
                Some((n, v)) => (format!("--{n}"), Some(v.to_string())),
                None => (arg.clone(), None),
            };
            let Some(&(canonical, takes_value)) = known.iter().find(|(n, _)| *n == name) else {
                return Err(Failure::Usage(format!(
                    "unknown flag '{name}' for `zeusc {cmd}`\n\n{}",
                    command_usage(cmd)
                )));
            };
            let value = match (takes_value, inline) {
                (true, Some(v)) => v,
                (true, None) => iter
                    .next()
                    .cloned()
                    .ok_or_else(|| Failure::Usage(format!("{canonical} needs a value")))?,
                (false, Some(_)) => {
                    return Err(Failure::Usage(format!("{canonical} does not take a value")))
                }
                (false, None) => String::new(),
            };
            flags.entry(canonical).or_default().push(value);
        } else {
            positionals.push(arg.clone());
        }
    }
    Ok(Parsed {
        cmd: cmd.to_string(),
        flags,
        positionals,
    })
}

/// Numeric type parameters following the top component name.
fn top_args(rest: &[String]) -> Result<Vec<i64>, Failure> {
    rest.iter()
        .map(|a| {
            a.parse::<i64>()
                .map_err(|_| Failure::Usage(format!("'{a}' is not a numeric type parameter")))
        })
        .collect()
}

/// Resolves `<file> [<top>] [type args...]` from the positionals, with
/// the top component optionally supplied as `--top` instead.
fn file_top_args(p: &Parsed) -> Result<(&str, &str, Vec<i64>), Failure> {
    let mut pos = p.positionals.iter();
    let file = pos
        .next()
        .ok_or_else(|| Failure::Usage(command_usage(&p.cmd)))?;
    let (top, rest_at) = match p.str_value("--top") {
        Some(t) => (t, 1),
        None => (
            pos.next().map(String::as_str).ok_or_else(|| {
                Failure::Usage(format!(
                    "missing top component type\n\n{}",
                    command_usage(&p.cmd)
                ))
            })?,
            2,
        ),
    };
    let targs = top_args(&p.positionals[rest_at..])?;
    Ok((file, top, targs))
}

fn load_source(path: &str) -> Result<String, Failure> {
    if let Some(name) = path.strip_prefix('@') {
        for (n, src, _) in examples::ALL {
            if *n == name {
                return Ok((*src).to_string());
            }
        }
        return Err(Failure::Usage(format!(
            "no bundled example '{name}' (try `zeusc examples`)"
        )));
    }
    std::fs::read_to_string(path).map_err(|e| Failure::Usage(format!("cannot read {path}: {e}")))
}

fn parse(src: &str) -> Result<Zeus, Failure> {
    Zeus::parse(src).map_err(|e| {
        let map = zeus::SourceMap::new(src);
        let rendered = e.render(&map);
        diags_failure(&e, rendered)
    })
}

// ---------------------------------------------------------------------
// Command dispatch
// ---------------------------------------------------------------------

fn run(args: &[String]) -> Result<(), Failure> {
    let cmd = args.first().ok_or_else(general_usage)?;

    // `--help`/`-h` anywhere prints usage and exits 0; `zeusc help
    // [cmd]` is the spelled-out form.
    if args.iter().any(|a| a == "--help" || a == "-h") {
        let topic = if COMMANDS.contains(&cmd.as_str()) {
            Some(cmd.as_str())
        } else {
            None
        };
        match topic {
            Some(c) if c != "help" => outln!("{}", command_usage(c)),
            _ => outln!("{}", general_usage()),
        }
        return Ok(());
    }
    if cmd == "help" {
        match args.get(1).map(String::as_str) {
            None => outln!("{}", general_usage()),
            Some(c) if COMMANDS.contains(&c) => outln!("{}", command_usage(c)),
            Some(other) => {
                return Err(Failure::Usage(format!(
                    "unknown command '{other}'\n\n{}",
                    general_usage()
                )))
            }
        }
        return Ok(());
    }
    if !COMMANDS.contains(&cmd.as_str()) {
        return Err(Failure::Usage(format!(
            "unknown command '{cmd}'\n\n{}",
            general_usage()
        )));
    }

    let p = parse_command_line(cmd, &args[1..])?;
    match cmd.as_str() {
        "examples" => {
            for (name, src, top) in examples::ALL {
                outln!("@{name:<14} top={top:<16} ({} bytes)", src.len());
            }
            Ok(())
        }
        "check" => {
            let file = p
                .positionals
                .first()
                .ok_or_else(|| Failure::Usage(command_usage("check")))?;
            parse(&load_source(file)?)?;
            outln!("ok");
            Ok(())
        }
        "print" => {
            let file = p
                .positionals
                .first()
                .ok_or_else(|| Failure::Usage(command_usage("print")))?;
            let z = parse(&load_source(file)?)?;
            out!("{}", z.to_canonical_text());
            Ok(())
        }
        "equiv" => cmd_equiv(&p),
        _ => cmd_elaborating(&p),
    }
}

fn cmd_equiv(p: &Parsed) -> Result<(), Failure> {
    let split = p
        .positionals
        .iter()
        .position(|a| a == "--vs")
        .ok_or("missing --vs separator")?;
    let (left, right) = p.positionals.split_at(split);
    let right = &right[1..];
    let file = left
        .first()
        .ok_or_else(|| Failure::Usage(command_usage("equiv")))?;
    let top_a = left.get(1).ok_or("missing first top")?;
    let args_a = top_args(&left[2..])?;
    let top_b = right.first().ok_or("missing second top")?;
    let args_b = top_args(&right[1..])?;
    let src = load_source(file)?;
    let z = parse(&src)?;
    let map = zeus::SourceMap::new(&src);
    let mut limits = p.limits()?;
    // The historical CLI cap (slightly above the library default).
    limits.max_input_bits = 22;
    let elab = |top: &str, targs: &[i64]| {
        z.elaborate_limited(top, targs, &limits)
            .map_err(|e| diags_failure(&e, e.render(&map)))
    };
    let da = elab(top_a, &args_a)?;
    let db = elab(top_b, &args_b)?;
    match zeus::check_equivalent_with(&da, &db, &limits).map_err(|e| diag_failure(&e))? {
        None => {
            outln!("equivalent (exhaustive)");
            Ok(())
        }
        Some(ce) => Err(Failure::Diags(format!("NOT equivalent: {ce}"))),
    }
}

/// The commands that elaborate a design first: `elab`, `sim`, `layout`,
/// `svg`, `graph`, `synth`, `fault`.
fn cmd_elaborating(p: &Parsed) -> Result<(), Failure> {
    let (file, top, targs) = file_top_args(p)?;
    let src = load_source(file)?;
    let z = parse(&src)?;
    let limits = p.limits()?;
    let design = z.elaborate_limited(top, &targs, &limits).map_err(|e| {
        let map = zeus::SourceMap::new(&src);
        let rendered = e.render(&map);
        diags_failure(&e, rendered)
    })?;
    for w in &design.warnings {
        eprintln!("{}", w.render(&zeus::SourceMap::new(&src)));
    }
    match p.cmd.as_str() {
        "elab" => {
            outln!("top       : {}", design.top_type);
            outln!("nets      : {}", design.netlist.net_count());
            outln!("nodes     : {}", design.netlist.node_count());
            outln!("registers : {}", design.netlist.registers().count());
            outln!("instances : {}", design.instances.size());
            for p in &design.ports {
                outln!("port      : {} {} [{} bit]", p.mode, p.name, p.width());
            }
            Ok(())
        }
        "sim" => cmd_sim(p, design, &limits),
        "svg" => {
            let plan = zeus::floorplan(&design);
            out!("{}", plan.render_svg(16));
            Ok(())
        }
        "graph" => {
            out!("{}", zeus::to_dot(&design.netlist));
            Ok(())
        }
        "layout" => {
            let plan = zeus::floorplan(&design);
            outln!(
                "bounding box: {} x {} (area {})",
                plan.width,
                plan.height,
                plan.area()
            );
            outln!("leaf cells  : {}", plan.leaf_count());
            let art = plan.render_ascii();
            if !art.is_empty() {
                outln!("{art}");
            }
            Ok(())
        }
        "fault" => cmd_fault(p, design, &limits),
        "atpg" => cmd_atpg(p, design, &limits),
        _ => {
            let sw = zeus::SwitchSim::with_limits(&design, &limits);
            outln!("transistors : {}", sw.transistor_count());
            outln!("nodes       : {}", sw.node_count());
            Ok(())
        }
    }
}

fn cmd_sim(p: &Parsed, design: zeus::Design, limits: &Limits) -> Result<(), Failure> {
    let cycles = p.u64_value("--cycles")?.unwrap_or(8);
    let seed = p.u64_value("--seed")?;
    if seed.is_none() {
        // The fixed default seed keeps runs reproducible; say which one
        // was used (satisfying scripted reproduction) without polluting
        // stdout.
        eprintln!(
            "seed      : {} (default; pass --seed to vary)",
            0x2E05_1983u64
        );
    }
    let forcings: Vec<(String, u64)> = p
        .values("--set")
        .iter()
        .map(|kv| {
            let (port, val) = kv
                .split_once('=')
                .ok_or_else(|| Failure::Usage(format!("bad --set '{kv}', want port=value")))?;
            let val: u64 = val
                .parse()
                .map_err(|_| Failure::Usage(format!("bad value in --set '{kv}'")))?;
            Ok((port.to_string(), val))
        })
        .collect::<Result<_, Failure>>()?;

    let ports = design.ports.clone();
    let mut violations = 0u64;
    let mut values: Vec<(String, String)> = Vec::new();
    if p.has("--packed") {
        // The 64-lane engine with every lane driven identically: output
        // must be byte-identical to the scalar run below.
        let mut sim = zeus::PackedSim::with_limits(design, limits).map_err(|e| diag_failure(&e))?;
        if let Some(s) = seed {
            sim.reseed(s);
        }
        for (port, val) in &forcings {
            sim.set_port_num(port, *val)
                .map_err(|e| Failure::Usage(e.to_string()))?;
        }
        for _ in 0..cycles {
            let r = sim.try_step().map_err(|e| diag_failure(&e))?;
            violations += r.conflicts.iter().filter(|c| c.lanes & 1 == 1).count() as u64;
        }
        for port in &ports {
            let vals: String = sim
                .port_lane(&port.name, 0)
                .iter()
                .map(|v| v.to_string())
                .collect();
            values.push((port.name.clone(), vals));
        }
    } else {
        let mut sim = zeus::Simulator::with_limits(design, limits).map_err(|e| diag_failure(&e))?;
        if let Some(s) = seed {
            sim.reseed(s);
        }
        for (port, val) in &forcings {
            sim.set_port_num(port, *val)
                .map_err(|e| Failure::Usage(e.to_string()))?;
        }
        for _ in 0..cycles {
            let r = sim.try_step().map_err(|e| diag_failure(&e))?;
            violations += r.conflicts.len() as u64;
        }
        for port in &ports {
            let vals: String = sim.port(&port.name).iter().map(|v| v.to_string()).collect();
            values.push((port.name.clone(), vals));
        }
    }
    outln!("cycles    : {cycles}");
    outln!("conflicts : {violations}");
    for (name, vals) in values {
        outln!("{name:<10}: {vals}");
    }
    Ok(())
}

fn cmd_fault(p: &Parsed, design: zeus::Design, limits: &Limits) -> Result<(), Failure> {
    let vectors = p.u64_value("--vectors")?.unwrap_or(64) as u32;
    let vector_set = match p.str_value("--vectors-file") {
        None => None,
        Some(path) => {
            if p.has("--vectors") {
                return Err(Failure::Usage(
                    "--vectors-file supplies the vectors; don't also pass --vectors".to_string(),
                ));
            }
            let text = std::fs::read_to_string(path)
                .map_err(|e| Failure::Usage(format!("cannot read {path}: {e}")))?;
            Some(zeus::VectorSet::parse(&text).map_err(|e| diag_failure(&e))?)
        }
    };
    let checkpoint = match (p.str_value("--checkpoint"), p.has("--resume")) {
        (None, true) => {
            return Err(Failure::Usage(
                "--resume needs --checkpoint FILE to resume from".to_string(),
            ))
        }
        (None, false) => None,
        (Some(path), resume) => Some(zeus::CheckpointOptions {
            path: path.into(),
            resume,
        }),
    };
    let seed = match (p.u64_value("--seed")?, &vector_set) {
        (Some(s), _) => s,
        (None, Some(set)) => {
            // An explicit vector file carries the seed it was generated
            // with in its header; reuse it so a bare `--vectors-file`
            // replay reproduces the ATPG grade exactly.
            eprintln!("seed      : {} (recovered from vector file)", set.seed);
            set.seed
        }
        (None, None) => {
            // When resuming, the original seed lives in the checkpoint
            // header: recover it so `--resume` never needs `--seed`
            // repeated (a resumed campaign with a different seed would
            // be rejected by the digest check anyway).
            let recovered = checkpoint
                .as_ref()
                .filter(|c| c.resume && c.path.exists())
                .and_then(|c| zeus::read_header(&c.path).ok())
                .map(|h| h.seed);
            match recovered {
                Some(s) => {
                    eprintln!("seed      : {s} (recovered from checkpoint)");
                    s
                }
                None => {
                    let s = std::time::SystemTime::now()
                        .duration_since(std::time::UNIX_EPOCH)
                        .map(|d| d.as_nanos() as u64)
                        .unwrap_or(0);
                    eprintln!("seed      : {s} (pass --seed {s} to reproduce)");
                    s
                }
            }
        }
    };
    let engine = match p.str_value("--engine") {
        None | Some("graph") => zeus::Engine::Graph,
        Some("switch") => zeus::Engine::Switch,
        Some(e) => {
            return Err(Failure::Usage(format!(
                "unknown engine '{e}' (expected graph or switch)"
            )))
        }
    };
    // --jobs implies the packed engine (sharding is a packed feature).
    let packed = p.has("--packed") || p.has("--jobs");
    if packed && engine == zeus::Engine::Switch {
        return Err(Failure::Usage(
            "--packed/--jobs support the graph engine only".to_string(),
        ));
    }
    let jobs = match p.u64_value("--jobs")? {
        Some(0) => return Err(Failure::Usage("--jobs must be at least 1".to_string())),
        Some(n) => n as usize,
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    let opts = zeus::FaultListOptions {
        bridges: p.has("--bridges"),
        transients: p.u64_value("--transients")?,
        ..zeus::FaultListOptions::default()
    };
    let list = zeus::enumerate_faults(&design, &opts);
    let mut cfg = match vector_set {
        Some(set) => {
            let mut c = zeus::CampaignConfig::replay(engine, set);
            c.seed = seed;
            c
        }
        None => zeus::CampaignConfig::new(engine, vectors, seed),
    };
    cfg.limits = limits.clone();
    if let Some(ms) = p.u64_value("--campaign-timeout")? {
        cfg.campaign_deadline = Some(Duration::from_millis(ms));
    }
    #[cfg(unix)]
    {
        sigint::install();
        cfg.cancel = Some(&sigint::INTERRUPTED);
    }
    let report = if packed {
        zeus::run_campaign_packed_with(&design, &list, &cfg, jobs, checkpoint.as_ref())
            .map_err(|e| diag_failure(&e))?
    } else {
        zeus::run_campaign_with(&design, &list, &cfg, checkpoint.as_ref())
            .map_err(|e| diag_failure(&e))?
    };
    if p.has("--json") {
        outln!("{}", report.to_json());
    } else {
        out!("{}", report.to_text());
    }
    match report.partial {
        None => Ok(()),
        Some(zeus::PartialReason::Interrupted) => Err(Failure::Interrupted(
            "fault campaign interrupted; partial results reported above".to_string(),
        )),
        Some(zeus::PartialReason::DeadlineExceeded) => Err(Failure::Limit(
            "fault campaign stopped at --campaign-timeout; partial results reported above"
                .to_string(),
        )),
    }
}

fn cmd_atpg(p: &Parsed, design: zeus::Design, limits: &Limits) -> Result<(), Failure> {
    let mut cfg = zeus::AtpgConfig {
        limits: limits.clone(),
        ..zeus::AtpgConfig::default()
    };
    cfg.seed = match p.u64_value("--seed")? {
        Some(s) => s,
        None => {
            // Unlike `fault`, the default is fixed, not time-based:
            // reproducible vector sets are the whole point of ATPG.
            eprintln!(
                "seed      : {} (default; pass --seed to vary)",
                0x2E05_1983u64
            );
            0x2E05_1983
        }
    };
    let target = match p.str_value("--coverage-target") {
        None => None,
        Some(v) => {
            let pct: f64 = v
                .parse()
                .map_err(|_| Failure::Usage(format!("bad value '{v}' for --coverage-target")))?;
            if !(0.0..=100.0).contains(&pct) {
                return Err(Failure::Usage(
                    "--coverage-target must be a percentage between 0 and 100".to_string(),
                ));
            }
            Some(pct / 100.0)
        }
    };
    if let Some(t) = target {
        cfg.coverage_target = t;
    }
    if let Some(n) = p.u64_value("--max-vectors")? {
        cfg.max_vectors = n as usize;
    }
    if let Some(n) = p.u64_value("--backtrack-limit")? {
        cfg.backtrack_limit = n;
    }
    cfg.fault_opts = zeus::FaultListOptions {
        bridges: p.has("--bridges"),
        transients: p.u64_value("--transients")?,
        ..zeus::FaultListOptions::default()
    };
    let report = zeus::run_atpg(&design, &cfg).map_err(|e| diag_failure(&e))?;
    if let Some(path) = p.str_value("--emit-vectors") {
        std::fs::write(path, report.vectors.to_text())
            .map_err(|e| Failure::Usage(format!("cannot write {path}: {e}")))?;
    }
    if p.has("--json") {
        outln!("{}", report.to_json());
    } else {
        out!("{}", report.to_text());
    }
    // An explicit target is a pass/fail contract, not just a stopping
    // heuristic: fall below it and the exit status says so.
    match target {
        Some(t) if report.coverage() + 1e-12 < t => Err(Failure::Diags(format!(
            "coverage {:.2}% is below the target {:.2}%",
            report.coverage() * 100.0,
            t * 100.0
        ))),
        _ => Ok(()),
    }
}

/// Graceful Ctrl-C for fault campaigns, without a libc dependency: the
/// first SIGINT raises [`INTERRUPTED`] (the campaign drains in-flight
/// words, flushes its checkpoint and reports partially) and restores the
/// default disposition so a second Ctrl-C kills the process immediately.
#[cfg(unix)]
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set by the first SIGINT; polled by the campaign between words.
    pub static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIG_DFL: usize = 0;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        INTERRUPTED.store(true, Ordering::Relaxed);
        // Async-signal-safe: one atomic store and one signal(2) call.
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
    }

    /// Installs the handler (idempotent).
    pub fn install() {
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    }
}
