//! `zeusc` — command-line driver for the Zeus HDL toolchain.
//!
//! ```text
//! zeusc check <file.zeus>                      parse + static checks
//! zeusc print <file.zeus>                      canonical pretty-print
//! zeusc elab  <file.zeus> <top> [args...]      elaborate, print stats
//! zeusc sim   <file.zeus> <top> [args...] [--cycles N] [--set port=value ...]
//! zeusc layout <file.zeus> <top> [args...]     floorplan + ASCII art
//! zeusc svg   <file.zeus> <top> [args...]      floorplan as SVG (stdout)
//! zeusc graph <file.zeus> <top> [args...]      semantics graph as Graphviz dot
//! zeusc synth <file.zeus> <top> [args...]      CMOS transistor budget
//! zeusc equiv <file.zeus> <topA> [args] --vs <topB> [args]
//!                                              exhaustive equivalence check
//! zeusc fault <file.zeus> <top> [args...] [--vectors N] [--seed S]
//!             [--engine graph|switch] [--bridges] [--transients C] [--json]
//!                                              differential fault campaign
//! zeusc examples                               list the bundled examples
//! ```
//!
//! Commands taking a top component also accept it as `--top <name>`
//! (`zeusc fault file.zeus --top adder`). `sim` and `fault` print the
//! random seed actually used on stderr when `--seed` is omitted.
//!
//! Resource-limit flags accepted by every compiling command:
//!
//! ```text
//! --max-instances N    cap on component instances (default 1000000)
//! --max-nets N         cap on netlist nets (default 2000000)
//! --fuel N             abstract work budget for elaboration + simulation
//! --timeout MS         wall-clock deadline in milliseconds
//! ```
//!
//! Exit codes: `0` success, `1` usage or I/O error, `2` the program has
//! diagnostics, `3` a resource limit was hit (`error[Z9xx]`).
//!
//! A file argument of `@name` loads the bundled example of that name
//! (e.g. `zeusc layout @trees htree 16`).

use std::process::ExitCode;
use std::time::Duration;
use zeus::{examples, Limits, Zeus};

/// Prints a line, ignoring broken pipes (`zeusc ... | head` must not
/// panic).
macro_rules! outln {
    ($($t:tt)*) => {{
        use std::io::Write;
        let _ = writeln!(std::io::stdout(), $($t)*);
    }};
}

/// Prints without a newline, ignoring broken pipes.
macro_rules! out {
    ($($t:tt)*) => {{
        use std::io::Write;
        let _ = write!(std::io::stdout(), $($t)*);
    }};
}

/// Why `zeusc` failed; each variant maps to a documented exit code.
enum Failure {
    /// Bad invocation or I/O problem → exit 1.
    Usage(String),
    /// The Zeus program has diagnostics (or a check found a difference)
    /// → exit 2.
    Diags(String),
    /// A resource limit (`Z9xx`) was hit → exit 3.
    Limit(String),
}

impl Failure {
    fn message(&self) -> &str {
        match self {
            Failure::Usage(m) | Failure::Diags(m) | Failure::Limit(m) => m,
        }
    }

    fn exit_code(&self) -> ExitCode {
        match self {
            Failure::Usage(_) => ExitCode::from(1),
            Failure::Diags(_) => ExitCode::from(2),
            Failure::Limit(_) => ExitCode::from(3),
        }
    }
}

impl From<String> for Failure {
    fn from(m: String) -> Failure {
        Failure::Usage(m)
    }
}

impl From<&str> for Failure {
    fn from(m: &str) -> Failure {
        Failure::Usage(m.to_string())
    }
}

/// Classifies rendered diagnostics: resource-limit errors exit 3, all
/// other diagnostics exit 2.
fn diags_failure(e: &zeus::Diagnostics, rendered: String) -> Failure {
    if e.has_resource_limit() {
        Failure::Limit(rendered)
    } else {
        Failure::Diags(rendered)
    }
}

/// Same classification for a single diagnostic (simulator errors).
fn diag_failure(e: &zeus::Diagnostic) -> Failure {
    if e.is_resource_limit() {
        Failure::Limit(e.to_string())
    } else {
        Failure::Diags(e.to_string())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(f) => {
            eprintln!("{}", f.message());
            f.exit_code()
        }
    }
}

fn load_source(path: &str) -> Result<String, String> {
    if let Some(name) = path.strip_prefix('@') {
        for (n, src, _) in examples::ALL {
            if *n == name {
                return Ok((*src).to_string());
            }
        }
        return Err(format!(
            "no bundled example '{name}' (try `zeusc examples`)"
        ));
    }
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn parse(src: &str) -> Result<Zeus, Failure> {
    Zeus::parse(src).map_err(|e| {
        let map = zeus::SourceMap::new(src);
        let rendered = e.render(&map);
        diags_failure(&e, rendered)
    })
}

fn top_args(rest: &[String]) -> Result<Vec<i64>, String> {
    rest.iter()
        .take_while(|a| !a.starts_with("--"))
        .map(|a| {
            a.parse::<i64>()
                .map_err(|_| format!("'{a}' is not a numeric type parameter"))
        })
        .collect()
}

fn flag_value(rest: &[String], flag: &str) -> Result<Option<u64>, String> {
    let Some(pos) = rest.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    let val = rest
        .get(pos + 1)
        .ok_or_else(|| format!("{flag} needs a numeric value"))?;
    val.parse()
        .map(Some)
        .map_err(|_| format!("bad value '{val}' for {flag}"))
}

fn flag_str(rest: &[String], flag: &str) -> Result<Option<String>, String> {
    let Some(pos) = rest.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    rest.get(pos + 1)
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
        .map(Some)
}

fn has_flag(rest: &[String], flag: &str) -> bool {
    rest.iter().any(|a| a == flag)
}

/// Builds the resource budget from the `--max-instances`, `--max-nets`,
/// `--fuel` and `--timeout` flags (defaults from [`Limits::default`]).
fn parse_limits(args: &[String]) -> Result<Limits, String> {
    let mut limits = Limits::default();
    if let Some(n) = flag_value(args, "--max-instances")? {
        limits.max_instances = n as usize;
    }
    if let Some(n) = flag_value(args, "--max-nets")? {
        limits.max_nets = n as usize;
    }
    if let Some(n) = flag_value(args, "--fuel")? {
        limits.fuel = Some(n);
    }
    if let Some(ms) = flag_value(args, "--timeout")? {
        limits.deadline = Some(Duration::from_millis(ms));
    }
    Ok(limits)
}

fn run(args: &[String]) -> Result<(), Failure> {
    let usage =
        "usage: zeusc <check|print|elab|sim|layout|svg|graph|synth|equiv|fault|examples> [...]";
    let cmd = args.first().ok_or(usage)?;
    match cmd.as_str() {
        "examples" => {
            for (name, src, top) in examples::ALL {
                outln!("@{name:<14} top={top:<16} ({} bytes)", src.len());
            }
            Ok(())
        }
        "equiv" => {
            let file = args
                .get(1)
                .ok_or("usage: zeusc equiv <file> <topA> [args] --vs <topB> [args]")?;
            let split = args
                .iter()
                .position(|a| a == "--vs")
                .ok_or("missing --vs separator")?;
            let top_a = args.get(2).ok_or("missing first top")?;
            let args_a = top_args(&args[3..split])?;
            let top_b = args.get(split + 1).ok_or("missing second top")?;
            let args_b = top_args(&args[split + 2..])?;
            let src = load_source(file)?;
            let z = parse(&src)?;
            let map = zeus::SourceMap::new(&src);
            let mut limits = parse_limits(args)?;
            // The historical CLI cap (slightly above the library default).
            limits.max_input_bits = 22;
            let elab = |top: &str, targs: &[i64]| {
                z.elaborate_limited(top, targs, &limits)
                    .map_err(|e| diags_failure(&e, e.render(&map)))
            };
            let da = elab(top_a, &args_a)?;
            let db = elab(top_b, &args_b)?;
            match zeus::check_equivalent_with(&da, &db, &limits).map_err(|e| diag_failure(&e))? {
                None => {
                    outln!("equivalent (exhaustive)");
                    Ok(())
                }
                Some(ce) => Err(Failure::Diags(format!("NOT equivalent: {ce}"))),
            }
        }
        "check" => {
            let file = args.get(1).ok_or("usage: zeusc check <file>")?;
            parse(&load_source(file)?)?;
            outln!("ok");
            Ok(())
        }
        "print" => {
            let file = args.get(1).ok_or("usage: zeusc print <file>")?;
            let z = parse(&load_source(file)?)?;
            out!("{}", z.to_canonical_text());
            Ok(())
        }
        "elab" | "sim" | "layout" | "svg" | "graph" | "synth" | "fault" => {
            let file = args
                .get(1)
                .ok_or("usage: zeusc <cmd> <file> <top> [args]")?;
            // The top component is positional, or named via `--top`.
            let (top, rest_start) = if args.get(2).map(String::as_str) == Some("--top") {
                (args.get(3).ok_or("missing top component type")?, 4)
            } else {
                (args.get(2).ok_or("missing top component type")?, 3)
            };
            let rest = &args[rest_start..];
            let targs = top_args(rest)?;
            let src = load_source(file)?;
            let z = parse(&src)?;
            let limits = parse_limits(args)?;
            let design = z.elaborate_limited(top, &targs, &limits).map_err(|e| {
                let map = zeus::SourceMap::new(&src);
                let rendered = e.render(&map);
                diags_failure(&e, rendered)
            })?;
            for w in &design.warnings {
                eprintln!("{}", w.render(&zeus::SourceMap::new(&src)));
            }
            match cmd.as_str() {
                "elab" => {
                    outln!("top       : {}", design.top_type);
                    outln!("nets      : {}", design.netlist.net_count());
                    outln!("nodes     : {}", design.netlist.node_count());
                    outln!("registers : {}", design.netlist.registers().count());
                    outln!("instances : {}", design.instances.size());
                    for p in &design.ports {
                        outln!("port      : {} {} [{} bit]", p.mode, p.name, p.width());
                    }
                    Ok(())
                }
                "sim" => {
                    let cycles = flag_value(rest, "--cycles")?.unwrap_or(8);
                    let mut sim = zeus::Simulator::with_limits(design, &limits)
                        .map_err(|e| diag_failure(&e))?;
                    match flag_value(rest, "--seed")? {
                        Some(seed) => sim.reseed(seed),
                        // The fixed default seed keeps runs reproducible;
                        // say which one was used (satisfying scripted
                        // reproduction) without polluting stdout.
                        None => eprintln!(
                            "seed      : {} (default; pass --seed to vary)",
                            0x2E05_1983u64
                        ),
                    }
                    // Apply --set port=value forcings.
                    let mut iter = rest.iter();
                    while let Some(a) = iter.next() {
                        if a == "--set" {
                            let kv = iter.next().ok_or("--set needs port=value")?;
                            let (port, val) = kv
                                .split_once('=')
                                .ok_or_else(|| format!("bad --set '{kv}', want port=value"))?;
                            let val: u64 = val
                                .parse()
                                .map_err(|_| format!("bad value in --set '{kv}'"))?;
                            sim.set_port_num(port, val)
                                .map_err(|e| Failure::Usage(e.to_string()))?;
                        }
                    }
                    let mut violations = 0u64;
                    for _ in 0..cycles {
                        let r = sim.try_step().map_err(|e| diag_failure(&e))?;
                        violations += r.conflicts.len() as u64;
                    }
                    outln!("cycles    : {cycles}");
                    outln!("conflicts : {violations}");
                    for p in sim.design().ports.clone() {
                        let vals: String =
                            sim.port(&p.name).iter().map(|v| v.to_string()).collect();
                        outln!("{:<10}: {}", p.name, vals);
                    }
                    Ok(())
                }
                "svg" => {
                    let plan = zeus::floorplan(&design);
                    out!("{}", plan.render_svg(16));
                    Ok(())
                }
                "graph" => {
                    out!("{}", zeus::to_dot(&design.netlist));
                    Ok(())
                }
                "layout" => {
                    let plan = zeus::floorplan(&design);
                    outln!(
                        "bounding box: {} x {} (area {})",
                        plan.width,
                        plan.height,
                        plan.area()
                    );
                    outln!("leaf cells  : {}", plan.leaf_count());
                    let art = plan.render_ascii();
                    if !art.is_empty() {
                        outln!("{art}");
                    }
                    Ok(())
                }
                "fault" => {
                    let vectors = flag_value(rest, "--vectors")?.unwrap_or(64) as u32;
                    let seed = match flag_value(rest, "--seed")? {
                        Some(s) => s,
                        None => {
                            let s = std::time::SystemTime::now()
                                .duration_since(std::time::UNIX_EPOCH)
                                .map(|d| d.as_nanos() as u64)
                                .unwrap_or(0);
                            eprintln!("seed      : {s} (pass --seed {s} to reproduce)");
                            s
                        }
                    };
                    let engine = match flag_str(rest, "--engine")?.as_deref() {
                        None | Some("graph") => zeus::Engine::Graph,
                        Some("switch") => zeus::Engine::Switch,
                        Some(e) => {
                            return Err(Failure::Usage(format!(
                                "unknown engine '{e}' (expected graph or switch)"
                            )))
                        }
                    };
                    let opts = zeus::FaultListOptions {
                        bridges: has_flag(rest, "--bridges"),
                        transients: flag_value(rest, "--transients")?,
                        ..zeus::FaultListOptions::default()
                    };
                    let list = zeus::enumerate_faults(&design, &opts);
                    let mut cfg = zeus::CampaignConfig::new(engine, vectors, seed);
                    cfg.limits = limits.clone();
                    let report =
                        zeus::run_campaign(&design, &list, &cfg).map_err(|e| diag_failure(&e))?;
                    if has_flag(rest, "--json") {
                        outln!("{}", report.to_json());
                    } else {
                        out!("{}", report.to_text());
                    }
                    Ok(())
                }
                _ => {
                    let sw = zeus::SwitchSim::with_limits(&design, &limits);
                    outln!("transistors : {}", sw.transistor_count());
                    outln!("nodes       : {}", sw.node_count());
                    Ok(())
                }
            }
        }
        other => Err(Failure::Usage(format!(
            "unknown command '{other}'\n{usage}"
        ))),
    }
}
