//! `zeusc` — command-line driver for the Zeus HDL toolchain.
//!
//! A thin shell over the [`zeus_cli`] library, which holds all the
//! parsing, dispatch and formatting (shared with the `zeusd` daemon):
//! this binary only decides *where* the command runs.
//!
//! * By default, locally: a [`zeus_cli::Session`] captures the output,
//!   which is flushed to stdout/stderr at the end (broken pipes are
//!   ignored — `zeusc ... | head` must not panic).
//! * With `--remote SOCKET`, against a running `zeusd`: the command
//!   line and any referenced files are shipped over the socket, and the
//!   daemon's answer (bytes, exit code, emitted files) is mirrored
//!   exactly. Transient failures (`overloaded`, connection refused) are
//!   retried with exponential backoff; see `zeus_cli::remote`.
//! * With `--remote-or-local SOCKET`, the same, but an unreachable
//!   daemon degrades to a local run with a warning instead of an error.
//!
//! Run `zeusc help` for the command list and the exit-code contract
//! (0 success, 1 usage/IO, 2 diagnostics, 3 resource limit, 130
//! interrupted).

use std::process::ExitCode;

/// Writes captured bytes to a stream, ignoring broken pipes.
fn flush_to(stream: &mut dyn std::io::Write, bytes: &str) {
    let _ = stream.write_all(bytes.as_bytes());
}

fn run_local(args: &[String]) -> ExitCode {
    let mut sess = zeus_cli::Session::local();
    #[cfg(unix)]
    if matches!(
        args.first().map(String::as_str),
        Some("fault") | Some("atpg")
    ) {
        zeus_cli::sigint::install();
        sess.cancel = Some(&zeus_cli::sigint::INTERRUPTED);
    }
    let code = zeus_cli::run_to_completion(args, &mut sess);
    flush_to(&mut std::io::stdout(), &sess.out);
    flush_to(&mut std::io::stderr(), &sess.err);
    ExitCode::from(code)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    #[cfg(unix)]
    {
        let remote = match zeus_cli::remote::extract_remote_flags(&mut args) {
            Ok(r) => r,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::from(1);
            }
        };
        if let Some(opts) = remote {
            match zeus_cli::remote::run_remote(&opts, &args) {
                zeus_cli::remote::RemoteOutcome::Done {
                    code,
                    out,
                    err,
                    files,
                } => {
                    for (path, content) in &files {
                        if let Err(e) = std::fs::write(path, content) {
                            eprintln!("cannot write {path}: {e}");
                            return ExitCode::from(1);
                        }
                    }
                    flush_to(&mut std::io::stdout(), &out);
                    flush_to(&mut std::io::stderr(), &err);
                    return ExitCode::from(code);
                }
                zeus_cli::remote::RemoteOutcome::Fallback(warning) => {
                    eprintln!("{warning}");
                    // Fall through to the local path below.
                }
            }
        }
    }

    run_local(&args)
}
