//! The `zeusc --remote` client: ships a command line to a `zeusd`
//! daemon and retries transient failures with exponential backoff.
//!
//! Retry contract (documented in `docs/DAEMON.md`):
//!
//! * **overloaded** responses and **connection failures** are retried
//!   up to [`MAX_ATTEMPTS`] times with exponential backoff starting at
//!   [`BASE_BACKOFF_MS`], doubling per attempt, plus up to 50% random
//!   jitter (decorrelates a burst of clients all told to come back
//!   later). An `overloaded` response's `retry_after_ms` hint is a
//!   floor under the computed backoff.
//! * **shutting_down** is treated like a connection failure: a
//!   replacement daemon may be seconds away.
//! * When retries are exhausted: persistent overload exits 3 (a
//!   resource limit, same class as `Z905`); an unreachable daemon exits
//!   1 — unless the user passed `--remote-or-local`, in which case the
//!   client warns on stderr and falls back to local execution.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

use crate::proto::{Request, Response};

/// Total tries per request (1 initial + 4 retries).
pub const MAX_ATTEMPTS: u32 = 5;

/// The longest usable `AF_UNIX` socket path on this platform, in bytes:
/// `sun_path` is 108 bytes on Linux and 104 on the BSD family (macOS),
/// one of which the kernel needs for the NUL terminator. Checked up
/// front so an over-long `--remote` path is a clear usage error instead
/// of a confusing `connect()` failure from the OS.
#[cfg(any(
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd",
    target_os = "netbsd",
    target_os = "openbsd"
))]
pub const MAX_SOCKET_PATH: usize = 103;
/// The longest usable `AF_UNIX` socket path on this platform, in bytes.
#[cfg(not(any(
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd",
    target_os = "netbsd",
    target_os = "openbsd"
)))]
pub const MAX_SOCKET_PATH: usize = 107;

/// First backoff delay; doubles each retry (25, 50, 100, 200 ms).
pub const BASE_BACKOFF_MS: u64 = 25;

/// How the client should reach the daemon.
#[derive(Debug, Clone)]
pub struct RemoteOpts {
    /// The daemon's Unix socket path.
    pub socket: PathBuf,
    /// Fall back to local execution (with a warning) when the daemon
    /// cannot be reached (`--remote-or-local`).
    pub fallback_local: bool,
}

/// The final word on one remote invocation.
#[derive(Debug)]
pub enum RemoteOutcome {
    /// The daemon answered: mirror these bytes and exit with `code`
    /// after writing `files`.
    Done {
        /// Exit code of the equivalent local run.
        code: u8,
        /// stdout bytes.
        out: String,
        /// stderr bytes.
        err: String,
        /// Files to write locally, as `(path, content)`.
        files: Vec<(String, String)>,
    },
    /// Run locally instead; print this warning on stderr first.
    Fallback(String),
}

/// Extracts `--remote SOCKET` / `--remote-or-local SOCKET` (either
/// position, `=` form accepted) from the argument list, removing them.
///
/// # Errors
///
/// A usage message (exit 1) for a missing value or both flags at once.
pub fn extract_remote_flags(args: &mut Vec<String>) -> Result<Option<RemoteOpts>, String> {
    let mut found: Option<RemoteOpts> = None;
    let mut i = 0;
    while i < args.len() {
        let (name, inline) = match args[i].split_once('=') {
            Some((n, v)) => (n.to_string(), Some(v.to_string())),
            None => (args[i].clone(), None),
        };
        if name != "--remote" && name != "--remote-or-local" {
            i += 1;
            continue;
        }
        if found.is_some() {
            return Err("pass only one of --remote / --remote-or-local".to_string());
        }
        let socket = match inline {
            Some(v) => {
                args.remove(i);
                v
            }
            None => {
                if i + 1 >= args.len() {
                    return Err(format!("{name} needs a socket path"));
                }
                let v = args.remove(i + 1);
                args.remove(i);
                v
            }
        };
        if socket.len() > MAX_SOCKET_PATH {
            return Err(format!(
                "error[Z401]: socket path is {} bytes, but AF_UNIX paths are limited to \
                 {MAX_SOCKET_PATH} bytes on this platform; use a shorter path (e.g. under /tmp): \
                 '{socket}'",
                socket.len()
            ));
        }
        found = Some(RemoteOpts {
            socket: PathBuf::from(socket),
            fallback_local: name == "--remote-or-local",
        });
    }
    Ok(found)
}

/// Collects the files a command line references so they can be inlined
/// into the request: any argument that names an existing regular file
/// (flag values like `--seed 42` never do; `@name` examples resolve
/// server-side). Over-collection is harmless — the server only reads
/// entries the command actually opens.
fn collect_sources(argv: &[String]) -> Vec<(String, String)> {
    let mut sources = Vec::new();
    for arg in argv.iter().skip(1) {
        if arg.starts_with('-') || arg.starts_with('@') {
            continue;
        }
        if sources.iter().any(|(p, _)| p == arg) {
            continue;
        }
        let path = std::path::Path::new(arg);
        if path.is_file() {
            if let Ok(text) = std::fs::read_to_string(path) {
                sources.push((arg.clone(), text));
            }
        }
    }
    // Values of file-taking flags are skipped by the positional scan
    // above only when they start with '-'; cover the explicit ones.
    let mut iter = argv.iter().peekable();
    while let Some(arg) = iter.next() {
        let value = match arg.split_once('=') {
            Some(("--vectors-file", v)) => Some(v.to_string()),
            None if arg == "--vectors-file" => iter.peek().map(|s| s.to_string()),
            _ => None,
        };
        if let Some(v) = value {
            if !sources.iter().any(|(p, _)| p == &v) {
                if let Ok(text) = std::fs::read_to_string(&v) {
                    sources.push((v, text));
                }
            }
        }
    }
    sources
}

/// Cheap random jitter without a dependency: the randomly-seeded
/// default hasher state, hashed once.
fn jitter_ms(max: u64) -> u64 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    if max == 0 {
        return 0;
    }
    RandomState::new().build_hasher().finish() % max
}

/// One request/response exchange over a fresh connection.
fn exchange(opts: &RemoteOpts, line: &str) -> Result<Response, String> {
    let mut stream = UnixStream::connect(&opts.socket)
        .map_err(|e| format!("cannot connect to {}: {e}", opts.socket.display()))?;
    // Generous guard rails so a wedged daemon cannot hang the client
    // forever; the server's own deadline fires well before these.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_read_timeout(Some(Duration::from_secs(600)));
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .map_err(|e| format!("cannot send request: {e}"))?;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut buf = String::new();
    stream
        .read_to_string(&mut buf)
        .map_err(|e| format!("cannot read response: {e}"))?;
    let line = buf.lines().next().unwrap_or("");
    if line.is_empty() {
        return Err("daemon closed the connection without responding".to_string());
    }
    Response::decode(line).map_err(|e| format!("malformed response: {e}"))
}

/// Runs `argv` against the daemon, with retries per the module docs.
pub fn run_remote(opts: &RemoteOpts, argv: &[String]) -> RemoteOutcome {
    let req = Request {
        id: std::process::id().into(),
        argv: argv.to_vec(),
        sources: collect_sources(argv),
        deadline_ms: None,
        chaos_panic: false,
    };
    let line = req.encode();
    let mut last_error = String::new();
    let mut saw_overload = false;
    for attempt in 0..MAX_ATTEMPTS {
        if attempt > 0 {
            let backoff = BASE_BACKOFF_MS << (attempt - 1);
            std::thread::sleep(Duration::from_millis(backoff + jitter_ms(backoff / 2 + 1)));
        }
        match exchange(opts, &line) {
            Ok(Response::Ok {
                code,
                out,
                err,
                files,
                ..
            }) => {
                return RemoteOutcome::Done {
                    code,
                    out,
                    err,
                    files,
                }
            }
            Ok(Response::Overloaded { retry_after_ms }) => {
                saw_overload = true;
                last_error = "daemon overloaded".to_string();
                // Honor the server's hint as a floor before the next
                // attempt's computed backoff kicks in.
                std::thread::sleep(Duration::from_millis(retry_after_ms));
            }
            Ok(Response::ShuttingDown) => {
                last_error = "daemon is shutting down".to_string();
            }
            Ok(Response::BadRequest { msg }) => {
                return RemoteOutcome::Done {
                    code: 1,
                    out: String::new(),
                    err: format!("daemon rejected the request: {msg}\n"),
                    files: Vec::new(),
                }
            }
            Err(e) => {
                last_error = e;
            }
        }
    }
    if opts.fallback_local {
        return RemoteOutcome::Fallback(format!(
            "warning: {last_error} after {MAX_ATTEMPTS} attempts; running locally"
        ));
    }
    let code = if saw_overload { 3 } else { 1 };
    RemoteOutcome::Done {
        code,
        out: String::new(),
        err: format!(
            "error: {last_error} after {MAX_ATTEMPTS} attempts (socket {})\n",
            opts.socket.display()
        ),
        files: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn extracts_remote_flag_anywhere() {
        let mut a = argv(&["sim", "--remote", "/tmp/z.sock", "@adders", "halfadder"]);
        let opts = extract_remote_flags(&mut a).unwrap().unwrap();
        assert_eq!(opts.socket, PathBuf::from("/tmp/z.sock"));
        assert!(!opts.fallback_local);
        assert_eq!(a, argv(&["sim", "@adders", "halfadder"]));

        let mut b = argv(&["fault", "@adders", "rippleCarry4", "--remote-or-local=/x"]);
        let opts = extract_remote_flags(&mut b).unwrap().unwrap();
        assert!(opts.fallback_local);
        assert_eq!(b, argv(&["fault", "@adders", "rippleCarry4"]));
    }

    #[test]
    fn rejects_conflicting_and_valueless_remote_flags() {
        let mut a = argv(&["sim", "--remote", "/a", "--remote-or-local", "/b"]);
        assert!(extract_remote_flags(&mut a).is_err());
        let mut b = argv(&["sim", "--remote"]);
        assert!(extract_remote_flags(&mut b).is_err());
    }

    #[test]
    fn overlong_socket_path_is_a_clear_usage_error() {
        // One byte past the platform limit: must be rejected up front
        // with a Z-coded message, not handed to connect(2).
        let long = format!("/tmp/{}", "s".repeat(MAX_SOCKET_PATH - 4));
        assert_eq!(long.len(), MAX_SOCKET_PATH + 1);
        let mut a = argv(&["sim", "--remote", &long, "@adders", "halfadder"]);
        let err = extract_remote_flags(&mut a).expect_err("over-long path rejected");
        assert!(err.contains("Z401"), "{err}");
        assert!(err.contains("AF_UNIX"), "{err}");
        assert!(err.contains(&format!("{MAX_SOCKET_PATH} bytes")), "{err}");
        // Exactly at the limit is fine (the parse layer's job ends here;
        // whether the socket exists is connect()'s business).
        let ok = format!("/tmp/{}", "s".repeat(MAX_SOCKET_PATH - 5));
        let mut b = argv(&["sim", "--remote", &ok, "@adders", "halfadder"]);
        assert!(extract_remote_flags(&mut b).unwrap().is_some());
    }

    #[test]
    fn no_remote_flags_is_none() {
        let mut a = argv(&["sim", "@adders", "halfadder"]);
        assert!(extract_remote_flags(&mut a).unwrap().is_none());
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn collects_existing_files_only() {
        let dir = std::env::temp_dir().join(format!("zeus-remote-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("a.zeus");
        std::fs::write(&src, "TYPE t = ...").unwrap();
        let srcs = collect_sources(&argv(&[
            "sim",
            src.to_str().unwrap(),
            "halfadder",
            "--seed",
            "42",
        ]));
        assert_eq!(srcs.len(), 1);
        assert_eq!(srcs[0].0, src.to_str().unwrap());
        assert_eq!(srcs[0].1, "TYPE t = ...");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
