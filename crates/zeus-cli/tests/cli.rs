//! End-to-end tests of the `zeusc` binary.

use std::process::Command;

fn zeusc(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_zeusc"))
        .args(args)
        .output()
        .expect("spawn zeusc");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn lists_examples() {
    let (ok, stdout, _) = zeusc(&["examples"]);
    assert!(ok);
    for name in ["@adders", "@blackjack", "@patternmatch", "@am2901"] {
        assert!(stdout.contains(name), "{stdout}");
    }
}

#[test]
fn checks_bundled_example() {
    let (ok, stdout, _) = zeusc(&["check", "@trees"]);
    assert!(ok);
    assert!(stdout.contains("ok"));
}

#[test]
fn elab_prints_stats() {
    let (ok, stdout, _) = zeusc(&["elab", "@adders", "rippleCarry", "8"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("registers : 0"));
    assert!(stdout.contains("port      : IN a [8 bit]"));
}

#[test]
fn layout_renders_chessboard() {
    let (ok, stdout, _) = zeusc(&["layout", "@chessboard", "chessboard", "4"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("WBWB"));
    assert!(stdout.contains("area 16"));
}

#[test]
fn synth_counts_transistors() {
    let (ok, stdout, _) = zeusc(&["synth", "@adders", "fulladder"]);
    assert!(ok);
    assert!(stdout.contains("transistors"));
}

#[test]
fn print_is_reparsable() {
    let (ok, stdout, _) = zeusc(&["print", "@mux"]);
    assert!(ok);
    assert!(zeus::Zeus::parse(&stdout).is_ok(), "{stdout}");
}

#[test]
fn unknown_example_fails_cleanly() {
    let (ok, _, stderr) = zeusc(&["check", "@nonexistent"]);
    assert!(!ok);
    assert!(stderr.contains("no bundled example"));
}

#[test]
fn elaboration_error_reports_position() {
    let dir = std::env::temp_dir().join("zeusc-test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("bad.zeus");
    std::fs::write(
        &file,
        "TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS\nSIGNAL x,y: boolean;\nBEGIN x := AND(a,y); y := NOT x; s := y END;",
    )
    .unwrap();
    let (ok, _, stderr) = zeusc(&["elab", file.to_str().unwrap(), "t"]);
    assert!(!ok);
    assert!(stderr.contains("combinational feedback loop"), "{stderr}");
}

#[test]
fn equiv_confirms_the_papers_claim() {
    let (ok, stdout, _) = zeusc(&[
        "equiv",
        "@adders",
        "rippleCarry4",
        "--vs",
        "rippleCarry",
        "4",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("equivalent"));
}

#[test]
fn equiv_reports_counterexamples() {
    let dir = std::env::temp_dir().join("zeusc-test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("pair.zeus");
    std::fs::write(
        &file,
        "TYPE f = COMPONENT (IN a,b: boolean; OUT s: boolean) IS BEGIN s := AND(a,b) END; \
         g = COMPONENT (IN a,b: boolean; OUT s: boolean) IS BEGIN s := OR(a,b) END;",
    )
    .unwrap();
    let (ok, _, stderr) = zeusc(&["equiv", file.to_str().unwrap(), "f", "--vs", "g"]);
    assert!(!ok);
    assert!(stderr.contains("NOT equivalent"), "{stderr}");
}

#[test]
fn sim_with_forced_inputs() {
    let (ok, stdout, _) = zeusc(&[
        "sim",
        "@adders",
        "rippleCarry4",
        "--cycles",
        "1",
        "--set",
        "a=9",
        "--set",
        "b=3",
        "--set",
        "cin=0",
    ]);
    assert!(ok, "{stdout}");
    // 9 + 3 = 12 = 0b1100, LSB-first rendering "0011".
    assert!(stdout.contains("s         : 0011"), "{stdout}");
}

#[test]
fn graph_emits_dot() {
    let (ok, stdout, _) = zeusc(&["graph", "@adders", "halfadder"]);
    assert!(ok);
    assert!(stdout.starts_with("digraph zeus {"));
    assert!(stdout.contains("Xor"));
}

#[test]
fn svg_emits_floorplan() {
    let (ok, stdout, _) = zeusc(&["svg", "@chessboard", "chessboard", "3"]);
    assert!(ok);
    assert!(stdout.starts_with("<svg"));
    assert!(stdout.contains("black"));
    assert!(stdout.contains("white"));
}

/// Like `zeusc`, but returns the raw exit code for contract tests.
fn zeusc_code(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_zeusc"))
        .args(args)
        .output()
        .expect("spawn zeusc");
    (
        out.status.code().expect("exit code (not a signal)"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn exit_code_0_on_success() {
    let (code, _, _) = zeusc_code(&["check", "@adders"]);
    assert_eq!(code, 0);
}

#[test]
fn exit_code_1_on_usage_and_io_errors() {
    let (code, _, _) = zeusc_code(&["frobnicate"]);
    assert_eq!(code, 1, "unknown command is a usage error");
    let (code, _, stderr) = zeusc_code(&["check", "/definitely/not/a/file.zeus"]);
    assert_eq!(code, 1, "{stderr}");
    let (code, _, stderr) = zeusc_code(&["elab", "@adders", "rippleCarry4", "--fuel", "lots"]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("--fuel"), "{stderr}");
}

#[test]
fn exit_code_2_on_program_diagnostics() {
    let dir = std::env::temp_dir().join("zeusc-test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("syntax-error.zeus");
    std::fs::write(&file, "TYPE t = COMPONENT (IN a boolean) IS BEGIN END;").unwrap();
    let (code, _, stderr) = zeusc_code(&["check", file.to_str().unwrap()]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("error[Z0"), "{stderr}");
}

#[test]
fn exit_code_3_when_instance_budget_trips() {
    let (code, _, stderr) = zeusc_code(&[
        "elab",
        "@routing",
        "routingnetwork",
        "8",
        "--max-instances",
        "5",
    ]);
    assert_eq!(code, 3, "{stderr}");
    assert!(stderr.contains("error[Z901]"), "{stderr}");
}

#[test]
fn exit_code_3_when_net_budget_trips() {
    let (code, _, stderr) = zeusc_code(&[
        "elab",
        "@routing",
        "routingnetwork",
        "8",
        "--max-nets",
        "10",
    ]);
    assert_eq!(code, 3, "{stderr}");
    assert!(stderr.contains("error[Z902]"), "{stderr}");
}

#[test]
fn exit_code_3_when_fuel_runs_out() {
    let (code, _, stderr) = zeusc_code(&[
        "sim",
        "@adders",
        "rippleCarry4",
        "--cycles",
        "4",
        "--fuel",
        "3",
    ]);
    assert_eq!(code, 3, "{stderr}");
    assert!(stderr.contains("error[Z904]"), "{stderr}");
    assert!(stderr.contains("fuel"), "{stderr}");
}

#[test]
fn exit_code_3_when_deadline_passes() {
    // A zero deadline is already expired when elaboration starts; the
    // amortized deadline check must cancel the run instead of hanging.
    let (code, _, stderr) =
        zeusc_code(&["elab", "@routing", "routingnetwork", "8", "--timeout", "0"]);
    assert_eq!(code, 3, "{stderr}");
    assert!(stderr.contains("error[Z905]"), "{stderr}");
}

#[test]
fn fault_campaign_exact_coverage() {
    // Pinned numbers: the CI fault-smoke job relies on this exact
    // coverage for @adders/rippleCarry4 with seed 1 and 64 vectors.
    let (code, stdout, stderr) = zeusc_code(&[
        "fault",
        "@adders",
        "--top",
        "rippleCarry4",
        "--vectors",
        "64",
        "--seed",
        "1",
    ]);
    assert_eq!(code, 0, "{stderr}");
    assert!(
        stdout.contains("universe: 182 faults enumerated, 114 collapsed, 68 simulated"),
        "{stdout}"
    );
    assert!(
        stdout.contains("coverage: 68/68 detected (100.0%), 0 undetected, 0 hyperactive"),
        "{stdout}"
    );
    assert!(stdout.contains("per-fault classification:"), "{stdout}");
    assert!(stdout.contains("detected at cycle"), "{stdout}");
}

#[test]
fn fault_json_is_deterministic_across_runs() {
    let args = &[
        "fault",
        "@adders",
        "--top",
        "rippleCarry4",
        "--vectors",
        "16",
        "--seed",
        "7",
        "--json",
    ];
    let (c1, out1, _) = zeusc_code(args);
    let (c2, out2, _) = zeusc_code(args);
    assert_eq!((c1, c2), (0, 0));
    assert_eq!(out1, out2, "same seed+vectors must be byte-identical");
    assert!(out1.starts_with("{\"top\":\"rippleCarry4\""), "{out1}");
}

#[test]
fn fault_prints_seed_on_stderr_when_omitted() {
    let (code, _, stderr) =
        zeusc_code(&["fault", "@adders", "--top", "halfadder", "--vectors", "4"]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stderr.contains("--seed"), "{stderr}");
    assert!(stderr.contains("reproduce"), "{stderr}");
}

#[test]
fn sim_prints_default_seed_on_stderr() {
    let (code, _, stderr) = zeusc_code(&["sim", "@adders", "halfadder", "--cycles", "1"]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stderr.contains("seed"), "{stderr}");
    // With an explicit seed there is nothing to announce.
    let (code, _, stderr) = zeusc_code(&[
        "sim",
        "@adders",
        "halfadder",
        "--cycles",
        "1",
        "--seed",
        "5",
    ]);
    assert_eq!(code, 0, "{stderr}");
    assert!(!stderr.contains("seed"), "{stderr}");
}

#[test]
fn fault_switch_engine_runs() {
    let (code, stdout, stderr) = zeusc_code(&[
        "fault",
        "@adders",
        "--top",
        "halfadder",
        "--vectors",
        "16",
        "--seed",
        "3",
        "--engine",
        "switch",
    ]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("(switch engine"), "{stdout}");
}

#[test]
fn fault_rejects_unknown_engine() {
    let (code, _, stderr) = zeusc_code(&[
        "fault",
        "@adders",
        "--top",
        "halfadder",
        "--engine",
        "quantum",
    ]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("unknown engine"), "{stderr}");
}

#[test]
fn fault_budget_exhaustion_is_reported_not_fatal() {
    // A tiny fuel budget classifies faults as budget-exhausted but the
    // campaign itself succeeds (it is a report, not a failure).
    let (code, stdout, stderr) = zeusc_code(&[
        "fault",
        "@adders",
        "--top",
        "rippleCarry4",
        "--vectors",
        "64",
        "--seed",
        "1",
        "--fuel",
        "300",
    ]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("budget-exhausted"), "{stdout}");
}

#[test]
fn generous_limits_do_not_interfere() {
    let (code, stdout, stderr) = zeusc_code(&[
        "sim",
        "@adders",
        "rippleCarry4",
        "--cycles",
        "2",
        "--set",
        "a=1",
        "--set",
        "b=1",
        "--set",
        "cin=0",
        "--fuel",
        "1000000",
        "--timeout",
        "60000",
    ]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("cycles    : 2"), "{stdout}");
}

// ---------------------------------------------------------------------
// Flag-position and help contract
// ---------------------------------------------------------------------

#[test]
fn flags_are_accepted_in_any_position() {
    // The historical bug: `--cycles` after the file was swallowed as the
    // top component and died with error[Z201].
    let (code, out1, stderr) = zeusc_code(&[
        "sim", "@counter", "--cycles", "4", "counter", "6", "--seed", "1",
    ]);
    assert_eq!(code, 0, "{stderr}");
    let (code, out2, _) = zeusc_code(&[
        "sim", "@counter", "counter", "6", "--cycles", "4", "--seed", "1",
    ]);
    assert_eq!(code, 0);
    let (code, out3, _) = zeusc_code(&[
        "sim", "--seed", "1", "--cycles", "4", "@counter", "counter", "6",
    ]);
    assert_eq!(code, 0);
    assert_eq!(out1, out2);
    assert_eq!(out1, out3);
}

#[test]
fn flag_equals_value_form_is_accepted() {
    let (code, stdout, stderr) =
        zeusc_code(&["sim", "@adders", "halfadder", "--cycles=2", "--seed=1"]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("cycles    : 2"), "{stdout}");
}

#[test]
fn unknown_flags_are_usage_errors() {
    let (code, _, stderr) = zeusc_code(&["sim", "@adders", "halfadder", "--frobnicate"]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("unknown flag '--frobnicate'"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
    // Also for flags that exist on other commands only.
    let (code, _, stderr) = zeusc_code(&["elab", "@adders", "halfadder", "--vectors", "4"]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("unknown flag '--vectors'"), "{stderr}");
}

#[test]
fn help_exits_zero_in_all_spellings() {
    for args in [
        &["--help"][..],
        &["-h"][..],
        &["help"][..],
        &["help", "fault"][..],
        &["sim", "--help"][..],
        &["fault", "-h"][..],
    ] {
        let (code, stdout, stderr) = zeusc_code(args);
        assert_eq!(code, 0, "{args:?}: {stderr}");
        assert!(stdout.contains("zeusc"), "{args:?}: {stdout}");
    }
    let (_, stdout, _) = zeusc_code(&["help", "fault"]);
    assert!(stdout.contains("--jobs"), "{stdout}");
    let (_, stdout, _) = zeusc_code(&["help"]);
    for cmd in ["check", "sim", "fault", "equiv", "examples"] {
        assert!(stdout.contains(cmd), "{stdout}");
    }
}

#[test]
fn help_for_unknown_command_is_a_usage_error() {
    let (code, _, stderr) = zeusc_code(&["help", "frobnicate"]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("unknown command"), "{stderr}");
}

// ---------------------------------------------------------------------
// Packed campaigns
// ---------------------------------------------------------------------

#[test]
fn packed_fault_reports_are_byte_identical_to_scalar() {
    let base = &[
        "fault",
        "@adders",
        "--top",
        "rippleCarry4",
        "--vectors",
        "64",
        "--seed",
        "1",
    ];
    let (c_scalar, text_scalar, _) = zeusc_code(base);
    let mut packed_args = base.to_vec();
    packed_args.extend(["--packed", "--jobs", "4"]);
    let (c_packed, text_packed, stderr) = zeusc_code(&packed_args);
    assert_eq!((c_scalar, c_packed), (0, 0), "{stderr}");
    assert_eq!(
        text_scalar, text_packed,
        "text reports must be byte-identical"
    );

    let mut json_scalar_args = base.to_vec();
    json_scalar_args.push("--json");
    let mut json_packed_args = packed_args.clone();
    json_packed_args.push("--json");
    let (_, json_scalar, _) = zeusc_code(&json_scalar_args);
    let (_, json_packed, _) = zeusc_code(&json_packed_args);
    assert_eq!(
        json_scalar, json_packed,
        "json reports must be byte-identical"
    );
}

#[test]
fn packed_jobs_do_not_change_the_report() {
    let run = |jobs: &str| {
        let (code, stdout, stderr) = zeusc_code(&[
            "fault",
            "@adders",
            "--top",
            "rippleCarry4",
            "--vectors",
            "16",
            "--seed",
            "7",
            "--packed",
            "--jobs",
            jobs,
            "--json",
        ]);
        assert_eq!(code, 0, "{stderr}");
        stdout
    };
    assert_eq!(
        run("1"),
        run("8"),
        "--jobs 1 and --jobs 8 must agree byte-for-byte"
    );
}

#[test]
fn packed_budget_exhaustion_matches_scalar() {
    let base = &[
        "fault",
        "@adders",
        "--top",
        "rippleCarry4",
        "--vectors",
        "64",
        "--seed",
        "1",
        "--fuel",
        "300",
    ];
    let (c1, scalar, _) = zeusc_code(base);
    let mut packed = base.to_vec();
    packed.extend(["--packed", "--jobs", "2"]);
    let (c2, packed, stderr) = zeusc_code(&packed);
    assert_eq!((c1, c2), (0, 0), "{stderr}");
    assert!(scalar.contains("budget-exhausted"), "{scalar}");
    assert_eq!(
        scalar, packed,
        "budget classifications must agree byte-for-byte"
    );
}

#[test]
fn jobs_implies_packed_and_rejects_switch() {
    let (code, _, stderr) = zeusc_code(&[
        "fault",
        "@adders",
        "--top",
        "halfadder",
        "--engine",
        "switch",
        "--jobs",
        "2",
    ]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("graph engine"), "{stderr}");
    let (code, _, stderr) = zeusc_code(&["fault", "@adders", "--top", "halfadder", "--jobs", "0"]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("--jobs"), "{stderr}");
}

#[test]
fn packed_sim_output_matches_scalar_sim() {
    let base = &[
        "sim",
        "@adders",
        "rippleCarry4",
        "--cycles",
        "3",
        "--seed",
        "2",
        "--set",
        "a=9",
        "--set",
        "b=3",
        "--set",
        "cin=1",
    ];
    let (c1, scalar, _) = zeusc_code(base);
    let mut packed_args = base.to_vec();
    packed_args.push("--packed");
    let (c2, packed, stderr) = zeusc_code(&packed_args);
    assert_eq!((c1, c2), (0, 0), "{stderr}");
    assert_eq!(scalar, packed, "--packed sim must print identical output");
}

#[test]
fn packed_sim_budget_errors_match_scalar() {
    let base = &[
        "sim",
        "@adders",
        "rippleCarry4",
        "--cycles",
        "4",
        "--fuel",
        "3",
    ];
    let (c1, _, err_scalar) = zeusc_code(base);
    let mut packed_args = base.to_vec();
    packed_args.push("--packed");
    let (c2, _, err_packed) = zeusc_code(&packed_args);
    assert_eq!(
        (c1, c2),
        (3, 3),
        "both engines must exit 3 on fuel exhaustion"
    );
    assert!(err_scalar.contains("error[Z904]"), "{err_scalar}");
    assert!(err_packed.contains("error[Z904]"), "{err_packed}");
}

// ---------------------------------------------------------------------
// Checkpoint, resume and interruption
// ---------------------------------------------------------------------

fn tmp_journal(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("zeusc-ckpt-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}.jsonl", std::process::id()))
}

/// Truncates a journal to its header plus the first `keep` entries,
/// simulating a run that crashed mid-campaign.
fn truncate_journal(path: &std::path::Path, keep: usize) {
    let text = std::fs::read_to_string(path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 1, "journal has a header and entries: {text}");
    let mut out = lines[..(1 + keep).min(lines.len())].join("\n");
    out.push('\n');
    std::fs::write(path, out).unwrap();
}

#[test]
fn fault_seed_is_echoed_into_json_report() {
    let (code, stdout, stderr) = zeusc_code(&[
        "fault",
        "@adders",
        "--top",
        "halfadder",
        "--vectors",
        "8",
        "--seed",
        "424242",
        "--json",
    ]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("\"seed\":424242"), "{stdout}");
}

#[test]
fn fault_checkpoint_resume_reproduces_the_report_byte_for_byte() {
    // rippleCarry4 enumerates 68 faults = 2 words, so a 1-entry prefix
    // really does leave work to resume.
    let base = &[
        "fault",
        "@adders",
        "--top",
        "rippleCarry4",
        "--vectors",
        "16",
        "--seed",
        "7",
        "--json",
    ];
    let (code, straight, stderr) = zeusc_code(base);
    assert_eq!(code, 0, "{stderr}");

    for jobs in [None, Some("2")] {
        let path = tmp_journal(&format!("resume-{}", jobs.unwrap_or("scalar")));
        let _ = std::fs::remove_file(&path);
        let mut args = base.to_vec();
        args.extend(["--checkpoint", path.to_str().unwrap()]);
        if let Some(j) = jobs {
            args.extend(["--jobs", j]);
        }
        let (code, full, stderr) = zeusc_code(&args);
        assert_eq!(code, 0, "{stderr}");
        assert_eq!(full, straight, "checkpointing must not change the report");

        truncate_journal(&path, 1);
        let mut args = args.clone();
        args.push("--resume");
        let (code, resumed, stderr) = zeusc_code(&args);
        assert_eq!(code, 0, "{stderr}");
        assert_eq!(resumed, straight, "resumed report must be byte-identical");
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn fault_resume_recovers_seed_from_checkpoint() {
    let path = tmp_journal("seedrec");
    let _ = std::fs::remove_file(&path);
    let (code, _, stderr) = zeusc_code(&[
        "fault",
        "@adders",
        "--top",
        "rippleCarry4",
        "--vectors",
        "8",
        "--seed",
        "777",
        "--checkpoint",
        path.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{stderr}");
    truncate_journal(&path, 0);
    // No --seed on the resume: it must come back from the header.
    let (code, stdout, stderr) = zeusc_code(&[
        "fault",
        "@adders",
        "--top",
        "rippleCarry4",
        "--vectors",
        "8",
        "--checkpoint",
        path.to_str().unwrap(),
        "--resume",
        "--json",
    ]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stderr.contains("recovered from checkpoint"), "{stderr}");
    assert!(stdout.contains("\"seed\":777"), "{stdout}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn fault_resume_requires_checkpoint_flag() {
    let (code, _, stderr) = zeusc_code(&["fault", "@adders", "--top", "halfadder", "--resume"]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("--checkpoint"), "{stderr}");
}

#[test]
fn fault_resume_rejects_a_mismatched_campaign() {
    let path = tmp_journal("mismatch");
    let _ = std::fs::remove_file(&path);
    let base = [
        "fault",
        "@adders",
        "--top",
        "halfadder",
        "--vectors",
        "8",
        "--checkpoint",
        path.to_str().unwrap(),
    ];
    let (code, _, stderr) = zeusc_code(&[&base[..], &["--seed", "1"]].concat());
    assert_eq!(code, 0, "{stderr}");
    let (code, _, stderr) = zeusc_code(&[&base[..], &["--seed", "2", "--resume"]].concat());
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("different campaign"), "{stderr}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn fault_campaign_timeout_reports_partially_with_exit_3() {
    let (code, stdout, stderr) = zeusc_code(&[
        "fault",
        "@adders",
        "--top",
        "rippleCarry4",
        "--vectors",
        "16",
        "--seed",
        "1",
        "--campaign-timeout",
        "0",
        "--json",
    ]);
    assert_eq!(code, 3, "{stderr}");
    assert!(stdout.contains("\"partial\":true"), "{stdout}");
    assert!(
        stdout.contains("\"partial_reason\":\"deadline\""),
        "{stdout}"
    );
    assert!(stderr.contains("--campaign-timeout"), "{stderr}");
}

/// First Ctrl-C: drain in-flight words, flush the checkpoint, report
/// partially, exit 130 — then a resume completes to the byte-identical
/// full report.
#[cfg(unix)]
#[test]
fn sigint_flushes_the_checkpoint_and_resume_completes() {
    use std::io::Read;
    use std::time::Duration;

    // Scalar on purpose: it completes (and journals) fault words from
    // the start, so the SIGINT lands on a checkpoint with progress in
    // it; the packed path front-loads a golden-trace recording.
    let base = &[
        "fault",
        "@adders",
        "--top",
        "rippleCarry",
        "32",
        "--vectors",
        "8192",
        "--seed",
        "5",
        "--json",
    ];
    let (code, straight, stderr) = zeusc_code(base);
    assert_eq!(code, 0, "{stderr}");

    let path = tmp_journal("sigint");
    let _ = std::fs::remove_file(&path);
    let mut args = base.to_vec();
    args.extend(["--checkpoint", path.to_str().unwrap()]);
    let mut child = Command::new(env!("CARGO_BIN_EXE_zeusc"))
        .args(&args)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn zeusc");
    std::thread::sleep(Duration::from_millis(300));
    let _ = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status();
    let mut stdout = String::new();
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut stdout)
        .unwrap();
    let status = child.wait().unwrap();

    match status.code() {
        // The campaign outran the signal: nothing to resume, but the
        // report must be the complete one.
        Some(0) => assert_eq!(stdout, straight),
        Some(130) => {
            assert!(stdout.contains("\"partial\":true"), "{stdout}");
            assert!(
                stdout.contains("\"partial_reason\":\"interrupted\""),
                "{stdout}"
            );
            assert!(path.exists(), "checkpoint was flushed");
            let mut args = args.clone();
            args.push("--resume");
            let (code, resumed, stderr) = zeusc_code(&args);
            assert_eq!(code, 0, "{stderr}");
            assert_eq!(resumed, straight, "resume completes byte-identically");
        }
        other => panic!("unexpected exit: {other:?}\n{stdout}"),
    }
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------
// atpg
// ---------------------------------------------------------------------

#[test]
fn atpg_reports_full_coverage_on_ripple_carry() {
    let (ok, stdout, _) = zeusc(&["atpg", "@adders", "rippleCarry4", "--seed", "7"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("combinational mode"), "{stdout}");
    assert!(stdout.contains("coverage: 100.00%"), "{stdout}");
}

#[test]
fn atpg_same_seed_runs_are_byte_identical() {
    let args = [
        "atpg", "@sorter", "sorter", "4", "2", "--seed", "9", "--json",
    ];
    let (ok1, a, _) = zeusc(&args);
    let (ok2, b, _) = zeusc(&args);
    assert!(ok1 && ok2);
    assert_eq!(a, b, "same-seed JSON reports must be byte-identical");
    assert!(a.contains("\"tool\":\"zeus-atpg\""), "{a}");
}

#[test]
fn atpg_emitted_vectors_replay_to_the_same_grade() {
    let dir = std::env::temp_dir().join("zeusc-test");
    std::fs::create_dir_all(&dir).unwrap();
    let vec_path = dir.join("rc4-atpg.vec");
    let vec_str = vec_path.to_str().unwrap();

    let (ok, stdout, _) = zeusc(&[
        "atpg",
        "@adders",
        "rippleCarry4",
        "--seed",
        "7",
        "--json",
        "--emit-vectors",
        vec_str,
    ]);
    assert!(ok, "{stdout}");
    let grade_start = stdout.find("\"grade\":").expect("grade field") + "\"grade\":".len();
    // The grade object runs to the report's closing brace.
    let claimed = &stdout[grade_start..stdout.trim_end().len() - 1];

    // Re-grade the emitted file; the seed comes from the file header.
    let (ok, regrade, stderr) = zeusc(&[
        "fault",
        "@adders",
        "rippleCarry4",
        "--vectors-file",
        vec_str,
        "--json",
    ]);
    assert!(ok, "{regrade}");
    assert!(stderr.contains("recovered from vector file"), "{stderr}");
    assert_eq!(
        regrade.trim_end(),
        claimed,
        "replay must reproduce the grade"
    );
    let _ = std::fs::remove_file(&vec_path);
}

#[test]
fn atpg_coverage_target_failure_exits_2() {
    // Zero vectors can't cover anything: an explicit target must turn
    // that into exit 2.
    let (code, stdout, stderr) = zeusc_code(&[
        "atpg",
        "@adders",
        "rippleCarry4",
        "--seed",
        "7",
        "--max-vectors",
        "0",
        "--coverage-target",
        "95",
    ]);
    assert_eq!(code, 2, "{stdout}\n{stderr}");
    assert!(stderr.contains("below the target"), "{stderr}");
}

#[test]
fn fault_rejects_vectors_file_with_vectors() {
    let (code, _, stderr) = zeusc_code(&[
        "fault",
        "@adders",
        "rippleCarry4",
        "--vectors-file",
        "/nonexistent.vec",
        "--vectors",
        "8",
    ]);
    assert_eq!(code, 1);
    assert!(stderr.contains("don't also pass --vectors"), "{stderr}");
}

#[test]
fn fault_rejects_vector_file_for_wrong_design() {
    let dir = std::env::temp_dir().join("zeusc-test");
    std::fs::create_dir_all(&dir).unwrap();
    let vec_path = dir.join("mux-atpg.vec");
    let vec_str = vec_path.to_str().unwrap();
    let (ok, _, _) = zeusc(&[
        "atpg",
        "@mux",
        "muxtop",
        "--seed",
        "3",
        "--emit-vectors",
        vec_str,
    ]);
    assert!(ok);
    let (code, _, stderr) = zeusc_code(&[
        "fault",
        "@adders",
        "rippleCarry4",
        "--vectors-file",
        vec_str,
    ]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("Z301"), "{stderr}");
    let _ = std::fs::remove_file(&vec_path);
}

// -------------------------------------------------------------------
// Flag hygiene: zero is rejected for counts, legal for budgets.
// -------------------------------------------------------------------

#[test]
fn zero_valued_count_flags_are_usage_errors() {
    // A count of zero is always a typo: rejecting it with the usage
    // exit beats silently clamping to something the user didn't ask
    // for.
    let cases: &[&[&str]] = &[
        &["fault", "@adders", "rippleCarry4", "--vectors", "0"],
        &["sim", "@adders", "rippleCarry4", "--cycles", "0"],
        &["elab", "@adders", "rippleCarry4", "--max-instances", "0"],
        &["elab", "@adders", "rippleCarry4", "--max-nets", "0"],
        &["fault", "@adders", "rippleCarry4", "--jobs", "0"],
    ];
    for args in cases {
        let (code, _, stderr) = zeusc_code(args);
        assert_eq!(code, 1, "{args:?}: {stderr}");
        assert!(stderr.contains("must be at least 1"), "{args:?}: {stderr}");
    }
}

#[test]
fn vectors_flag_rejects_values_past_u32() {
    let (code, _, stderr) = zeusc_code(&[
        "fault",
        "@adders",
        "rippleCarry4",
        "--vectors",
        "4294967296",
    ]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("too large"), "{stderr}");
}

#[test]
fn zero_budget_flags_stay_legal() {
    // Budgets (time, fuel) mean "immediately exhausted" at zero, not
    // "invalid": they keep their historical exit-3 behavior.
    let (code, _, stderr) =
        zeusc_code(&["elab", "@routing", "routingnetwork", "8", "--timeout", "0"]);
    assert_eq!(code, 3, "{stderr}");
}

// -------------------------------------------------------------------
// Remote routing flags (the daemon itself is tested in zeus-daemon).
// -------------------------------------------------------------------

#[test]
fn remote_flag_requires_a_socket_value() {
    let (code, _, stderr) = zeusc_code(&["elab", "@adders", "rippleCarry4", "--remote"]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("--remote"), "{stderr}");
}

#[cfg(unix)]
#[test]
fn remote_without_daemon_fails_after_retries() {
    let (code, _, stderr) = zeusc_code(&[
        "elab",
        "@adders",
        "rippleCarry4",
        "--remote",
        "/tmp/zeusc-test-no-such-daemon.sock",
    ]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("after 5 attempts"), "{stderr}");
}

#[cfg(unix)]
#[test]
fn remote_or_local_falls_back_with_a_warning() {
    let (code, stdout, stderr) = zeusc_code(&[
        "sim",
        "@adders",
        "rippleCarry4",
        "--cycles",
        "2",
        "--seed",
        "1",
        "--remote-or-local",
        "/tmp/zeusc-test-no-such-daemon.sock",
    ]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("cycles"), "{stdout}");
    assert!(stderr.contains("running locally"), "{stderr}");
}

#[test]
fn sigint_mid_atpg_emits_the_partial_vector_set() {
    use std::io::Read;
    use std::time::Duration;

    let vec_path =
        std::env::temp_dir().join(format!("zeusc-test-atpg-sigint-{}.vec", std::process::id()));
    let _ = std::fs::remove_file(&vec_path);
    let args = &[
        "atpg",
        "@adders",
        "--top",
        "rippleCarry",
        "64",
        "--seed",
        "5",
        "--emit-vectors",
        vec_path.to_str().unwrap(),
    ];
    let mut child = Command::new(env!("CARGO_BIN_EXE_zeusc"))
        .args(args)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn zeusc");
    std::thread::sleep(Duration::from_millis(500));
    let _ = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status();
    let mut stdout = String::new();
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut stdout)
        .unwrap();
    let status = child.wait().unwrap();

    match status.code() {
        // ATPG outran the signal: a complete run, no partial marker.
        Some(0) => assert!(!stdout.contains("PARTIAL"), "{stdout}"),
        Some(130) => {
            assert!(stdout.contains("PARTIAL"), "{stdout}");
            // The vectors generated so far were still emitted, flagged
            // as incomplete but replayable.
            let emitted = std::fs::read_to_string(&vec_path).expect("partial set emitted");
            assert!(emitted.starts_with("zeus-vectors"), "{emitted}");
            assert!(emitted.contains("# PARTIAL"), "{emitted}");
        }
        other => panic!("unexpected exit: {other:?}\n{stdout}"),
    }
    let _ = std::fs::remove_file(&vec_path);
}

// ---------------------------------------------------------------------
// zeusc fuzz
// ---------------------------------------------------------------------

#[test]
fn fuzz_prints_default_seed_on_stderr() {
    let (code, _, stderr) = zeusc_code(&["fuzz", "--budget", "1"]);
    assert_eq!(code, 0, "{stderr}");
    assert!(
        stderr.contains("seed      : 772086147 (default; pass --seed to vary)"),
        "{stderr}"
    );
    // With an explicit seed there is nothing to announce.
    let (code, _, stderr) = zeusc_code(&["fuzz", "--budget", "1", "--seed", "5"]);
    assert_eq!(code, 0, "{stderr}");
    assert!(!stderr.contains("seed"), "{stderr}");
}

#[test]
fn fuzz_clean_budget_exits_zero() {
    let (code, stdout, stderr) = zeusc_code(&["fuzz", "--budget", "4", "--seed", "3"]);
    assert_eq!(code, 0, "{stdout}\n{stderr}");
    assert!(stdout.contains("failures  : 0 raw, 0 unique"), "{stdout}");
}

#[test]
fn fuzz_chaos_finds_persists_and_replays() {
    let corpus = std::env::temp_dir().join("zeusc-fuzz-test-chaos");
    let _ = std::fs::remove_dir_all(&corpus);
    let corpus_s = corpus.to_str().unwrap();
    let (code, stdout, stderr) = zeusc_code(&[
        "fuzz",
        "--seed",
        "9",
        "--budget",
        "4",
        "--chaos",
        "scalar-vs-packed",
        "--shrink-evals",
        "16",
        "--corpus",
        corpus_s,
    ]);
    assert_eq!(code, 2, "{stdout}\n{stderr}");
    assert!(stdout.contains("scalar-vs-packed:Z301:"), "{stdout}");
    // The reproducer path is on stdout and the file exists.
    let line = stdout
        .lines()
        .find(|l| l.starts_with("reproducer: "))
        .expect("reproducer path on stdout");
    let path = line.trim_start_matches("reproducer: ");
    let text = std::fs::read_to_string(path).expect("reproducer written");
    assert!(text.starts_with("<* zeus-fuzz reproducer v1"), "{text}");
    // Replaying it still fails (exit 2)...
    let (code, stdout, _) = zeusc_code(&["fuzz", "--replay", path]);
    assert_eq!(code, 2, "{stdout}");
    assert!(stdout.contains("REPRODUCED"), "{stdout}");
    let _ = std::fs::remove_dir_all(&corpus);
}

#[test]
fn fuzz_is_byte_deterministic_across_runs_and_jobs() {
    let run = |jobs: &str, tag: &str| {
        let corpus = std::env::temp_dir().join(format!("zeusc-fuzz-test-det-{tag}"));
        let _ = std::fs::remove_dir_all(&corpus);
        let corpus_s = corpus.to_str().unwrap().to_string();
        let (code, stdout, _) = zeusc_code(&[
            "fuzz",
            "--seed",
            "11",
            "--budget",
            "6",
            "--jobs",
            jobs,
            "--chaos",
            "scalar-vs-packed",
            "--shrink-evals",
            "16",
            "--corpus",
            &corpus_s,
        ]);
        assert_eq!(code, 2, "{stdout}");
        let mut files: Vec<(String, String)> = std::fs::read_dir(&corpus)
            .expect("corpus dir")
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read_to_string(e.path()).unwrap(),
                )
            })
            .collect();
        files.sort();
        let _ = std::fs::remove_dir_all(&corpus);
        // The report is deterministic; the corpus path is not part of it.
        let report = stdout.replace(&corpus_s, "CORPUS");
        (report, files)
    };
    let a = run("1", "a");
    let b = run("4", "b");
    assert_eq!(a.0, b.0, "report differs between --jobs 1 and --jobs 4");
    assert_eq!(a.1, b.1, "reproducers differ between --jobs 1 and --jobs 4");
}

#[test]
fn fuzz_rejects_unknown_chaos_oracle() {
    let (code, _, stderr) = zeusc_code(&["fuzz", "--budget", "1", "--chaos", "bogus"]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("unknown --chaos oracle"), "{stderr}");
}
