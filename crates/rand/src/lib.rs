//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so the workspace provides this minimal, dependency-free implementation
//! of the `rand` 0.8 API subset the Zeus toolchain actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] and
//! [`Rng::gen_range`]. Generation is fully deterministic per seed (an
//! xoshiro256** generator seeded via splitmix64), which is exactly what
//! the simulators and tests want: reproducible pseudo-random streams.
//!
//! It is *not* a cryptographic or statistically rigorous RNG and makes no
//! attempt at stream compatibility with the real `rand` crate.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniformly distributed value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (`0.0 <= p <= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        // 53 uniform mantissa bits give a uniform f64 in [0, 1).
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ready-made generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256** core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, as the real rand does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(0..16u64);
            assert!(v < 16);
            let w: i64 = r.gen_range(1..=10i64);
            assert!((1..=10).contains(&w));
            let z: u64 = r.gen_range(0..=0u64);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(1);
        let ones = (0..1000).filter(|_| r.gen::<bool>()).count();
        assert!((300..700).contains(&ones), "{ones}");
    }
}
