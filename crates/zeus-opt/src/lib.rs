//! # zeus-opt
//!
//! Equivalence-gated netlist optimization for Zeus designs.
//!
//! [`optimize`] runs a pass pipeline over the flat semantics graph of an
//! elaborated [`Design`] — constant folding through the four-valued
//! domain, chain/tree collapse of associative gates, structural hashing
//! (common-subexpression merging), copy propagation and dead-logic
//! sweeping — until a fixed point, then compacts the net numbering and
//! *verifies* the result against the original design before returning
//! it: exhaustive input enumeration on small combinational designs,
//! packed pseudo-random lockstep simulation elsewhere. A divergence is a
//! `Z999` internal error and no optimized netlist is emitted.
//!
//! The returned design carries `optimized = true`, which is folded into
//! [`zeus_elab::design_digest`]: an optimized design never shares a
//! digest with the elaboration it came from, so checkpoint journals of
//! optimized and unoptimized campaigns can never be spliced together.
//!
//! Designs containing RANDOM sources are returned unchanged (only
//! flagged): the simulator draws RANDOM values in topological node
//! order, so any structural rewrite would legally — but observably —
//! reshuffle the pseudo-random stream.
//!
//! ## Example
//!
//! ```
//! use zeus_syntax::parse_program;
//! use zeus_elab::elaborate;
//! use zeus_opt::{optimize, OptConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "TYPE t = COMPONENT (IN a,b: boolean; OUT s: boolean) IS
//!      SIGNAL x: boolean;
//!      BEGIN x := AND(a,b); s := OR(x, AND(a,b)) END;",
//! )?;
//! let design = elaborate(&program, "t", &[])?;
//! let out = optimize(&design, &OptConfig::default())?;
//! assert!(out.report.after.gates < out.report.before.gates);
//! assert!(out.design.optimized);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod passes;
mod verify;

pub use verify::Verification;

use std::collections::HashMap;
use zeus_elab::{Design, Limits, NetId, Netlist, NodeOp};
use zeus_syntax::diag::Diagnostic;
use zeus_syntax::span::Span;

/// Tuning knobs for [`optimize`].
#[derive(Debug, Clone)]
pub struct OptConfig {
    /// Combinational designs with at most this many IN-port bits are
    /// verified exhaustively; everything else falls back to packed
    /// lockstep simulation.
    pub max_exhaustive_bits: u32,
    /// Lockstep trials, each from a fresh reset (registers re-start
    /// undefined, so distinct trials explore distinct converging runs).
    pub lockstep_rounds: u32,
    /// Clock cycles simulated per lockstep trial.
    pub lockstep_cycles: u32,
    /// Seed of the lockstep stimulus generator.
    pub seed: u64,
    /// Resource budget for the verification simulations.
    pub limits: Limits,
    /// Upper bound on pipeline iterations (a safety net — the pipeline
    /// stops at the first iteration that changes nothing).
    pub max_iterations: u32,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            max_exhaustive_bits: 16,
            lockstep_rounds: 4,
            lockstep_cycles: 64,
            seed: 0x5eed_2e05,
            limits: Limits::default(),
            max_iterations: 32,
        }
    }
}

/// Rewrites applied by one pass across the whole pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassStats {
    /// Pass name (stable, machine-readable).
    pub name: &'static str,
    /// Total rewrites the pass applied, summed over iterations.
    pub rewrites: usize,
}

/// Structural measurements of a design, as reported pre/post optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metrics {
    /// Semantics-graph nodes (gates, switches, registers, constants).
    pub gates: usize,
    /// Levelized combinational depth: the longest driver chain between
    /// sources (inputs, registers, constants) and sinks.
    pub depth: usize,
    /// Canonical nets — the alias-class representatives. This is the
    /// design's structural fault universe: `zeusc fault` plants faults
    /// per representative net.
    pub nets: usize,
}

/// Measures a design.
pub fn metrics(design: &Design) -> Metrics {
    let nl = &design.netlist;
    let order = nl.topo_order().unwrap_or_default();
    let drivers = nl.drivers_by_net();
    let mut level = vec![0usize; nl.node_count()];
    let mut depth = 0usize;
    for id in order {
        let node = &nl.nodes[id.index()];
        let mut l = 1usize;
        for inp in &node.inputs {
            for d in &drivers[inp.index()] {
                if !nl.nodes[d.index()].op.is_sequential() {
                    l = l.max(level[d.index()] + 1);
                }
            }
        }
        level[id.index()] = l;
        depth = depth.max(l);
    }
    Metrics {
        gates: nl.node_count(),
        depth,
        nets: nl.representatives().count(),
    }
}

/// What [`optimize`] did to a design.
#[derive(Debug, Clone)]
pub struct OptReport {
    /// Measurements of the input design.
    pub before: Metrics,
    /// Measurements of the optimized design.
    pub after: Metrics,
    /// Rewrites per pass, pipeline order.
    pub passes: Vec<PassStats>,
    /// Pipeline iterations until the fixed point.
    pub iterations: u32,
    /// True when the design contains RANDOM sources and was deliberately
    /// left untouched.
    pub skipped_random: bool,
    /// How the result was verified against the original.
    pub verification: Verification,
}

impl OptReport {
    /// Total rewrites across all passes.
    pub fn total_rewrites(&self) -> usize {
        self.passes.iter().map(|p| p.rewrites).sum()
    }
}

/// The result of [`optimize`]: the rewritten design and its report.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The verified optimized design (`optimized` flag set).
    pub design: Design,
    /// What happened.
    pub report: OptReport,
}

/// Runs the pass pipeline on `design` and verifies the result.
///
/// # Errors
///
/// * the equivalence gate found a divergence (`Z999` — the optimized
///   netlist is withheld),
/// * the verification simulations exhausted `cfg.limits` (`Z9xx`),
/// * `design` is not finished/elaborated.
pub fn optimize(design: &Design, cfg: &OptConfig) -> Result<Optimized, Diagnostic> {
    if !design.netlist.is_finished() {
        return Err(Diagnostic::error(
            Span::dummy(),
            "optimizer requires a finished (elaborated) netlist",
        ));
    }
    let before = metrics(design);

    if design.netlist.nodes.iter().any(|n| n.op == NodeOp::Random) {
        let mut out = design.clone();
        out.optimized = true;
        return Ok(Optimized {
            design: out,
            report: OptReport {
                before,
                after: before,
                passes: Vec::new(),
                iterations: 0,
                skipped_random: true,
                verification: Verification::Unchanged,
            },
        });
    }

    let mut rw = passes::Rewriter::new(design);
    let mut stats = [
        PassStats {
            name: "const-fold",
            rewrites: 0,
        },
        PassStats {
            name: "chain-collapse",
            rewrites: 0,
        },
        PassStats {
            name: "cse",
            rewrites: 0,
        },
        PassStats {
            name: "buf-elim",
            rewrites: 0,
        },
        PassStats {
            name: "dead-sweep",
            rewrites: 0,
        },
    ];
    let mut iterations = 0u32;
    while iterations < cfg.max_iterations {
        iterations += 1;
        let round = [
            passes::const_fold(&mut rw),
            passes::chain_collapse(&mut rw),
            passes::cse(&mut rw),
            passes::buf_elim(&mut rw),
            passes::dead_sweep(&mut rw),
        ];
        for (s, r) in stats.iter_mut().zip(round) {
            s.rewrites += r;
        }
        if round.iter().sum::<usize>() == 0 {
            break;
        }
    }

    let total: usize = stats.iter().map(|s| s.rewrites).sum();
    let out = rebuild(design, &rw)?;

    // The rebuild keeps every net exactly when nothing was rewritten and
    // nothing was compacted away; then the graphs are identical and no
    // check is needed.
    let verification = if total == 0
        && out.netlist.net_count() == design.netlist.net_count()
        && out.netlist.node_count() == design.netlist.node_count()
    {
        Verification::Unchanged
    } else {
        verify::verify_equivalent(design, &out, cfg)?
    };

    let after = metrics(&out);
    Ok(Optimized {
        design: out,
        report: OptReport {
            before,
            after,
            passes: stats.to_vec(),
            iterations,
            skipped_random: false,
            verification,
        },
    })
}

/// Rebuilds a compact, finished [`Design`] from the rewriter state:
/// surviving nodes keep their relative order; nets survive when an alive
/// node references them or they represent a port/CLK/RSET alias class;
/// the union-find becomes the identity (every alias class collapsed to
/// one net). The digest changes (net numbering, `optimized` flag), which
/// is exactly what keeps optimized checkpoints apart from unoptimized
/// ones.
fn rebuild(orig: &Design, rw: &passes::Rewriter) -> Result<Design, Diagnostic> {
    let nl = &orig.netlist;
    let mut keep = vec![false; nl.net_count()];
    for (i, node) in rw.nodes.iter().enumerate() {
        if !rw.alive[i] {
            continue;
        }
        for inp in &node.inputs {
            keep[inp.index()] = true;
        }
        keep[node.output.index()] = true;
    }
    for p in &orig.ports {
        for &n in &p.nets {
            keep[nl.find_ref(n).index()] = true;
        }
    }
    if let Some(c) = orig.clk {
        keep[nl.find_ref(c).index()] = true;
    }
    if let Some(r) = orig.rset {
        keep[nl.find_ref(r).index()] = true;
    }

    let mut remap: Vec<Option<NetId>> = vec![None; nl.net_count()];
    let mut nets = Vec::new();
    for i in 0..nl.net_count() {
        if keep[i] {
            remap[i] = Some(NetId(nets.len() as u32));
            nets.push(nl.nets[i].clone());
        }
    }
    let map = |n: NetId| -> NetId {
        remap[nl.find_ref(n).index()].expect("every referenced net class survives compaction")
    };

    let mut nodes = Vec::with_capacity(rw.alive_count());
    for (i, node) in rw.nodes.iter().enumerate() {
        if !rw.alive[i] {
            continue;
        }
        let mut node = node.clone();
        for inp in &mut node.inputs {
            *inp = map(*inp);
        }
        node.output = map(node.output);
        nodes.push(node);
    }

    let alias: Vec<u32> = (0..nets.len() as u32).collect();
    let netlist = Netlist::from_raw_parts(
        nets,
        nodes,
        nl.group_constraints.clone(),
        nl.group_parents.clone(),
        alias,
        true,
    );
    netlist.topo_order().map_err(|d| {
        Diagnostic::internal(
            Span::dummy(),
            format!("optimizer produced a cyclic netlist: {}", d.message),
        )
    })?;

    let mut ports = orig.ports.clone();
    for p in &mut ports {
        for n in &mut p.nets {
            *n = map(*n);
        }
    }
    let names: HashMap<String, NetId> = orig
        .names
        .iter()
        .filter_map(|(k, &v)| remap[nl.find_ref(v).index()].map(|n| (k.clone(), n)))
        .collect();

    Ok(Design {
        netlist,
        top_type: orig.top_type.clone(),
        ports,
        instances: orig.instances.clone(),
        warnings: orig.warnings.clone(),
        clk: orig.clk.map(map),
        rset: orig.rset.map(map),
        names,
        optimized: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_elab::elaborate;
    use zeus_syntax::parse_program;

    fn design(src: &str, top: &str) -> Design {
        elaborate(&parse_program(src).unwrap(), top, &[]).unwrap()
    }

    fn opt(src: &str, top: &str) -> Optimized {
        optimize(&design(src, top), &OptConfig::default()).unwrap()
    }

    #[test]
    fn cse_merges_duplicate_gates() {
        let out = opt(
            "TYPE t = COMPONENT (IN a,b: boolean; OUT s: boolean) IS \
             SIGNAL x,y: boolean; \
             BEGIN x := AND(a,b); y := AND(a,b); s := OR(x,y) END;",
            "t",
        );
        assert!(out.report.after.gates < out.report.before.gates);
        assert!(matches!(
            out.report.verification,
            Verification::Exhaustive { .. }
        ));
    }

    #[test]
    fn chain_collapse_cuts_depth() {
        // OR(OR(OR(a,b),c),d): depth 3 -> one 4-ary OR, depth 1.
        let out = opt(
            "TYPE t = COMPONENT (IN a,b,c,d: boolean; OUT s: boolean) IS \
             BEGIN s := OR(OR(OR(a,b),c),d) END;",
            "t",
        );
        assert_eq!(out.report.after.depth, 1, "{:?}", out.report);
        assert_eq!(out.report.after.gates, 1, "{:?}", out.report);
    }

    #[test]
    fn const_fold_through_the_cone() {
        // b := AND(a, 0) is constant 0; s := OR(b, c) becomes Buf-free OR(c)
        // and the whole cone folds away from the gate count.
        let out = opt(
            "TYPE t = COMPONENT (IN a,c: boolean; OUT s: boolean) IS \
             SIGNAL b: boolean; \
             BEGIN b := AND(a, 0); s := OR(b, c) END;",
            "t",
        );
        assert!(out.report.total_rewrites() > 0, "{:?}", out.report);
        assert!(out.report.after.gates < out.report.before.gates);
    }

    #[test]
    fn registers_survive_and_lockstep_verifies() {
        let out = opt(
            "TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
             SIGNAL r: REG; SIGNAL x,y: boolean; \
             BEGIN x := AND(a,a); y := AND(a,a); r(OR(x,y), s) END;",
            "t",
        );
        assert!(matches!(
            out.report.verification,
            Verification::Lockstep { .. }
        ));
        assert_eq!(
            out.design.netlist.registers().count(),
            1,
            "the observable register must survive"
        );
    }

    #[test]
    fn optimized_design_has_a_distinct_digest() {
        let d = design(
            "TYPE t = COMPONENT (IN a,b: boolean; OUT s: boolean) IS \
             BEGIN s := AND(a,b) END;",
            "t",
        );
        let out = optimize(&d, &OptConfig::default()).unwrap();
        assert!(out.design.optimized);
        assert_ne!(
            zeus_elab::design_digest(&d),
            zeus_elab::design_digest(&out.design),
            "optimized and unoptimized digests must never collide"
        );
    }

    #[test]
    fn pipeline_is_idempotent() {
        let out = opt(
            "TYPE t = COMPONENT (IN a,b,c,d: boolean; OUT s: boolean) IS \
             SIGNAL x,y: boolean; \
             BEGIN x := AND(a,b); y := AND(a,b); \
             s := OR(OR(OR(x,y),c),d) END;",
            "t",
        );
        let again = optimize(&out.design, &OptConfig::default()).unwrap();
        assert_eq!(again.report.total_rewrites(), 0, "{:?}", again.report);
        assert_eq!(again.report.verification, Verification::Unchanged);
        assert_eq!(
            zeus_elab::design_to_text(&out.design),
            zeus_elab::design_to_text(&again.design),
            "a second run must be byte-identical"
        );
    }

    #[test]
    fn random_designs_are_left_alone() {
        let out = opt(
            "TYPE t = COMPONENT (OUT s: boolean) IS \
             BEGIN s := RANDOM() END;",
            "t",
        );
        assert!(out.report.skipped_random);
        assert_eq!(out.report.total_rewrites(), 0);
        assert!(out.design.optimized, "still flagged for digest separation");
    }
}
