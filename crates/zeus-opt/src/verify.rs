//! The equivalence gate: the optimizer refuses to emit a rewritten
//! netlist it cannot verify against the original.
//!
//! Small combinational designs are checked *exhaustively* — every input
//! vector over the four-valued boolean domain, via
//! [`zeus_sim::check_equivalent_with`]. Everything else (registers, or
//! too many input bits) runs a *packed random lockstep*: both designs
//! simulate the same pseudo-random stimulus in 64 lanes at a time, from
//! a common RSET pulse, and every OUT-port bit is compared after every
//! cycle. Lockstep is a falsifier, not a proof — the pass pipeline's
//! per-rewrite soundness arguments carry the correctness burden; the
//! gate is the independent check that refuses to ship when they are ever
//! wrong.

use rand::{Rng, SeedableRng};
use zeus_elab::{Design, NetId};
use zeus_sim::{check_equivalent_with, PackedSim, PackedWord, LANES};
use zeus_syntax::diag::Diagnostic;
use zeus_syntax::span::Span;

use crate::OptConfig;

/// How a rewritten design was verified against its original.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verification {
    /// The pipeline changed nothing: the netlists are identical, no
    /// check was needed.
    Unchanged,
    /// Exhaustive input enumeration over `vectors` four-valued input
    /// vectors (combinational designs within the input-bit budget).
    Exhaustive {
        /// Number of input vectors simulated on both designs.
        vectors: u64,
    },
    /// Packed pseudo-random lockstep simulation.
    Lockstep {
        /// Independent trials, each from a fresh RSET pulse.
        rounds: u32,
        /// Clock cycles per trial.
        cycles: u32,
        /// Stimulus lanes per cycle (64 per packed word).
        lanes: u32,
    },
}

impl std::fmt::Display for Verification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verification::Unchanged => write!(f, "unchanged (no check needed)"),
            Verification::Exhaustive { vectors } => {
                write!(f, "exhaustive ({vectors} input vectors)")
            }
            Verification::Lockstep {
                rounds,
                cycles,
                lanes,
            } => write!(
                f,
                "lockstep ({rounds} rounds x {cycles} cycles x {lanes} lanes)"
            ),
        }
    }
}

/// Total IN-port bits of a design.
fn input_bits(design: &Design) -> u32 {
    design.inputs().map(|p| p.width() as u32).sum()
}

/// Verifies that `opt` is observably equivalent to `orig` at the ports,
/// choosing the strongest affordable check.
///
/// # Errors
///
/// A divergence returns a `Z999` internal diagnostic (an optimizer bug —
/// the rewritten netlist must not be used); resource-limit diagnostics
/// from the governed exhaustive check propagate unchanged.
pub(crate) fn verify_equivalent(
    orig: &Design,
    opt: &Design,
    cfg: &OptConfig,
) -> Result<Verification, Diagnostic> {
    let combinational = orig.netlist.registers().count() == 0;
    let bits = input_bits(orig);
    if combinational && bits <= cfg.max_exhaustive_bits {
        let mut limits = cfg.limits.clone();
        limits.max_input_bits = cfg.max_exhaustive_bits;
        match check_equivalent_with(orig, opt, &limits)? {
            None => Ok(Verification::Exhaustive {
                // 3 values per boolean input bit (0, 1, UNDEF).
                vectors: 3u64.saturating_pow(bits),
            }),
            Some(ce) => Err(Diagnostic::internal(
                Span::dummy(),
                format!("optimizer produced a non-equivalent netlist: {ce}"),
            )),
        }
    } else {
        lockstep(orig, opt, cfg)
    }
}

/// One IN-port bit of each design, paired by interface position. The
/// two netlists number their nets independently, so the stimulus must be
/// addressed per design.
fn paired_input_nets(orig: &Design, opt: &Design) -> Vec<(NetId, NetId)> {
    orig.inputs()
        .flat_map(|p| {
            let other = opt
                .port(&p.name)
                .expect("optimizer preserves the port interface");
            p.nets.iter().copied().zip(other.nets.iter().copied())
        })
        .collect()
}

/// Packed pseudo-random lockstep comparison (see module docs).
fn lockstep(orig: &Design, opt: &Design, cfg: &OptConfig) -> Result<Verification, Diagnostic> {
    let ins = paired_input_nets(orig, opt);
    let outs: Vec<(String, Vec<(NetId, NetId)>)> = orig
        .outputs()
        .map(|p| {
            let other = opt
                .port(&p.name)
                .expect("optimizer preserves the port interface");
            (
                p.name.clone(),
                p.nets
                    .iter()
                    .copied()
                    .zip(other.nets.iter().copied())
                    .collect(),
            )
        })
        .collect();

    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    for round in 0..cfg.lockstep_rounds {
        let mut sa = PackedSim::with_limits(orig.clone(), &cfg.limits)?;
        let mut sb = PackedSim::with_limits(opt.clone(), &cfg.limits)?;
        // Common reset: one cycle with RSET high and all inputs 0, so
        // designs with a reset net start from the same defined state.
        sa.set_rset(true);
        sb.set_rset(true);
        for &(na, nb) in &ins {
            sa.force(na, PackedWord::ZERO);
            sb.force(nb, PackedWord::ZERO);
        }
        sa.try_step()?;
        sb.try_step()?;
        sa.set_rset(false);
        sb.set_rset(false);

        for cycle in 0..cfg.lockstep_cycles {
            for &(na, nb) in &ins {
                // Per lane a uniformly random defined bit: hi holds the
                // ones, lo the zeros.
                let hi: u64 = rng.gen();
                let w = PackedWord { lo: !hi, hi };
                sa.force(na, w);
                sb.force(nb, w);
            }
            sa.try_step()?;
            sb.try_step()?;
            for (port, bits) in &outs {
                for (bit, &(na, nb)) in bits.iter().enumerate() {
                    let wa = sa.value(na).to_boolean();
                    let wb = sb.value(nb).to_boolean();
                    let diff = wa.diff(wb);
                    if diff != 0 {
                        let lane = diff.trailing_zeros() as usize;
                        return Err(Diagnostic::internal(
                            Span::dummy(),
                            format!(
                                "optimizer produced a non-equivalent netlist: output \
                                 '{port}' bit {bit} diverges in lockstep round {round}, \
                                 cycle {cycle}, lane {lane}: original={}, optimized={}",
                                wa.get(lane),
                                wb.get(lane),
                            ),
                        ));
                    }
                }
            }
        }
    }
    Ok(Verification::Lockstep {
        rounds: cfg.lockstep_rounds,
        cycles: cfg.lockstep_cycles,
        lanes: LANES as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_elab::elaborate;
    use zeus_syntax::parse_program;

    fn design(src: &str, top: &str) -> Design {
        elaborate(&parse_program(src).unwrap(), top, &[]).unwrap()
    }

    #[test]
    fn gate_refuses_a_non_equivalent_combinational_rewrite() {
        let a = design(
            "TYPE t = COMPONENT (IN a,b: boolean; OUT s: boolean) IS \
             BEGIN s := AND(a,b) END;",
            "t",
        );
        let b = design(
            "TYPE t = COMPONENT (IN a,b: boolean; OUT s: boolean) IS \
             BEGIN s := OR(a,b) END;",
            "t",
        );
        let err = verify_equivalent(&a, &b, &OptConfig::default())
            .expect_err("AND vs OR must be refused");
        assert!(err.message.contains("non-equivalent"), "{}", err.message);
    }

    #[test]
    fn gate_refuses_a_non_equivalent_sequential_rewrite() {
        let a = design(
            "TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
             SIGNAL r: REG; BEGIN r(a, s) END;",
            "t",
        );
        let b = design(
            "TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
             SIGNAL r: REG; SIGNAL n: boolean; \
             BEGIN n := NOT(a); r(n, s) END;",
            "t",
        );
        let err = verify_equivalent(&a, &b, &OptConfig::default())
            .expect_err("inverted register feed must be refused");
        assert!(err.message.contains("diverges"), "{}", err.message);
    }

    #[test]
    fn gate_accepts_an_identical_sequential_pair() {
        let src = "TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
                   SIGNAL r: REG; BEGIN r(a, s) END;";
        let a = design(src, "t");
        let b = design(src, "t");
        let v = verify_equivalent(&a, &b, &OptConfig::default()).unwrap();
        assert!(matches!(v, Verification::Lockstep { .. }));
    }
}
