//! The rewrite passes of the optimizer.
//!
//! Every pass operates on a [`Rewriter`] — a mutable working copy of a
//! *finished* netlist (all node references canonical) — and returns how
//! many rewrites it applied. Passes only ever apply rewrites that are
//! exact in the four-valued domain: a rewritten node must contribute the
//! same raw value (including NOINFL-vs-UNDEF distinctions) to its output
//! net on every cycle, for every input assignment, or the rewrite must be
//! provably unobservable at the ports. The soundness arguments live next
//! to each rewrite; the per-value laws they rest on are enumerated
//! exhaustively in the unit tests below, and the whole pipeline is
//! additionally equivalence-checked end to end by [`crate::verify`].
//!
//! Nets are never renumbered here; dead nets are swept by the final
//! compaction in [`crate::optimize`].

use std::collections::BTreeMap;
use zeus_elab::{Design, NetId, Node, NodeOp};
use zeus_sema::value::{self, Value};

/// Cap on the input arity a chain collapse may produce, so a
/// pathological (fuzz-generated) chain cannot degenerate into one
/// enormous node.
const MAX_COLLAPSED_ARITY: usize = 256;

/// A mutable working copy of a design's node array plus the immutable
/// facts rewrites consult.
pub(crate) struct Rewriter {
    /// Working copy of the nodes (indices stable; dead ones flagged).
    pub nodes: Vec<Node>,
    /// Liveness per node index.
    pub alive: Vec<bool>,
    /// Per net index: true when the net belongs to the alias class of a
    /// top-level port, CLK or RSET — nets the outside world may force or
    /// observe. Rewrites that change *which net a reader reads* or *who
    /// drives a net* must skip protected nets; rewrites that keep a
    /// node's contribution bit-identical are safe everywhere.
    pub protected: Vec<bool>,
    net_count: usize,
}

impl Rewriter {
    /// Builds the working copy. `design.netlist` must be finished.
    pub(crate) fn new(design: &Design) -> Rewriter {
        let nl = &design.netlist;
        let mut protected = vec![false; nl.net_count()];
        for p in &design.ports {
            for &n in &p.nets {
                protected[nl.find_ref(n).index()] = true;
            }
        }
        if let Some(c) = design.clk {
            protected[nl.find_ref(c).index()] = true;
        }
        if let Some(r) = design.rset {
            protected[nl.find_ref(r).index()] = true;
        }
        Rewriter {
            nodes: nl.nodes.clone(),
            alive: vec![true; nl.nodes.len()],
            protected,
            net_count: nl.net_count(),
        }
    }

    /// Number of alive nodes.
    pub(crate) fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Occurrence count of each net across all alive nodes' inputs
    /// (sequential readers included — a register's data input is a read).
    fn reader_occurrences(&self) -> Vec<u32> {
        let mut occ = vec![0u32; self.net_count];
        for (i, n) in self.nodes.iter().enumerate() {
            if !self.alive[i] {
                continue;
            }
            for inp in &n.inputs {
                occ[inp.index()] += 1;
            }
        }
        occ
    }

    /// Alive driver nodes per net.
    fn drivers(&self) -> Vec<Vec<usize>> {
        let mut d = vec![Vec::new(); self.net_count];
        for (i, n) in self.nodes.iter().enumerate() {
            if self.alive[i] {
                d[n.output.index()].push(i);
            }
        }
        d
    }

    /// A topological order of the alive combinational nodes (local Kahn —
    /// [`zeus_elab::Netlist::topo_order`] works on the original node
    /// array, not the working copy).
    fn topo(&self) -> Vec<usize> {
        let drivers = self.drivers();
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (bi, b) in self.nodes.iter().enumerate() {
            if !self.alive[bi] || b.op.is_sequential() {
                continue;
            }
            for inp in &b.inputs {
                for &a in &drivers[inp.index()] {
                    if self.nodes[a].op.is_sequential() {
                        continue;
                    }
                    edges[a].push(bi);
                    indegree[bi] += 1;
                }
            }
        }
        let mut queue: Vec<usize> = (0..n)
            .filter(|&i| self.alive[i] && !self.nodes[i].op.is_sequential() && indegree[i] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let x = queue[head];
            head += 1;
            order.push(x);
            for &m in &edges[x] {
                indegree[m] -= 1;
                if indegree[m] == 0 {
                    queue.push(m);
                }
            }
        }
        order
    }
}

/// Evaluates one combinational operation on fully known input values,
/// with exactly the functions the simulator fires (§8).
fn eval_op(op: &NodeOp, vals: &[Value]) -> Value {
    match op {
        NodeOp::And => value::and(vals.iter().copied()),
        NodeOp::Or => value::or(vals.iter().copied()),
        NodeOp::Nand => value::nand(vals.iter().copied()),
        NodeOp::Nor => value::nor(vals.iter().copied()),
        NodeOp::Xor => value::xor(vals.iter().copied()),
        NodeOp::Not => vals[0].not(),
        NodeOp::Equal { width } => {
            let (a, b) = vals.split_at(*width);
            value::equal(a, b)
        }
        NodeOp::Buf => vals[0],
        NodeOp::If => match vals[0].to_boolean() {
            Value::Zero => Value::NoInfl,
            Value::One => vals[1],
            _ => Value::Undef,
        },
        NodeOp::Const(v) => *v,
        // Unreachable in practice: callers never ask for these.
        NodeOp::Random | NodeOp::Reg => Value::Undef,
    }
}

/// Resolves the static value of net `i`, memoized in `net_static`.
///
/// A net is statically known only when it is unforceable from outside
/// (not a port/CLK/RSET class) and every alive driver's contribution is
/// known with at most one of them active. A net with two or more
/// statically active drivers is a runtime conflict the optimizer
/// deliberately leaves unknown — `zeusc sim` keeps reporting it.
fn resolve_net(
    i: usize,
    protected: &[bool],
    drivers: &[Vec<usize>],
    contribution: &[Option<Value>],
    net_static: &mut [Option<Value>],
    net_done: &mut [bool],
) {
    if net_done[i] {
        return;
    }
    net_done[i] = true;
    if protected[i] {
        return; // forceable from outside: unknown
    }
    let mut active: Option<Value> = None;
    for &d in &drivers[i] {
        match contribution[d] {
            None => return, // unknown driver
            Some(Value::NoInfl) => {}
            Some(v) => {
                if active.is_some() {
                    return; // static conflict: leave to the runtime check
                }
                active = Some(v);
            }
        }
    }
    net_static[i] = Some(active.unwrap_or(Value::NoInfl));
}

/// Constant folding through the four-valued domain.
///
/// Statically known net values are propagated in topological order (see
/// [`resolve_net`] for when a net is known). Rewrites — all
/// contribution-exact, so protected output nets are fine:
///
/// * all inputs known → the node becomes `Const(v)` (or dies when `v` is
///   NOINFL — a contribution of NOINFL is no contribution at all),
/// * dominance: AND/NAND with a known-0 input, OR/NOR with a known-1
///   input, EQUAL with a known defined-unequal pair fold regardless of
///   the remaining inputs,
/// * neutral elements: known-1 inputs of AND/NAND and known-0 inputs of
///   OR/NOR/XOR are dropped; known-1 XOR inputs cancel pairwise; known
///   defined-equal EQUAL pairs are dropped (the width shrinks),
/// * `IF` with a known condition: 0 → the switch dies, 1 → `Buf(data)`
///   (raw-value exact), UNDEF/NOINFL → `Const(UNDEF)` (§8).
pub(crate) fn const_fold(rw: &mut Rewriter) -> usize {
    let order = rw.topo();
    let drivers = rw.drivers();

    // Analysis: per-node static contribution, per-net static value.
    let mut contribution: Vec<Option<Value>> = vec![None; rw.nodes.len()];
    let mut net_static: Vec<Option<Value>> = vec![None; rw.net_count];
    let mut net_done: Vec<bool> = vec![false; rw.net_count];
    for &ni in &order {
        let node = &rw.nodes[ni];
        contribution[ni] = match &node.op {
            NodeOp::Const(v) => Some(*v),
            NodeOp::Random | NodeOp::Reg => None,
            op => {
                let mut vals = Vec::with_capacity(node.inputs.len());
                let mut all = true;
                for inp in &node.inputs {
                    resolve_net(
                        inp.index(),
                        &rw.protected,
                        &drivers,
                        &contribution,
                        &mut net_static,
                        &mut net_done,
                    );
                    match net_static[inp.index()] {
                        Some(v) => vals.push(v),
                        None => {
                            all = false;
                            break;
                        }
                    }
                }
                if all {
                    Some(eval_op(op, &vals))
                } else {
                    None
                }
            }
        };
    }

    // Rewrites. `stat` only consults nets resolved above; an unresolved
    // net (read by no combinational node in topo order) is unknown here.
    let stat = |n: NetId| net_static[n.index()];
    let nodes = &mut rw.nodes;
    let alive = &mut rw.alive;
    let mut changes = 0usize;
    for ni in 0..nodes.len() {
        if !alive[ni] {
            continue;
        }
        if matches!(
            nodes[ni].op,
            NodeOp::Const(_) | NodeOp::Random | NodeOp::Reg
        ) {
            continue;
        }
        // Full fold: the node's contribution is the same every cycle.
        if let Some(v) = contribution[ni] {
            if v == Value::NoInfl {
                // Never drives: removing it is invisible even to the
                // conflict check.
                alive[ni] = false;
            } else {
                nodes[ni].op = NodeOp::Const(v);
                nodes[ni].inputs.clear();
            }
            changes += 1;
            continue;
        }
        let node = &mut nodes[ni];
        match node.op.clone() {
            NodeOp::And | NodeOp::Nand => {
                let is_and = node.op == NodeOp::And;
                if node.inputs.iter().any(|&i| stat(i) == Some(Value::Zero)) {
                    // 0 dominates the AND fold whatever the rest holds.
                    node.op = NodeOp::Const(if is_and { Value::Zero } else { Value::One });
                    node.inputs.clear();
                    changes += 1;
                } else {
                    // 1 is the neutral element of the AND fold.
                    let before = node.inputs.len();
                    node.inputs.retain(|&i| stat(i) != Some(Value::One));
                    if node.inputs.is_empty() && before > 0 {
                        node.op = NodeOp::Const(if is_and { Value::One } else { Value::Zero });
                        changes += 1;
                    } else if node.inputs.len() < before {
                        changes += 1;
                    }
                }
            }
            NodeOp::Or | NodeOp::Nor => {
                let is_or = node.op == NodeOp::Or;
                if node.inputs.iter().any(|&i| stat(i) == Some(Value::One)) {
                    node.op = NodeOp::Const(if is_or { Value::One } else { Value::Zero });
                    node.inputs.clear();
                    changes += 1;
                } else {
                    let before = node.inputs.len();
                    node.inputs.retain(|&i| stat(i) != Some(Value::Zero));
                    if node.inputs.is_empty() && before > 0 {
                        node.op = NodeOp::Const(if is_or { Value::Zero } else { Value::One });
                        changes += 1;
                    } else if node.inputs.len() < before {
                        changes += 1;
                    }
                }
            }
            NodeOp::Xor => {
                // 0 is neutral; two known 1s cancel. A lone known 1 must
                // stay (XOR(1, x) is NOT(x), a different node).
                let before = node.inputs.len();
                node.inputs.retain(|&i| stat(i) != Some(Value::Zero));
                let ones: Vec<usize> = node
                    .inputs
                    .iter()
                    .enumerate()
                    .filter(|&(_, &i)| stat(i) == Some(Value::One))
                    .map(|(k, _)| k)
                    .collect();
                let cancel = ones.len() - (ones.len() % 2);
                for &k in ones[..cancel].iter().rev() {
                    node.inputs.remove(k);
                }
                if node.inputs.is_empty() && before > 0 {
                    node.op = NodeOp::Const(Value::Zero);
                    changes += 1;
                } else if node.inputs.len() < before {
                    changes += 1;
                }
            }
            NodeOp::If => match stat(node.inputs[0]) {
                Some(Value::Zero) => {
                    // The switch is never closed: it never drives.
                    alive[ni] = false;
                    changes += 1;
                }
                Some(Value::One) => {
                    // Always closed: passes the data value through raw.
                    node.op = NodeOp::Buf;
                    node.inputs.remove(0);
                    changes += 1;
                }
                Some(Value::Undef) | Some(Value::NoInfl) => {
                    // An undefined condition yields UNDEF (§8).
                    node.op = NodeOp::Const(Value::Undef);
                    node.inputs.clear();
                    changes += 1;
                }
                None => {}
            },
            NodeOp::Equal { width } => {
                let defined = |v: Value| v.to_boolean().is_defined();
                let mut dominated = false;
                let mut keep: Vec<usize> = Vec::with_capacity(width);
                for k in 0..width {
                    match (stat(node.inputs[k]), stat(node.inputs[width + k])) {
                        (Some(a), Some(b)) if defined(a) && defined(b) => {
                            if a.to_boolean() != b.to_boolean() {
                                dominated = true; // defined unequal pair forces 0
                                break;
                            }
                            // Defined equal pair: contributes nothing; drop.
                        }
                        _ => keep.push(k),
                    }
                }
                if dominated {
                    node.op = NodeOp::Const(Value::Zero);
                    node.inputs.clear();
                    changes += 1;
                } else if keep.len() < width {
                    if keep.is_empty() {
                        node.op = NodeOp::Const(Value::One);
                        node.inputs.clear();
                    } else {
                        let mut inputs = Vec::with_capacity(keep.len() * 2);
                        inputs.extend(keep.iter().map(|&k| node.inputs[k]));
                        inputs.extend(keep.iter().map(|&k| node.inputs[width + k]));
                        node.op = NodeOp::Equal { width: keep.len() };
                        node.inputs = inputs;
                    }
                    changes += 1;
                }
            }
            _ => {}
        }
    }
    changes
}

/// Chain/tree collapse: `AND(AND(a,b),c)` → `AND(a,b,c)` (likewise OR and
/// XOR), which removes one gate *and* one logic level per application —
/// an iterated OR chain of depth n collapses to a single n-ary gate of
/// depth 1.
///
/// Soundness: the folds are associative in the four-valued domain
/// (dominant element, neutral element and UNDEF-absorption all compose;
/// enumerated in the tests). The inner gate's output net must be
/// unprotected, driven only by the inner gate, and read exactly once (by
/// the outer gate) so that splicing removes its one and only observation.
pub(crate) fn chain_collapse(rw: &mut Rewriter) -> usize {
    let mut occ = rw.reader_occurrences();
    let drivers = rw.drivers();
    // The unique alive driver of each net, if any.
    let mut unique_driver: Vec<Option<usize>> = drivers
        .iter()
        .map(|d| if d.len() == 1 { Some(d[0]) } else { None })
        .collect();

    let mut changes = 0usize;
    for ni in 0..rw.nodes.len() {
        if !rw.alive[ni] {
            continue;
        }
        let op = rw.nodes[ni].op.clone();
        if !matches!(op, NodeOp::And | NodeOp::Or | NodeOp::Xor) {
            continue;
        }
        let mut k = 0;
        while k < rw.nodes[ni].inputs.len() {
            let m = rw.nodes[ni].inputs[k];
            let mi = m.index();
            let splice = (!rw.protected[mi] && occ[mi] == 1)
                .then(|| unique_driver[mi])
                .flatten()
                .filter(|&d| d != ni && rw.alive[d] && rw.nodes[d].op == op)
                .filter(|&d| {
                    rw.nodes[ni].inputs.len() - 1 + rw.nodes[d].inputs.len() <= MAX_COLLAPSED_ARITY
                });
            match splice {
                Some(d) => {
                    let inner = rw.nodes[d].inputs.clone();
                    rw.nodes[ni].inputs.splice(k..k + 1, inner);
                    rw.alive[d] = false;
                    occ[mi] -= 1;
                    unique_driver[mi] = None;
                    changes += 1;
                    // Re-examine position k: the spliced-in inputs may
                    // head further chains.
                }
                None => k += 1,
            }
        }
    }
    changes
}

/// Structural hashing / common-subexpression merging: two alive nodes
/// with the same operation and the same input list (sorted for the
/// commutative folds) compute the same value every cycle, so every reader
/// of the later node's output is rewired to the earlier one's and the
/// later node dies.
///
/// Both output nets must be unprotected and single-driver: the merge
/// relies on `net value ≡ node contribution`, which only holds for an
/// unforced, singly-driven net. RANDOM nodes never merge (two RANDOM
/// sources draw distinct streams); registers do (same data net → same
/// latched trajectory from the shared UNDEF reset).
pub(crate) fn cse(rw: &mut Rewriter) -> usize {
    // Driver counts only shrink as merged nodes die, and a dead node's
    // output net is never revisited, so the snapshot stays conservative
    // for the whole sweep.
    let drivers = rw.drivers();
    let single = |n: NetId| drivers[n.index()].len() == 1;

    fn op_key(op: &NodeOp) -> (u64, u64) {
        match op {
            NodeOp::And => (0, 0),
            NodeOp::Or => (1, 0),
            NodeOp::Nand => (2, 0),
            NodeOp::Nor => (3, 0),
            NodeOp::Xor => (4, 0),
            NodeOp::Not => (5, 0),
            NodeOp::Equal { width } => (6, *width as u64),
            NodeOp::Buf => (7, 0),
            NodeOp::If => (8, 0),
            NodeOp::Const(Value::Zero) => (9, 0),
            NodeOp::Const(Value::One) => (9, 1),
            NodeOp::Const(Value::Undef) => (9, 2),
            NodeOp::Const(Value::NoInfl) => (9, 3),
            NodeOp::Random => (10, 0),
            NodeOp::Reg => (11, 0),
        }
    }

    let mut seen: BTreeMap<Vec<u64>, usize> = BTreeMap::new();
    let mut changes = 0usize;
    for ni in 0..rw.nodes.len() {
        if !rw.alive[ni] || rw.nodes[ni].op == NodeOp::Random {
            continue;
        }
        let out = rw.nodes[ni].output;
        if rw.protected[out.index()] || !single(out) {
            continue;
        }
        let (tag, param) = op_key(&rw.nodes[ni].op);
        let mut key: Vec<u64> = vec![tag, param];
        let mut ins: Vec<u64> = rw.nodes[ni].inputs.iter().map(|n| u64::from(n.0)).collect();
        if matches!(
            rw.nodes[ni].op,
            NodeOp::And | NodeOp::Or | NodeOp::Nand | NodeOp::Nor | NodeOp::Xor
        ) {
            ins.sort_unstable();
        }
        key.extend(ins);
        match seen.get(&key).copied() {
            Some(canon) => {
                let keep = rw.nodes[canon].output;
                for (oi, other) in rw.nodes.iter_mut().enumerate() {
                    if !rw.alive[oi] {
                        continue;
                    }
                    for inp in &mut other.inputs {
                        if *inp == out {
                            *inp = keep;
                        }
                    }
                }
                rw.alive[ni] = false;
                changes += 1;
            }
            None => {
                seen.insert(key, ni);
            }
        }
    }
    changes
}

/// Copy propagation, in both directions:
///
/// * *reader rewire* — a `Buf` whose output net is unprotected and
///   driven only by the Buf is a pure alias of its input net: every
///   reader is rewired to read the input directly and the Buf dies. (A
///   Buf passes the raw resolved value through, including NOINFL and
///   conflict UNDEFs, so readers observe exactly what they observed
///   before.)
/// * *driver retarget* — a `Buf` whose *input* net is unprotected,
///   single-driven and read by nobody else carries exactly its driver's
///   contribution; that driver's output is retargeted onto the Buf's
///   output net and the Buf dies. This is the rewrite that absorbs the
///   `Buf` an `s := expr` port assignment elaborates to: the Buf's
///   output may be a protected port net, because the net's resolved
///   value (and active-driver count) is preserved bit for bit. No
///   combinational cycle can appear: any path from the Buf's output back
///   into the driver's cone would have been a cycle through the Buf
///   already.
///
/// Snapshots of the driver/reader indices are invalidated by a retarget,
/// so the pass restarts its scan after every rewrite (Buf counts are
/// small).
pub(crate) fn buf_elim(rw: &mut Rewriter) -> usize {
    let mut changes = 0usize;
    'restart: loop {
        let drivers = rw.drivers();
        let occ = rw.reader_occurrences();
        for ni in 0..rw.nodes.len() {
            if !rw.alive[ni] || rw.nodes[ni].op != NodeOp::Buf {
                continue;
            }
            let out = rw.nodes[ni].output;
            let src = rw.nodes[ni].inputs[0];
            if !rw.protected[out.index()] && drivers[out.index()].len() == 1 {
                // Reader rewire.
                for (oi, other) in rw.nodes.iter_mut().enumerate() {
                    if !rw.alive[oi] || oi == ni {
                        continue;
                    }
                    for inp in &mut other.inputs {
                        if *inp == out {
                            *inp = src;
                        }
                    }
                }
                rw.alive[ni] = false;
                changes += 1;
                continue 'restart;
            }
            if !rw.protected[src.index()]
                && occ[src.index()] == 1
                && drivers[src.index()].len() == 1
            {
                // Driver retarget.
                let d = drivers[src.index()][0];
                if d != ni {
                    rw.nodes[d].output = out;
                    rw.alive[ni] = false;
                    changes += 1;
                    continue 'restart;
                }
            }
        }
        return changes;
    }
}

/// Dead-logic sweep: a node whose output net is unprotected and read by
/// nobody contributes to nothing observable — it dies, which may strand
/// its upstream cone for the next round (the loop runs to a fixed point).
pub(crate) fn dead_sweep(rw: &mut Rewriter) -> usize {
    let mut changes = 0usize;
    loop {
        let occ = rw.reader_occurrences();
        let mut round = 0usize;
        for ni in 0..rw.nodes.len() {
            if !rw.alive[ni] {
                continue;
            }
            let out = rw.nodes[ni].output;
            if !rw.protected[out.index()] && occ[out.index()] == 0 {
                rw.alive[ni] = false;
                round += 1;
            }
        }
        if round == 0 {
            return changes;
        }
        changes += round;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Value; 4] = [Value::Zero, Value::One, Value::Undef, Value::NoInfl];

    /// The neutral-element laws the partial folds rely on, enumerated
    /// over the whole domain.
    #[test]
    fn neutral_elements_are_exact() {
        for &x in &ALL {
            for &y in &ALL {
                assert_eq!(value::and([Value::One, x, y]), value::and([x, y]));
                assert_eq!(value::or([Value::Zero, x, y]), value::or([x, y]));
                assert_eq!(value::xor([Value::Zero, x, y]), value::xor([x, y]));
                assert_eq!(value::nand([Value::One, x, y]), value::nand([x, y]));
                assert_eq!(value::nor([Value::Zero, x, y]), value::nor([x, y]));
                // Two XOR 1s cancel.
                assert_eq!(
                    value::xor([Value::One, Value::One, x, y]),
                    value::xor([x, y])
                );
            }
        }
    }

    /// The dominance laws: a known 0 (AND) / 1 (OR) decides the fold no
    /// matter what the other inputs hold.
    #[test]
    fn dominance_is_exact() {
        for &x in &ALL {
            for &y in &ALL {
                assert_eq!(value::and([Value::Zero, x, y]), Value::Zero);
                assert_eq!(value::or([Value::One, x, y]), Value::One);
                assert_eq!(value::nand([Value::Zero, x, y]), Value::One);
                assert_eq!(value::nor([Value::One, x, y]), Value::Zero);
            }
        }
    }

    /// Associativity of the chain collapse: folding a sub-fold's result
    /// into the outer fold equals one flat fold, for AND/OR/XOR over
    /// every combination of three values.
    #[test]
    fn chain_splice_is_exact() {
        for &a in &ALL {
            for &b in &ALL {
                for &c in &ALL {
                    assert_eq!(value::and([value::and([a, b]), c]), value::and([a, b, c]));
                    assert_eq!(value::or([value::or([a, b]), c]), value::or([a, b, c]));
                    assert_eq!(value::xor([value::xor([a, b]), c]), value::xor([a, b, c]));
                }
            }
        }
    }

    /// EQUAL pair laws: a defined unequal pair forces 0; a defined equal
    /// pair can be dropped without changing the reduction.
    #[test]
    fn equal_pair_laws_are_exact() {
        for &x in &ALL {
            for &y in &ALL {
                assert_eq!(
                    value::equal(&[Value::Zero, x], &[Value::One, y]),
                    Value::Zero
                );
                assert_eq!(
                    value::equal(&[Value::One, x], &[Value::One, y]),
                    value::equal(&[x], &[y])
                );
                assert_eq!(
                    value::equal(&[Value::Zero, x], &[Value::Zero, y]),
                    value::equal(&[x], &[y])
                );
            }
        }
    }

    /// The IF condition folds match the simulator's switch semantics.
    #[test]
    fn if_condition_folds_are_exact() {
        for &d in &ALL {
            assert_eq!(eval_op(&NodeOp::If, &[Value::Zero, d]), Value::NoInfl);
            assert_eq!(
                eval_op(&NodeOp::If, &[Value::One, d]),
                d,
                "raw pass-through"
            );
            assert_eq!(eval_op(&NodeOp::If, &[Value::Undef, d]), Value::Undef);
            assert_eq!(eval_op(&NodeOp::If, &[Value::NoInfl, d]), Value::Undef);
        }
    }
}
