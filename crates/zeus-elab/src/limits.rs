//! The resource governor: one [`Limits`] struct bounds every phase of the
//! pipeline, and a [`Governor`] enforces the dynamic budgets (fuel and
//! wall-clock deadline) cooperatively from the hot loops.
//!
//! Zeus programs can demand unbounded work from a finite description: a
//! recursive component type without a `WHEN` guard elaborates forever
//! (§4.2), a mis-wired design can oscillate under switch-level relaxation,
//! and an equivalence check is exponential in input width. Every such
//! failure mode is reported as an `error[Z9xx]` diagnostic (see
//! [`zeus_syntax::diag::codes`]) instead of a hang, a panic, or an OOM
//! kill, so drivers — the CLI, tests, language servers — can distinguish
//! "your program is wrong" from "your program is too big for the budget I
//! gave it".

use std::time::{Duration, Instant};
use zeus_syntax::diag::{codes, Diagnostic};
use zeus_syntax::span::Span;

/// Unified resource limits for elaboration and simulation.
///
/// `Limits` subsumes the old `ElabOptions` (which remains as a type alias)
/// and adds netlist-size, fuel, deadline and simulation budgets. All
/// budgets are *cooperative*: the pipeline checks them at loop boundaries,
/// so exceeding one yields a clean diagnostic with all partial results
/// intact rather than an abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Limits {
    /// Maximum number of component instances before elaboration is
    /// declared non-terminating (a recursive type without a `WHEN` guard).
    /// Exceeding it reports `Z901`.
    pub max_instances: usize,
    /// Maximum function-component call nesting (`Z906`).
    pub max_call_depth: usize,
    /// Maximum nesting depth of resolved types (`Z907`).
    pub max_type_depth: usize,
    /// Maximum number of nets in the elaborated netlist (`Z902`). This is
    /// the budget that stops runaway recursion *before* memory does:
    /// every instance allocates its pin nets eagerly.
    pub max_nets: usize,
    /// Maximum number of nodes (gates/registers) in the netlist (`Z903`).
    pub max_nodes: usize,
    /// Cooperative fuel budget (`Z904`): elaboration charges one unit per
    /// instance and per statement, simulation one per node evaluation.
    /// `None` means unlimited.
    pub fuel: Option<u64>,
    /// Wall-clock budget from governor creation (`Z905`). Checked
    /// amortized (every few hundred charges), so overshoot is bounded by
    /// one batch of work. `None` means no deadline.
    pub deadline: Option<Duration>,
    /// Simulation step budget for `run`-style loops (`Z908`). `None`
    /// means unlimited.
    pub max_steps: Option<u64>,
    /// Per-cycle relaxation-sweep cap for the switch-level simulator.
    /// `None` uses the adaptive default `2 * nodes + 16`; exceeding the
    /// cap reports a `Z310` oscillation diagnostic.
    pub relax_iter_cap: Option<u32>,
    /// Maximum total input width for exhaustive equivalence checking
    /// (`Z909`); the check enumerates `2^bits` vectors.
    pub max_input_bits: u32,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_instances: 1_000_000,
            // Recursive function components halve their parameter per
            // level (§4.2 style), so 64 suffices for any 64-bit size
            // while staying within default thread stacks.
            max_call_depth: 64,
            max_type_depth: 64,
            // Generous for real designs (the paper's largest examples
            // elaborate to thousands of nets) but small enough that an
            // unguarded recursion trips the budget in well under a
            // second, long before memory pressure.
            max_nets: 2_000_000,
            max_nodes: 4_000_000,
            fuel: None,
            deadline: None,
            max_steps: None,
            relax_iter_cap: None,
            max_input_bits: 20,
        }
    }
}

impl Limits {
    /// Default limits (same as [`Default`], reads better at call sites).
    pub fn new() -> Self {
        Self::default()
    }

    /// Tight limits for fuzzing and property tests: small enough that a
    /// pathological generated program finishes in microseconds.
    pub fn tiny() -> Self {
        Limits {
            max_instances: 256,
            max_call_depth: 16,
            max_type_depth: 16,
            max_nets: 4_096,
            max_nodes: 4_096,
            fuel: Some(100_000),
            deadline: None,
            max_steps: Some(64),
            relax_iter_cap: Some(256),
            max_input_bits: 8,
        }
    }

    /// Sets the fuel budget (builder style).
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Sets the wall-clock deadline (builder style).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the simulation step budget (builder style).
    pub fn with_max_steps(mut self, steps: u64) -> Self {
        self.max_steps = Some(steps);
        self
    }

    /// Starts a governor enforcing these limits from now.
    pub fn governor(&self) -> Governor {
        Governor::new(self)
    }
}

/// How often (in charges) the governor reads the clock. Deadline overshoot
/// is bounded by this many units of work.
const DEADLINE_STRIDE: u64 = 64;

/// Enforces the dynamic budgets of a [`Limits`]: fuel and deadline.
///
/// A governor is created when a phase starts ([`Limits::governor`]) and
/// threaded through its hot loops; each loop iteration calls
/// [`Governor::charge`]. Both checks are cheap — fuel is a subtraction,
/// and the clock is read only every [`DEADLINE_STRIDE`] charges.
#[derive(Debug, Clone)]
pub struct Governor {
    fuel_left: Option<u64>,
    fuel_total: u64,
    deadline_at: Option<Instant>,
    deadline_total: Duration,
    charges: u64,
}

impl Governor {
    /// A governor whose deadline countdown starts now.
    pub fn new(limits: &Limits) -> Self {
        Governor {
            fuel_left: limits.fuel,
            fuel_total: limits.fuel.unwrap_or(0),
            deadline_at: limits.deadline.map(|d| Instant::now() + d),
            deadline_total: limits.deadline.unwrap_or_default(),
            charges: 0,
        }
    }

    /// Consumes `amount` units of fuel and (amortized) checks the
    /// deadline.
    ///
    /// # Errors
    ///
    /// `Z904` when the fuel budget is exhausted, `Z905` when the deadline
    /// has passed.
    pub fn charge(&mut self, amount: u64, span: Span) -> Result<(), Diagnostic> {
        if let Some(left) = &mut self.fuel_left {
            if *left < amount {
                *left = 0;
                return Err(Diagnostic::error(
                    span,
                    format!(
                        "fuel budget exhausted (limit {}): compilation cancelled before \
                         completion; raise the fuel limit to continue",
                        self.fuel_total
                    ),
                )
                .with_code(codes::LIMIT_FUEL));
            }
            *left -= amount;
        }
        self.charges += 1;
        if self.deadline_at.is_some() && self.charges.is_multiple_of(DEADLINE_STRIDE) {
            self.check_deadline(span)?;
        }
        Ok(())
    }

    /// Checks the deadline immediately (un-amortized; use at phase
    /// boundaries).
    ///
    /// # Errors
    ///
    /// `Z905` when the deadline has passed.
    pub fn check_deadline(&self, span: Span) -> Result<(), Diagnostic> {
        if let Some(at) = self.deadline_at {
            if Instant::now() >= at {
                return Err(Diagnostic::error(
                    span,
                    format!(
                        "deadline of {:?} exceeded: compilation cancelled before completion; \
                         raise the timeout to continue",
                        self.deadline_total
                    ),
                )
                .with_code(codes::LIMIT_DEADLINE));
            }
        }
        Ok(())
    }

    /// Fuel remaining, or `None` when unlimited.
    pub fn fuel_left(&self) -> Option<u64> {
        self.fuel_left
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuel_runs_out_with_z904() {
        let mut g = Limits::new().with_fuel(10).governor();
        let span = Span::new(0, 0);
        for _ in 0..10 {
            g.charge(1, span).unwrap();
        }
        let err = g.charge(1, span).unwrap_err();
        assert_eq!(err.code, Some(codes::LIMIT_FUEL));
        assert!(err.is_resource_limit());
        assert_eq!(g.fuel_left(), Some(0));
    }

    #[test]
    fn unlimited_fuel_never_errors() {
        let mut g = Limits::new().governor();
        let span = Span::new(0, 0);
        for _ in 0..10_000 {
            g.charge(7, span).unwrap();
        }
    }

    #[test]
    fn zero_deadline_trips_z905() {
        let g = Limits::new()
            .with_deadline(Duration::from_secs(0))
            .governor();
        let err = g.check_deadline(Span::new(0, 0)).unwrap_err();
        assert_eq!(err.code, Some(codes::LIMIT_DEADLINE));
        // And the amortized path reaches it too.
        let mut g = Limits::new()
            .with_deadline(Duration::from_secs(0))
            .governor();
        let res: Result<(), _> = (0..1_000).try_for_each(|_| g.charge(1, Span::new(0, 0)));
        assert_eq!(res.unwrap_err().code, Some(codes::LIMIT_DEADLINE));
    }

    #[test]
    fn tiny_limits_are_small() {
        let t = Limits::tiny();
        let d = Limits::default();
        assert!(t.max_instances < d.max_instances);
        assert!(t.max_nets < d.max_nets);
        assert!(t.fuel.is_some());
    }
}
