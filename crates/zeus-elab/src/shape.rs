//! Resolved signal shapes.
//!
//! A [`Shape`] is a fully elaborated Zeus type: all numeric parameters have
//! been evaluated, and only the structure over the two basic types (plus
//! `virtual` placeholders, §6.4) remains. Flattening a shape yields the
//! "natural order" sequence of basic signals the paper uses everywhere for
//! assignment compatibility ("we require that the type of e has the same
//! number of substructures of basic type as the type of s").

use std::sync::Arc;
use zeus_sema::rules::BasicKind;
use zeus_syntax::ast::Mode;

/// A fully resolved signal type.
#[derive(Debug, Clone, PartialEq)]
pub enum Shape {
    /// A basic signal: boolean or multiplex.
    Basic(BasicKind),
    /// A `virtual` placeholder (replaced in the layout language, §6.4).
    /// Contributes zero basic bits until replaced.
    Virtual,
    /// `ARRAY [lo..hi] OF elem`; empty when `lo > hi`.
    Array {
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
        /// Element shape.
        elem: Arc<Shape>,
    },
    /// A component interface: record of named, moded fields.
    Record(Arc<RecordShape>),
}

/// Predefined component types with built-in elaboration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuiltinComponent {
    /// The storage element `REG` (§5.1).
    Reg,
}

/// The interface of a component type (or record type).
#[derive(Debug, Clone, PartialEq)]
pub struct RecordShape {
    /// The declared type name, if any (anonymous component types have
    /// none).
    pub type_name: Option<String>,
    /// Fields in declaration order.
    pub fields: Vec<FieldShape>,
    /// True when the component type has a body (instances must be
    /// elaborated) — false for pure record types.
    pub has_body: bool,
    /// Set for predefined components like `REG`.
    pub builtin: Option<BuiltinComponent>,
}

/// One field of a record shape.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldShape {
    /// Field (formal parameter) name.
    pub name: String,
    /// Declared mode (IN/OUT/INOUT).
    pub mode: Mode,
    /// Field shape.
    pub shape: Shape,
}

impl Shape {
    /// Creates a boolean shape.
    pub fn boolean() -> Shape {
        Shape::Basic(BasicKind::Boolean)
    }

    /// Creates a multiplex shape.
    pub fn multiplex() -> Shape {
        Shape::Basic(BasicKind::Multiplex)
    }

    /// Number of array elements (0 for empty arrays).
    pub fn array_len(lo: i64, hi: i64) -> usize {
        if hi >= lo {
            (hi - lo + 1) as usize
        } else {
            0
        }
    }

    /// Number of basic bits in natural order.
    pub fn bit_len(&self) -> usize {
        match self {
            Shape::Basic(_) => 1,
            Shape::Virtual => 0,
            Shape::Array { lo, hi, elem } => Shape::array_len(*lo, *hi) * elem.bit_len(),
            Shape::Record(r) => r.fields.iter().map(|f| f.shape.bit_len()).sum(),
        }
    }

    /// True if the shape contains a `virtual` placeholder.
    pub fn contains_virtual(&self) -> bool {
        match self {
            Shape::Basic(_) => false,
            Shape::Virtual => true,
            Shape::Array { elem, .. } => elem.contains_virtual(),
            Shape::Record(r) => r.fields.iter().any(|f| f.shape.contains_virtual()),
        }
    }

    /// The basic kinds of all bits in natural order, with the effective
    /// mode each bit inherits from `outer` ("The IN or OUT property is
    /// inherited by substructures", §3.2).
    pub fn bit_kinds(&self, outer: Mode, out: &mut Vec<(BasicKind, Mode)>) {
        match self {
            Shape::Basic(k) => out.push((*k, outer)),
            Shape::Virtual => {}
            Shape::Array { lo, hi, elem } => {
                for _ in 0..Shape::array_len(*lo, *hi) {
                    elem.bit_kinds(outer, out);
                }
            }
            Shape::Record(r) => {
                for f in &r.fields {
                    f.shape.bit_kinds(compose_mode(outer, f.mode), out);
                }
            }
        }
    }

    /// Convenience wrapper over [`Shape::bit_kinds`] starting from INOUT
    /// (no inherited restriction).
    pub fn bits_with_modes(&self) -> Vec<(BasicKind, Mode)> {
        let mut v = Vec::with_capacity(self.bit_len());
        self.bit_kinds(Mode::InOut, &mut v);
        v
    }

    /// Hierarchical names for all bits in natural order, e.g.
    /// `top.add[1].cout`.
    pub fn bit_names(&self, prefix: &str, out: &mut Vec<String>) {
        match self {
            Shape::Basic(_) => out.push(prefix.to_string()),
            Shape::Virtual => {}
            Shape::Array { lo, hi, elem } => {
                for i in 0..Shape::array_len(*lo, *hi) {
                    elem.bit_names(&format!("{prefix}[{}]", lo + i as i64), out);
                }
            }
            Shape::Record(r) => {
                for f in &r.fields {
                    f.shape.bit_names(&format!("{prefix}.{}", f.name), out);
                }
            }
        }
    }
}

/// Composes an inherited mode with a field's own mode: an outer IN/OUT
/// overrides; an outer INOUT lets the field's mode through.
pub fn compose_mode(outer: Mode, inner: Mode) -> Mode {
    match outer {
        Mode::InOut => inner,
        m => m,
    }
}

impl RecordShape {
    /// Bit offset of each field in the flattened interface, in
    /// declaration order, plus the total width as the last element.
    pub fn field_offsets(&self) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(self.fields.len() + 1);
        let mut acc = 0usize;
        for f in &self.fields {
            offsets.push(acc);
            acc += f.shape.bit_len();
        }
        offsets.push(acc);
        offsets
    }

    /// Finds a field by name, returning `(index, bit offset, field)`.
    pub fn field(&self, name: &str) -> Option<(usize, usize, &FieldShape)> {
        let mut off = 0usize;
        for (i, f) in self.fields.iter().enumerate() {
            if f.name == name {
                return Some((i, off, f));
            }
            off += f.shape.bit_len();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(fields: Vec<(&str, Mode, Shape)>, has_body: bool) -> Shape {
        Shape::Record(Arc::new(RecordShape {
            type_name: None,
            fields: fields
                .into_iter()
                .map(|(n, m, s)| FieldShape {
                    name: n.into(),
                    mode: m,
                    shape: s,
                })
                .collect(),
            has_body,
            builtin: None,
        }))
    }

    #[test]
    fn bit_len_composition() {
        let bo4 = Shape::Array {
            lo: 1,
            hi: 4,
            elem: Arc::new(Shape::boolean()),
        };
        assert_eq!(bo4.bit_len(), 4);
        let empty = Shape::Array {
            lo: 1,
            hi: 0,
            elem: Arc::new(Shape::boolean()),
        };
        assert_eq!(empty.bit_len(), 0);
        let r = rec(
            vec![
                ("a", Mode::In, bo4.clone()),
                ("b", Mode::Out, Shape::boolean()),
            ],
            true,
        );
        assert_eq!(r.bit_len(), 5);
    }

    #[test]
    fn virtual_has_no_bits() {
        assert_eq!(Shape::Virtual.bit_len(), 0);
        let arr = Shape::Array {
            lo: 1,
            hi: 9,
            elem: Arc::new(Shape::Virtual),
        };
        assert_eq!(arr.bit_len(), 0);
        assert!(arr.contains_virtual());
    }

    #[test]
    fn mode_inheritance() {
        // An IN record field forces all substructure bits to IN.
        let inner = rec(
            vec![
                ("x", Mode::In, Shape::boolean()),
                ("y", Mode::Out, Shape::boolean()),
            ],
            false,
        );
        let outer = rec(vec![("p", Mode::In, inner.clone())], false);
        let kinds = outer.bits_with_modes();
        assert_eq!(kinds.len(), 2);
        assert!(kinds.iter().all(|(_, m)| *m == Mode::In));
        // An INOUT outer leaves inner modes intact.
        let outer2 = rec(vec![("p", Mode::InOut, inner)], false);
        let kinds2 = outer2.bits_with_modes();
        assert_eq!(kinds2[0].1, Mode::In);
        assert_eq!(kinds2[1].1, Mode::Out);
    }

    #[test]
    fn field_lookup_and_offsets() {
        let bo3 = Shape::Array {
            lo: 1,
            hi: 3,
            elem: Arc::new(Shape::boolean()),
        };
        let Shape::Record(r) = rec(
            vec![
                ("a", Mode::In, bo3),
                ("b", Mode::Out, Shape::boolean()),
                ("c", Mode::InOut, Shape::multiplex()),
            ],
            true,
        ) else {
            unreachable!()
        };
        assert_eq!(r.field_offsets(), vec![0, 3, 4, 5]);
        let (i, off, f) = r.field("b").unwrap();
        assert_eq!((i, off), (1, 3));
        assert_eq!(f.mode, Mode::Out);
        assert!(r.field("zz").is_none());
    }

    #[test]
    fn compose_mode_table() {
        assert_eq!(compose_mode(Mode::InOut, Mode::Out), Mode::Out);
        assert_eq!(compose_mode(Mode::In, Mode::Out), Mode::In);
        assert_eq!(compose_mode(Mode::Out, Mode::In), Mode::Out);
        assert_eq!(compose_mode(Mode::InOut, Mode::InOut), Mode::InOut);
    }
}
