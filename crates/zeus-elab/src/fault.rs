//! The structural fault model over elaborated netlists.
//!
//! Zeus's type rules exist to stop hardware from physically failing
//! ("burning transistors", §4.7), and the simulator evaluates over the
//! four-valued domain {0, 1, UNDEF, NOINFL} (§8) precisely so that
//! partial and faulty information propagates soundly. A [`Fault`] names a
//! physical defect on one elaborated net (the *site*): the classic
//! stuck-at faults, a resistive bridge between two nets, and a transient
//! single-event upset. The model lives here, next to [`NetId`], so both
//! simulation engines (`zeus-sim` and `zeus-switch`) can accept the same
//! fault values; enumeration, collapsing and campaigns live in
//! `zeus-fault`.

use crate::netlist::NetId;
use std::fmt;

/// What kind of defect is injected at a fault site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// The net is permanently tied to logic 0 (e.g. shorted to GND).
    StuckAt0,
    /// The net is permanently tied to logic 1 (e.g. shorted to VDD).
    StuckAt1,
    /// The net is resistively shorted to another net: when both carry a
    /// value the pair resolves to the common value, or UNDEF when they
    /// disagree (the "burning transistors" hazard made permanent).
    BridgeWith(NetId),
    /// A single-event upset: the net's settled value is inverted for
    /// exactly one clock cycle, then the defect disappears.
    TransientFlip {
        /// The zero-based cycle in which the flip occurs.
        cycle: u64,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::StuckAt0 => write!(f, "stuck-at-0"),
            FaultKind::StuckAt1 => write!(f, "stuck-at-1"),
            FaultKind::BridgeWith(n) => write!(f, "bridged-with-{n}"),
            FaultKind::TransientFlip { cycle } => write!(f, "transient-flip@{cycle}"),
        }
    }
}

/// One injectable defect: a [`FaultKind`] at a net site.
///
/// Sites refer to *canonical* nets (alias-class representatives); the
/// simulators canonicalize on injection so callers may pass any alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fault {
    /// The net the defect sits on.
    pub site: NetId,
    /// The defect.
    pub kind: FaultKind,
}

impl Fault {
    /// A stuck-at-0 fault on `site`.
    pub fn stuck_at_0(site: NetId) -> Fault {
        Fault {
            site,
            kind: FaultKind::StuckAt0,
        }
    }

    /// A stuck-at-1 fault on `site`.
    pub fn stuck_at_1(site: NetId) -> Fault {
        Fault {
            site,
            kind: FaultKind::StuckAt1,
        }
    }

    /// A bridging fault between `site` and `other`.
    pub fn bridge(site: NetId, other: NetId) -> Fault {
        Fault {
            site,
            kind: FaultKind::BridgeWith(other),
        }
    }

    /// A transient bit-flip on `site` in clock cycle `cycle`.
    pub fn transient_flip(site: NetId, cycle: u64) -> Fault {
        Fault {
            site,
            kind: FaultKind::TransientFlip { cycle },
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.site, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable() {
        assert_eq!(Fault::stuck_at_0(NetId(3)).to_string(), "n3 stuck-at-0");
        assert_eq!(Fault::stuck_at_1(NetId(0)).to_string(), "n0 stuck-at-1");
        assert_eq!(
            Fault::bridge(NetId(1), NetId(2)).to_string(),
            "n1 bridged-with-n2"
        );
        assert_eq!(
            Fault::transient_flip(NetId(7), 12).to_string(),
            "n7 transient-flip@12"
        );
    }

    #[test]
    fn faults_order_deterministically() {
        let mut v = vec![
            Fault::stuck_at_1(NetId(2)),
            Fault::stuck_at_0(NetId(2)),
            Fault::stuck_at_0(NetId(1)),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Fault::stuck_at_0(NetId(1)),
                Fault::stuck_at_0(NetId(2)),
                Fault::stuck_at_1(NetId(2)),
            ]
        );
    }
}
