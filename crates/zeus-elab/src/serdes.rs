//! Textual serialization of elaborated designs for the `zeusd` cache.
//!
//! A [`Design`] is the expensive artifact of the pipeline — elaborating
//! a large parameterized component can take orders of magnitude longer
//! than simulating a few cycles of it. The daemon therefore persists
//! elaborated designs in its content-addressed store and reloads them
//! on later requests. This module defines that on-disk form: a
//! line-oriented, human-debuggable text format that round-trips every
//! field the simulation, fault and ATPG paths consume (netlist with its
//! alias classes, ports with full shapes, name map, clock/reset nets).
//!
//! **Deliberately lossy pieces**: source spans (cached designs carry
//! dummy spans — diagnostics against the original source are only
//! produced by a fresh elaboration), elaboration warnings (designs with
//! warnings are not cached, so the CLI's warning output stays
//! byte-identical), and the instance/layout tree (the layout commands
//! never run against the cache).
//!
//! Every serialized design embeds its [`design_digest`]; the parser
//! recomputes the digest of the reconstructed design and refuses to
//! return on mismatch. Together with the store's whole-file checksum
//! this means a bit-flipped or torn cache entry can never silently
//! produce a wrong simulation — it is detected, quarantined and
//! re-elaborated.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

use crate::design::{Design, InstanceNode, Port};
use crate::hash::design_digest;
use crate::netlist::{GroupConstraint, Net, NetId, Netlist, Node, NodeOp};
use crate::shape::{BuiltinComponent, FieldShape, RecordShape, Shape};
use zeus_sema::rules::BasicKind;
use zeus_sema::value::Value;
use zeus_syntax::ast::Mode;
use zeus_syntax::diag::Diagnostics;
use zeus_syntax::span::Span;

/// Magic first line of the format; bump the version on any change.
/// v2 added the `opt` line (the optimizer provenance flag).
const MAGIC: &str = "zeus-design v2";

/// Escapes a name so it fits in one whitespace-separated token.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\s"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    if out.is_empty() {
        out.push_str("\\e");
    }
    out
}

/// Inverse of [`esc`].
fn unesc(s: &str) -> Result<String, String> {
    if s == "\\e" {
        return Ok(String::new());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('s') => out.push(' '),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            other => return Err(format!("bad escape \\{other:?} in name")),
        }
    }
    Ok(out)
}

fn kind_tag(k: BasicKind) -> &'static str {
    match k {
        BasicKind::Boolean => "b",
        BasicKind::Multiplex => "m",
    }
}

fn kind_parse(s: &str) -> Result<BasicKind, String> {
    match s {
        "b" => Ok(BasicKind::Boolean),
        "m" => Ok(BasicKind::Multiplex),
        _ => Err(format!("bad basic kind '{s}'")),
    }
}

fn op_tag(op: &NodeOp) -> String {
    match op {
        NodeOp::And => "and".to_string(),
        NodeOp::Or => "or".to_string(),
        NodeOp::Nand => "nand".to_string(),
        NodeOp::Nor => "nor".to_string(),
        NodeOp::Xor => "xor".to_string(),
        NodeOp::Not => "not".to_string(),
        NodeOp::Equal { width } => format!("eq{width}"),
        NodeOp::Buf => "buf".to_string(),
        NodeOp::If => "if".to_string(),
        NodeOp::Const(Value::Zero) => "c0".to_string(),
        NodeOp::Const(Value::One) => "c1".to_string(),
        NodeOp::Const(Value::Undef) => "cu".to_string(),
        NodeOp::Const(Value::NoInfl) => "cn".to_string(),
        NodeOp::Random => "random".to_string(),
        NodeOp::Reg => "reg".to_string(),
    }
}

fn op_parse(s: &str) -> Result<NodeOp, String> {
    Ok(match s {
        "and" => NodeOp::And,
        "or" => NodeOp::Or,
        "nand" => NodeOp::Nand,
        "nor" => NodeOp::Nor,
        "xor" => NodeOp::Xor,
        "not" => NodeOp::Not,
        "buf" => NodeOp::Buf,
        "if" => NodeOp::If,
        "c0" => NodeOp::Const(Value::Zero),
        "c1" => NodeOp::Const(Value::One),
        "cu" => NodeOp::Const(Value::Undef),
        "cn" => NodeOp::Const(Value::NoInfl),
        "random" => NodeOp::Random,
        "reg" => NodeOp::Reg,
        _ => {
            if let Some(w) = s.strip_prefix("eq") {
                NodeOp::Equal {
                    width: w.parse().map_err(|_| format!("bad eq width '{s}'"))?,
                }
            } else {
                return Err(format!("bad node op '{s}'"));
            }
        }
    })
}

fn mode_tag(m: Mode) -> &'static str {
    match m {
        Mode::In => "i",
        Mode::Out => "o",
        Mode::InOut => "x",
    }
}

fn mode_parse(s: &str) -> Result<Mode, String> {
    match s {
        "i" => Ok(Mode::In),
        "o" => Ok(Mode::Out),
        "x" => Ok(Mode::InOut),
        _ => Err(format!("bad mode '{s}'")),
    }
}

/// Appends the prefix encoding of a shape to `toks`.
fn shape_tokens(shape: &Shape, toks: &mut Vec<String>) {
    match shape {
        Shape::Basic(k) => toks.push(kind_tag(*k).to_string()),
        Shape::Virtual => toks.push("v".to_string()),
        Shape::Array { lo, hi, elem } => {
            toks.push("a".to_string());
            toks.push(lo.to_string());
            toks.push(hi.to_string());
            shape_tokens(elem, toks);
        }
        Shape::Record(r) => {
            toks.push("r".to_string());
            toks.push(r.type_name.as_deref().map(esc).unwrap_or("-".to_string()));
            toks.push(if r.has_body { "1" } else { "0" }.to_string());
            toks.push(match r.builtin {
                Some(BuiltinComponent::Reg) => "reg".to_string(),
                None => "-".to_string(),
            });
            toks.push(r.fields.len().to_string());
            for f in &r.fields {
                toks.push(esc(&f.name));
                toks.push(mode_tag(f.mode).to_string());
                shape_tokens(&f.shape, toks);
            }
        }
    }
}

/// Parses one shape from the token stream.
fn shape_parse<'a>(toks: &mut impl Iterator<Item = &'a str>) -> Result<Shape, String> {
    let tag = toks.next().ok_or("shape truncated")?;
    Ok(match tag {
        "b" => Shape::Basic(BasicKind::Boolean),
        "m" => Shape::Basic(BasicKind::Multiplex),
        "v" => Shape::Virtual,
        "a" => {
            let lo = next_i64(toks)?;
            let hi = next_i64(toks)?;
            Shape::Array {
                lo,
                hi,
                elem: Arc::new(shape_parse(toks)?),
            }
        }
        "r" => {
            let name = toks.next().ok_or("record truncated")?;
            let type_name = if name == "-" {
                None
            } else {
                Some(unesc(name)?)
            };
            let has_body = toks.next() == Some("1");
            let builtin = match toks.next().ok_or("record truncated")? {
                "reg" => Some(BuiltinComponent::Reg),
                "-" => None,
                b => return Err(format!("bad builtin '{b}'")),
            };
            let nfields = next_usize(toks)?;
            let mut fields = Vec::with_capacity(nfields);
            for _ in 0..nfields {
                let fname = unesc(toks.next().ok_or("field truncated")?)?;
                let mode = mode_parse(toks.next().ok_or("field truncated")?)?;
                let shape = shape_parse(toks)?;
                fields.push(FieldShape {
                    name: fname,
                    mode,
                    shape,
                });
            }
            Shape::Record(Arc::new(RecordShape {
                type_name,
                fields,
                has_body,
                builtin,
            }))
        }
        _ => return Err(format!("bad shape tag '{tag}'")),
    })
}

fn next_i64<'a>(toks: &mut impl Iterator<Item = &'a str>) -> Result<i64, String> {
    let t = toks.next().ok_or("number expected, stream truncated")?;
    t.parse().map_err(|_| format!("bad number '{t}'"))
}

fn next_usize<'a>(toks: &mut impl Iterator<Item = &'a str>) -> Result<usize, String> {
    let t = toks.next().ok_or("number expected, stream truncated")?;
    t.parse().map_err(|_| format!("bad number '{t}'"))
}

fn next_u32<'a>(toks: &mut impl Iterator<Item = &'a str>) -> Result<u32, String> {
    let t = toks.next().ok_or("number expected, stream truncated")?;
    t.parse().map_err(|_| format!("bad number '{t}'"))
}

fn opt_net(n: Option<NetId>) -> String {
    match n {
        Some(n) => n.index().to_string(),
        None => "-".to_string(),
    }
}

fn opt_net_parse(s: &str) -> Result<Option<NetId>, String> {
    if s == "-" {
        Ok(None)
    } else {
        Ok(Some(NetId(
            s.parse().map_err(|_| format!("bad net id '{s}'"))?,
        )))
    }
}

/// Serializes `design` to the cache text form.
pub fn design_to_text(design: &Design) -> String {
    let nl = &design.netlist;
    let mut s = String::new();
    let _ = writeln!(s, "{MAGIC}");
    let _ = writeln!(s, "digest {:016x}", design_digest(design));
    let _ = writeln!(s, "top {}", esc(&design.top_type));
    let _ = writeln!(s, "clk {}", opt_net(design.clk));
    let _ = writeln!(s, "rset {}", opt_net(design.rset));
    let _ = writeln!(s, "opt {}", if design.optimized { 1 } else { 0 });
    let _ = writeln!(s, "finished {}", if nl.is_finished() { 1 } else { 0 });
    let _ = writeln!(s, "nets {}", nl.nets.len());
    for (i, net) in nl.nets.iter().enumerate() {
        let _ = writeln!(
            s,
            "{} {} {}",
            kind_tag(net.kind),
            nl.alias_raw()[i],
            esc(&net.name)
        );
    }
    let _ = writeln!(s, "nodes {}", nl.nodes.len());
    for node in &nl.nodes {
        let group = match node.group {
            Some(g) => g.to_string(),
            None => "-".to_string(),
        };
        let _ = write!(
            s,
            "{} {} {} {}",
            op_tag(&node.op),
            group,
            node.output.index(),
            node.inputs.len()
        );
        for i in &node.inputs {
            let _ = write!(s, " {}", i.index());
        }
        s.push('\n');
    }
    let _ = writeln!(s, "constraints {}", nl.group_constraints.len());
    for c in &nl.group_constraints {
        let _ = writeln!(s, "{} {}", c.before, c.after);
    }
    let _ = write!(s, "groupparents {}", nl.group_parents.len());
    for g in &nl.group_parents {
        let _ = write!(s, " {g}");
    }
    s.push('\n');
    let _ = writeln!(s, "ports {}", design.ports.len());
    for p in &design.ports {
        let mut toks = vec![
            esc(&p.name),
            mode_tag(p.mode).to_string(),
            p.nets.len().to_string(),
        ];
        toks.extend(p.nets.iter().map(|n| n.index().to_string()));
        shape_tokens(&p.shape, &mut toks);
        let _ = writeln!(s, "{}", toks.join(" "));
    }
    // BTreeMap order: the text form is canonical for a given design.
    let names: std::collections::BTreeMap<&str, NetId> =
        design.names.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let _ = writeln!(s, "names {}", names.len());
    for (name, id) in names {
        let _ = writeln!(s, "{} {}", esc(name), id.index());
    }
    s.push_str("end\n");
    s
}

/// Parses the text form written by [`design_to_text`] and verifies the
/// embedded digest against the reconstructed design.
///
/// # Errors
///
/// A description of the first malformed line, or a digest mismatch
/// (corruption that survived the store's checksum, or a serializer
/// version skew).
pub fn design_from_text(text: &str) -> Result<Design, String> {
    let mut lines = text.lines();
    if lines.next() != Some(MAGIC) {
        return Err(format!("not a {MAGIC} file"));
    }
    fn field<'a>(lines: &mut std::str::Lines<'a>, key: &str) -> Result<&'a str, String> {
        let line = lines
            .next()
            .ok_or_else(|| format!("missing '{key}' line"))?;
        line.strip_prefix(key)
            .and_then(|r| r.strip_prefix(' '))
            .ok_or_else(|| format!("expected '{key} ...', got '{line}'"))
    }
    let digest = u64::from_str_radix(field(&mut lines, "digest")?, 16)
        .map_err(|e| format!("bad digest: {e}"))?;
    let top = unesc(field(&mut lines, "top")?)?;
    let clk = opt_net_parse(field(&mut lines, "clk")?)?;
    let rset = opt_net_parse(field(&mut lines, "rset")?)?;
    let optimized = field(&mut lines, "opt")? == "1";
    let finished = field(&mut lines, "finished")? == "1";

    let nnets: usize = field(&mut lines, "nets")?
        .parse()
        .map_err(|_| "bad net count")?;
    let mut nets = Vec::with_capacity(nnets);
    let mut alias = Vec::with_capacity(nnets);
    for _ in 0..nnets {
        let line = lines.next().ok_or("net table truncated")?;
        let mut t = line.split(' ');
        let kind = kind_parse(t.next().ok_or("bad net line")?)?;
        let parent = next_u32(&mut t)?;
        let name = unesc(t.next().ok_or("bad net line")?)?;
        nets.push(Net {
            kind,
            name,
            span: Span::dummy(),
        });
        alias.push(parent);
    }

    let nnodes: usize = field(&mut lines, "nodes")?
        .parse()
        .map_err(|_| "bad node count")?;
    let mut nodes = Vec::with_capacity(nnodes);
    for _ in 0..nnodes {
        let line = lines.next().ok_or("node table truncated")?;
        let mut t = line.split(' ');
        let op = op_parse(t.next().ok_or("bad node line")?)?;
        let group = match t.next().ok_or("bad node line")? {
            "-" => None,
            g => Some(g.parse::<u32>().map_err(|_| format!("bad group '{g}'"))?),
        };
        let output = NetId(next_u32(&mut t)?);
        let nin = next_usize(&mut t)?;
        let mut inputs = Vec::with_capacity(nin);
        for _ in 0..nin {
            inputs.push(NetId(next_u32(&mut t)?));
        }
        nodes.push(Node {
            op,
            inputs,
            output,
            group,
            span: Span::dummy(),
        });
    }

    let ncons: usize = field(&mut lines, "constraints")?
        .parse()
        .map_err(|_| "bad constraint count")?;
    let mut group_constraints = Vec::with_capacity(ncons);
    for _ in 0..ncons {
        let line = lines.next().ok_or("constraint table truncated")?;
        let mut t = line.split(' ');
        group_constraints.push(GroupConstraint {
            before: next_u32(&mut t)?,
            after: next_u32(&mut t)?,
        });
    }

    let gline = field(&mut lines, "groupparents")?;
    let mut t = gline.split(' ');
    let ngroups = next_usize(&mut t)?;
    let mut group_parents = Vec::with_capacity(ngroups);
    for _ in 0..ngroups {
        group_parents.push(next_u32(&mut t)?);
    }

    let nports: usize = field(&mut lines, "ports")?
        .parse()
        .map_err(|_| "bad port count")?;
    let mut ports = Vec::with_capacity(nports);
    for _ in 0..nports {
        let line = lines.next().ok_or("port table truncated")?;
        let mut t = line.split(' ');
        let name = unesc(t.next().ok_or("bad port line")?)?;
        let mode = mode_parse(t.next().ok_or("bad port line")?)?;
        let nnets = next_usize(&mut t)?;
        let mut pnets = Vec::with_capacity(nnets);
        for _ in 0..nnets {
            pnets.push(NetId(next_u32(&mut t)?));
        }
        let shape = shape_parse(&mut t)?;
        ports.push(Port {
            name,
            mode,
            shape,
            nets: pnets,
        });
    }

    let nnames: usize = field(&mut lines, "names")?
        .parse()
        .map_err(|_| "bad name count")?;
    let mut names = HashMap::with_capacity(nnames);
    for _ in 0..nnames {
        let line = lines.next().ok_or("name table truncated")?;
        let mut t = line.split(' ');
        let name = unesc(t.next().ok_or("bad name line")?)?;
        names.insert(name, NetId(next_u32(&mut t)?));
    }
    if lines.next() != Some("end") {
        return Err("missing 'end' terminator (truncated file)".to_string());
    }

    let netlist = Netlist::from_raw_parts(
        nets,
        nodes,
        group_constraints,
        group_parents,
        alias,
        finished,
    );
    let design = Design {
        netlist,
        top_type: top.clone(),
        ports,
        instances: InstanceNode {
            type_name: top,
            ..InstanceNode::default()
        },
        warnings: Diagnostics::new(),
        clk,
        rset,
        names,
        optimized,
    };
    let actual = design_digest(&design);
    if actual != digest {
        return Err(format!(
            "design digest mismatch: stored {digest:016x}, reconstructed {actual:016x}"
        ));
    }
    Ok(design)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate;
    use zeus_syntax::parse_program;

    fn roundtrip(src: &str, top: &str) {
        let program = parse_program(src).expect("parse");
        let design = elaborate(&program, top, &[]).expect("elaborate");
        let text = design_to_text(&design);
        let back = design_from_text(&text).expect("roundtrip parse");
        assert_eq!(design_digest(&design), design_digest(&back));
        assert_eq!(design.top_type, back.top_type);
        assert_eq!(design.netlist.nets.len(), back.netlist.nets.len());
        assert_eq!(design.netlist.nodes.len(), back.netlist.nodes.len());
        assert_eq!(design.ports.len(), back.ports.len());
        for (a, b) in design.ports.iter().zip(&back.ports) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.shape, b.shape);
            assert_eq!(a.nets, b.nets);
        }
        assert_eq!(design.names, back.names);
        assert_eq!(design.clk, back.clk);
        assert_eq!(design.rset, back.rset);
        // The canonical alias classes survive (fault sites depend on them).
        for i in 0..design.netlist.nets.len() {
            let id = NetId(i as u32);
            assert_eq!(design.netlist.find_ref(id), back.netlist.find_ref(id));
        }
        // Serializing the reconstruction reproduces the text exactly.
        assert_eq!(text, design_to_text(&back));
    }

    #[test]
    fn combinational_design_roundtrips() {
        roundtrip(
            "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS
             BEGIN s := XOR(a,b); cout := AND(a,b) END;",
            "halfadder",
        );
    }

    #[test]
    fn sequential_design_roundtrips() {
        roundtrip(
            "TYPE delay = COMPONENT (IN d: boolean; OUT q: boolean) IS \
             SIGNAL r: REG; BEGIN r(XOR(d, r.out), q) END;",
            "delay",
        );
    }

    #[test]
    fn corruption_is_detected() {
        let program = parse_program(
            "TYPE inv = COMPONENT (IN a: boolean; OUT q: boolean) IS BEGIN q := NOT(a) END;",
        )
        .unwrap();
        let design = elaborate(&program, "inv", &[]).unwrap();
        let text = design_to_text(&design);
        // Flip a node op: the digest check must catch it.
        let bad = text.replace("not 0", "buf 0");
        if bad != text {
            let err = design_from_text(&bad).unwrap_err();
            assert!(err.contains("digest mismatch"), "{err}");
        }
        // Truncation is caught before the digest stage.
        let torn = &text[..text.len() / 2];
        assert!(design_from_text(torn).is_err());
    }
}
