//! The elaborated design: netlist, top-level interface, and the resolved
//! instance/layout tree consumed by `zeus-layout`.

use crate::netlist::{NetId, Netlist};
use crate::shape::Shape;
use std::collections::HashMap;
use zeus_syntax::ast::Mode;
use zeus_syntax::diag::Diagnostics;

/// A port of the top-level component: one formal parameter, flattened.
#[derive(Debug, Clone)]
pub struct Port {
    /// Parameter name.
    pub name: String,
    /// Passing mode.
    pub mode: Mode,
    /// Resolved shape.
    pub shape: Shape,
    /// The nets of the port bits in natural order (already canonical).
    pub nets: Vec<NetId>,
}

impl Port {
    /// Width in bits.
    pub fn width(&self) -> usize {
        self.nets.len()
    }
}

/// The eight directions of separation of the layout language (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `toptobottom`
    TopToBottom,
    /// `bottomtotop`
    BottomToTop,
    /// `lefttoright`
    LeftToRight,
    /// `righttoleft`
    RightToLeft,
    /// `toplefttobottomright`
    TopLeftToBottomRight,
    /// `bottomrighttotopleft`
    BottomRightToTopLeft,
    /// `toprighttobottomleft`
    TopRightToBottomLeft,
    /// `bottomlefttotopright`
    BottomLeftToTopRight,
}

impl Direction {
    /// Parses a direction-of-separation identifier.
    pub fn from_name(name: &str) -> Option<Direction> {
        Some(match name {
            "toptobottom" => Direction::TopToBottom,
            "bottomtotop" => Direction::BottomToTop,
            "lefttoright" => Direction::LeftToRight,
            "righttoleft" => Direction::RightToLeft,
            "toplefttobottomright" => Direction::TopLeftToBottomRight,
            "bottomrighttotopleft" => Direction::BottomRightToTopLeft,
            "toprighttobottomleft" => Direction::TopRightToBottomLeft,
            "bottomlefttotopright" => Direction::BottomLeftToTopRight,
            _ => return None,
        })
    }
}

/// The seven orientation changes: all of the dihedral group D4 except the
/// identity (§6.3). `Identity` exists for composition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Orientation {
    /// No change (not writable in source).
    #[default]
    Identity,
    /// Counter-clockwise 90°.
    Rotate90,
    /// 180°.
    Rotate180,
    /// Counter-clockwise 270°.
    Rotate270,
    /// Mirror about the horizontal axis (0°).
    Flip0,
    /// Mirror about the 45° diagonal.
    Flip45,
    /// Mirror about the vertical axis (90°).
    Flip90,
    /// Mirror about the 135° diagonal.
    Flip135,
}

impl Orientation {
    /// Parses an orientation-change identifier.
    pub fn from_name(name: &str) -> Option<Orientation> {
        Some(match name {
            "rotate90" => Orientation::Rotate90,
            "rotate180" => Orientation::Rotate180,
            "rotate270" => Orientation::Rotate270,
            "flip0" => Orientation::Flip0,
            "flip45" => Orientation::Flip45,
            "flip90" => Orientation::Flip90,
            "flip135" => Orientation::Flip135,
            _ => return None,
        })
    }

    /// All eight elements of D4, identity first.
    pub const ALL: [Orientation; 8] = [
        Orientation::Identity,
        Orientation::Rotate90,
        Orientation::Rotate180,
        Orientation::Rotate270,
        Orientation::Flip0,
        Orientation::Flip45,
        Orientation::Flip90,
        Orientation::Flip135,
    ];

    fn index(self) -> usize {
        Orientation::ALL
            .iter()
            .position(|&o| o == self)
            .expect("element of ALL")
    }

    /// Composes two orientations: `self.then(other)` transforms points by
    /// `self` first, then `other`. The composition table is derived from
    /// [`Orientation::apply`] so the two can never disagree.
    pub fn then(self, other: Orientation) -> Orientation {
        use std::sync::OnceLock;
        static TABLE: OnceLock<[[Orientation; 8]; 8]> = OnceLock::new();
        let table = TABLE.get_or_init(|| {
            // Sample points that distinguish all eight transforms of a
            // non-square box.
            let (w, h) = (5i64, 3i64);
            let samples = [(0i64, 0i64), (1, 0), (0, 1), (3, 2)];
            let signature = |a: Orientation, b: Orientation| {
                samples.map(|(x, y)| {
                    let (x1, y1, w1, h1) = a.apply(x, y, w, h);
                    b.apply(x1, y1, w1, h1)
                })
            };
            let mut t = [[Orientation::Identity; 8]; 8];
            for &a in &Orientation::ALL {
                for &b in &Orientation::ALL {
                    let sig = signature(a, b);
                    let c = *Orientation::ALL
                        .iter()
                        .find(|&&c| {
                            samples
                                .iter()
                                .zip(&sig)
                                .all(|(&(x, y), &want)| c.apply(x, y, w, h) == want)
                        })
                        .expect("D4 is closed under composition");
                    t[a.index()][b.index()] = c;
                }
            }
            t
        });
        table[self.index()][other.index()]
    }

    /// The inverse element.
    pub fn inverse(self) -> Orientation {
        use Orientation::*;
        match self {
            Rotate90 => Rotate270,
            Rotate270 => Rotate90,
            other => other, // rotations 0/180 and all reflections are involutions
        }
    }

    /// Applies the orientation to a point in a `w × h` box, returning the
    /// transformed point and the new box dimensions `(x', y', w', h')`.
    /// Coordinates: x grows right, y grows down, origin top-left.
    pub fn apply(self, x: i64, y: i64, w: i64, h: i64) -> (i64, i64, i64, i64) {
        use Orientation::*;
        match self {
            Identity => (x, y, w, h),
            // Counter-clockwise rotation by 90°.
            Rotate90 => (y, w - 1 - x, h, w),
            Rotate180 => (w - 1 - x, h - 1 - y, w, h),
            Rotate270 => (h - 1 - y, x, h, w),
            // Mirror about the horizontal axis: y flips.
            Flip0 => (x, h - 1 - y, w, h),
            // Mirror about the vertical axis: x flips.
            Flip90 => (w - 1 - x, y, w, h),
            // Mirror about the main diagonal (45°): transpose.
            Flip45 => (y, x, h, w),
            // Mirror about the anti-diagonal (135°).
            Flip135 => (h - 1 - y, w - 1 - x, h, w),
        }
    }
}

/// A resolved layout statement: all replication/conditional generation has
/// been evaluated; signals are identified by instance keys (local names
/// like `add[3]` or `s[1].comp`) or pin names.
#[derive(Debug, Clone, PartialEq)]
pub enum LayoutItem {
    /// Place one child instance (or pin), optionally re-oriented.
    Place {
        /// Local instance key within the owning component, e.g. `add[2]`.
        key: String,
        /// Optional orientation change.
        orientation: Orientation,
    },
    /// An ORDER group: children separated along `direction` in sequence.
    Order {
        /// Direction of separation.
        direction: Direction,
        /// Ordered items.
        items: Vec<LayoutItem>,
    },
    /// A boundary statement: pins placed on an edge, in order.
    Boundary {
        /// Which edge.
        side: zeus_syntax::ast::Side,
        /// Pin names (formal parameter names) in placement order.
        pins: Vec<String>,
    },
}

/// One elaborated component instance, with its children and resolved
/// layout program.
#[derive(Debug, Clone, Default)]
pub struct InstanceNode {
    /// Local name within the parent, e.g. `add[1]` or `pe[2].comp`.
    pub key: String,
    /// Full hierarchical path, e.g. `top.add[1]`.
    pub path: String,
    /// The component type name (or `<anon>`).
    pub type_name: String,
    /// Resolved layout items of this component's layout blocks (header
    /// boundary statements and pre-BEGIN block), in source order.
    pub layout: Vec<LayoutItem>,
    /// Child instances that were actually elaborated, in creation order.
    pub children: Vec<InstanceNode>,
}

impl InstanceNode {
    /// Finds a direct child by key.
    pub fn child(&self, key: &str) -> Option<&InstanceNode> {
        self.children.iter().find(|c| c.key == key)
    }

    /// Total number of instances in this subtree (including self).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(InstanceNode::size).sum::<usize>()
    }
}

/// A fully elaborated design.
#[derive(Debug, Clone)]
pub struct Design {
    /// The flat semantics graph.
    pub netlist: Netlist,
    /// Name of the top component type.
    pub top_type: String,
    /// Top-level ports in declaration order.
    pub ports: Vec<Port>,
    /// The instance tree rooted at the top component.
    pub instances: InstanceNode,
    /// Non-fatal diagnostics (warnings) produced during elaboration.
    pub warnings: Diagnostics,
    /// The predefined clock signal's net, if the program references CLK.
    pub clk: Option<NetId>,
    /// The predefined reset signal's net, if the program references RSET.
    pub rset: Option<NetId>,
    /// Hierarchical bit name → canonical net (for tracing and tests).
    pub names: HashMap<String, NetId>,
    /// True when the netlist was rewritten by the `zeus-opt` pass
    /// pipeline. Folded into [`crate::hash::design_digest`] so an
    /// optimized design can never share a digest with the elaboration it
    /// came from — checkpoint journals of the two are never spliceable,
    /// even when every pass was a no-op.
    pub optimized: bool,
}

impl Design {
    /// Looks up a port by name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Ports with mode IN (the design's inputs).
    pub fn inputs(&self) -> impl Iterator<Item = &Port> {
        self.ports.iter().filter(|p| p.mode == Mode::In)
    }

    /// Ports with mode OUT (the design's outputs).
    pub fn outputs(&self) -> impl Iterator<Item = &Port> {
        self.ports.iter().filter(|p| p.mode == Mode::Out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Orientation::*;

    const ALL: [Orientation; 8] = [
        Identity, Rotate90, Rotate180, Rotate270, Flip0, Flip45, Flip90, Flip135,
    ];

    #[test]
    fn d4_is_a_group() {
        // Closure is by construction; check identity and inverses.
        for &a in &ALL {
            assert_eq!(a.then(Identity), a);
            assert_eq!(Identity.then(a), a);
            assert_eq!(a.then(a.inverse()), Identity, "{a:?}");
            assert_eq!(a.inverse().then(a), Identity, "{a:?}");
        }
        // Associativity.
        for &a in &ALL {
            for &b in &ALL {
                for &c in &ALL {
                    assert_eq!(a.then(b).then(c), a.then(b.then(c)));
                }
            }
        }
    }

    #[test]
    fn rotations_compose() {
        assert_eq!(Rotate90.then(Rotate90), Rotate180);
        assert_eq!(Rotate90.then(Rotate270), Identity);
        assert_eq!(Rotate180.then(Rotate180), Identity);
    }

    #[test]
    fn point_transform_matches_composition() {
        // Applying a then b must equal applying a.then(b).
        for &a in &ALL {
            for &b in &ALL {
                let (w, h) = (5i64, 3i64);
                for (x, y) in [(0i64, 0i64), (4, 2), (1, 2), (3, 0)] {
                    let (x1, y1, w1, h1) = a.apply(x, y, w, h);
                    let (x2, y2, w2, h2) = b.apply(x1, y1, w1, h1);
                    let (x3, y3, w3, h3) = a.then(b).apply(x, y, w, h);
                    assert_eq!(
                        (x2, y2, w2, h2),
                        (x3, y3, w3, h3),
                        "a={a:?} b={b:?} point=({x},{y})"
                    );
                }
            }
        }
    }

    #[test]
    fn transforms_preserve_box_membership() {
        for &o in &ALL {
            let (w, h) = (4i64, 7i64);
            for x in 0..w {
                for y in 0..h {
                    let (nx, ny, nw, nh) = o.apply(x, y, w, h);
                    assert!(nx >= 0 && nx < nw);
                    assert!(ny >= 0 && ny < nh);
                }
            }
        }
    }

    #[test]
    fn direction_names_round_trip() {
        for name in zeus_syntax::ast::DIRECTIONS {
            assert!(Direction::from_name(name).is_some(), "{name}");
        }
        assert!(Direction::from_name("sideways").is_none());
    }

    #[test]
    fn orientation_names_round_trip() {
        for name in zeus_syntax::ast::ORIENTATIONS {
            assert!(Orientation::from_name(name).is_some(), "{name}");
        }
        assert_eq!(Orientation::from_name("identity"), None);
    }
}
