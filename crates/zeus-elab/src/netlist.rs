//! The flat netlist produced by elaboration.
//!
//! This is the machine form of the paper's *semantics graph* (§8): one net
//! per basic signal, one node per predefined component instance, `IF`
//! switch or register, with directed edges implied by node inputs/outputs.
//! Aliasing (`==`) is a union-find over nets; [`Netlist::finish`]
//! canonicalizes all references to class representatives and verifies that
//! the graph is acyclic once registers are removed ("the predefined
//! component REG ... acts as a cycle breaker").

use std::collections::HashMap;
use std::fmt;
use zeus_sema::rules::BasicKind;
use zeus_sema::value::Value;
use zeus_syntax::diag::{Diagnostic, Diagnostics};
use zeus_syntax::span::Span;

/// Identifies a net (one basic signal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

impl NetId {
    /// The index into [`Netlist::nets`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a node of the semantics graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index into [`Netlist::nodes`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Per-net information.
#[derive(Debug, Clone)]
pub struct Net {
    /// boolean or multiplex. After `finish`, an alias class containing any
    /// multiplex member is multiplex.
    pub kind: BasicKind,
    /// Hierarchical debug name of the first signal bit mapped to this net.
    pub name: String,
    /// Source location of the declaration.
    pub span: Span,
}

/// The operation a node performs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeOp {
    /// n-ary AND (1 bit).
    And,
    /// n-ary OR (1 bit).
    Or,
    /// n-ary NAND (1 bit).
    Nand,
    /// n-ary NOR (1 bit).
    Nor,
    /// n-ary XOR (1 bit).
    Xor,
    /// NOT (1 bit).
    Not,
    /// Vector equality reduced to one bit: inputs are `a₀..a_{w-1}` then
    /// `b₀..b_{w-1}`.
    Equal {
        /// Operand width in bits.
        width: usize,
    },
    /// Unconditional copy: the single input drives the output net.
    Buf,
    /// Conditional switch (`IF b THEN x := e END`): inputs `[cond, data]`.
    /// Contributes NOINFL when the condition is 0, UNDEF when the
    /// condition is NOINFL or UNDEF, and the data value when it is 1 (§8).
    If,
    /// A constant source.
    Const(Value),
    /// The predefined RANDOM bistable source: a fresh pseudo-random
    /// boolean each cycle (deterministic from the simulator seed).
    Random,
    /// The predefined register REG: input `d`, output is the value of `d`
    /// in the previous clock cycle. Sequential — breaks cycles.
    Reg,
}

impl NodeOp {
    /// Whether the node is sequential (its output does not depend on its
    /// inputs within a cycle).
    pub fn is_sequential(&self) -> bool {
        matches!(self, NodeOp::Reg)
    }
}

/// A node of the semantics graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// The operation.
    pub op: NodeOp,
    /// Input nets in operand order.
    pub inputs: Vec<NetId>,
    /// The net this node contributes to.
    pub output: NetId,
    /// The SEQUENTIAL/PARALLEL statement group this node belongs to, if
    /// the user annotated one (§4.5).
    pub group: Option<u32>,
    /// Source location of the originating statement.
    pub span: Span,
}

/// A user-specified ordering constraint between statement groups: every
/// node of `before` must be evaluable before every node of `after`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupConstraint {
    /// The earlier group.
    pub before: u32,
    /// The later group.
    pub after: u32,
}

/// The flat design graph.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    /// All nets (indexed by [`NetId`]). After [`Netlist::finish`], ids in
    /// nodes refer to class representatives only.
    pub nets: Vec<Net>,
    /// All nodes.
    pub nodes: Vec<Node>,
    /// SEQUENTIAL ordering constraints for the §4.5 compatibility check.
    pub group_constraints: Vec<GroupConstraint>,
    /// Parent group of each group (groups nest: a statement inside an
    /// inner SEQUENTIAL also belongs to the enclosing group). Indexed by
    /// group id; `u32::MAX` means no parent.
    pub group_parents: Vec<u32>,
    /// Union-find parents (by net index).
    alias: Vec<u32>,
    finished: bool,
}

impl Netlist {
    /// An empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Creates a net.
    pub fn add_net(&mut self, kind: BasicKind, name: impl Into<String>, span: Span) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net {
            kind,
            name: name.into(),
            span,
        });
        self.alias.push(id.0);
        id
    }

    /// Creates a node and returns its id.
    pub fn add_node(
        &mut self,
        op: NodeOp,
        inputs: Vec<NetId>,
        output: NetId,
        group: Option<u32>,
        span: Span,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            op,
            inputs,
            output,
            group,
            span,
        });
        id
    }

    /// Finds the alias-class representative of a net (path-compressing).
    pub fn find(&mut self, n: NetId) -> NetId {
        let mut root = n.0;
        while self.alias[root as usize] != root {
            root = self.alias[root as usize];
        }
        // Path compression.
        let mut cur = n.0;
        while self.alias[cur as usize] != root {
            let next = self.alias[cur as usize];
            self.alias[cur as usize] = root;
            cur = next;
        }
        NetId(root)
    }

    /// Non-compressing find for shared references.
    pub fn find_ref(&self, n: NetId) -> NetId {
        let mut root = n.0;
        while self.alias[root as usize] != root {
            root = self.alias[root as usize];
        }
        NetId(root)
    }

    /// Aliases two nets (`==`): afterwards they are one signal with two
    /// names. Returns the representative.
    pub fn union(&mut self, a: NetId, b: NetId) -> NetId {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            // Keep the lower id as representative for determinism.
            let (keep, merge) = if ra.0 < rb.0 { (ra, rb) } else { (rb, ra) };
            self.alias[merge.0 as usize] = keep.0;
            // The class is multiplex if any member is.
            if self.nets[merge.index()].kind == BasicKind::Multiplex {
                self.nets[keep.index()].kind = BasicKind::Multiplex;
            }
            keep
        } else {
            ra
        }
    }

    /// True once [`Netlist::finish`] has run.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The raw union-find parent vector, for the cache serializer and the
    /// optimizer's net-compaction rebuild.
    pub fn alias_raw(&self) -> &[u32] {
        &self.alias
    }

    /// Reassembles a netlist from stored raw parts (the cache
    /// deserializer and the `zeus-opt` net-compaction rebuild). The
    /// caller is responsible for the parts being a faithful copy of a
    /// previously finished netlist (or a consistent rewrite of one); the
    /// serdes digest check and the optimizer's equivalence gate enforce
    /// that end to end.
    pub fn from_raw_parts(
        nets: Vec<Net>,
        nodes: Vec<Node>,
        group_constraints: Vec<GroupConstraint>,
        group_parents: Vec<u32>,
        alias: Vec<u32>,
        finished: bool,
    ) -> Netlist {
        Netlist {
            nets,
            nodes,
            group_constraints,
            group_parents,
            alias,
            finished,
        }
    }

    /// Canonicalizes all node references to alias representatives and
    /// checks that the combinational graph (registers removed) is acyclic.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic naming nets on a combinational loop, per the
    /// rule "we disallow feedback loops which do not lead through
    /// registers" (§1).
    pub fn finish(&mut self) -> Result<(), Diagnostics> {
        for i in 0..self.nodes.len() {
            let inputs: Vec<NetId> = self.nodes[i].inputs.clone();
            let mapped: Vec<NetId> = inputs.into_iter().map(|n| self.find(n)).collect();
            self.nodes[i].inputs = mapped;
            let out = self.nodes[i].output;
            self.nodes[i].output = self.find(out);
        }
        self.finished = true;
        match self.topo_order() {
            Ok(_) => Ok(()),
            Err(d) => Err(d.into()),
        }
    }

    /// All nodes driving (contributing to) each net, indexed by net.
    pub fn drivers_by_net(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.nets.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            out[n.output.index()].push(NodeId(i as u32));
        }
        out
    }

    /// All nodes reading each net, indexed by net.
    pub fn readers_by_net(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.nets.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if n.op.is_sequential() {
                continue;
            }
            for inp in &n.inputs {
                out[inp.index()].push(NodeId(i as u32));
            }
        }
        out
    }

    /// A topological order of the *combinational* nodes (registers first
    /// conceptually, but they are excluded — their outputs are sources).
    ///
    /// # Errors
    ///
    /// Returns a diagnostic if a combinational cycle exists.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, Diagnostic> {
        // Node A precedes node B when A.output is an input of B.
        // Sequential nodes have no intra-cycle dependency on their input,
        // so they never appear as predecessors... they do: a Reg node is
        // *evaluated* at cycle end; combinationally only its output
        // matters, which is a source. We exclude Reg nodes from the order.
        let mut indegree = vec![0usize; self.nodes.len()];
        let drivers = self.drivers_by_net();
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for (bi, b) in self.nodes.iter().enumerate() {
            if b.op.is_sequential() {
                continue;
            }
            for inp in &b.inputs {
                for a in &drivers[inp.index()] {
                    if self.nodes[a.index()].op.is_sequential() {
                        continue;
                    }
                    edges[a.index()].push(bi);
                    indegree[bi] += 1;
                }
            }
        }
        let mut queue: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| !self.nodes[i].op.is_sequential() && indegree[i] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut head = 0;
        while head < queue.len() {
            let n = queue[head];
            head += 1;
            order.push(NodeId(n as u32));
            for &m in &edges[n] {
                indegree[m] -= 1;
                if indegree[m] == 0 {
                    queue.push(m);
                }
            }
        }
        let comb_count = self.nodes.iter().filter(|n| !n.op.is_sequential()).count();
        if order.len() != comb_count {
            // Find a net on the cycle for the message.
            let witness = self
                .nodes
                .iter()
                .enumerate()
                .find(|(i, n)| !n.op.is_sequential() && indegree[*i] > 0)
                .map(|(_, n)| n.output);
            let (name, span) = witness
                .map(|w| {
                    let net = &self.nets[w.index()];
                    (net.name.clone(), net.span)
                })
                .unwrap_or_default();
            return Err(Diagnostic::error(
                span,
                format!(
                    "combinational feedback loop through signal '{name}': \
                     loops must lead through registers (§1)"
                ),
            ));
        }
        Ok(order)
    }

    /// Checks the SEQUENTIAL/PARALLEL annotations (§4.5): the constraints
    /// must be *compatible* with the dataflow order, i.e. adding them as
    /// edges must keep the graph acyclic.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic naming the first incompatible constraint.
    pub fn check_group_compatibility(&self) -> Result<(), Diagnostic> {
        if self.group_constraints.is_empty() {
            return Ok(());
        }
        // Build combinational node graph plus group edges, then Kahn.
        let drivers = self.drivers_by_net();
        let n = self.nodes.len();
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indegree = vec![0usize; n];
        for (bi, b) in self.nodes.iter().enumerate() {
            if b.op.is_sequential() {
                continue;
            }
            for inp in &b.inputs {
                for a in &drivers[inp.index()] {
                    if self.nodes[a.index()].op.is_sequential() {
                        continue;
                    }
                    edges[a.index()].push(bi);
                    indegree[bi] += 1;
                }
            }
        }
        let mut by_group: HashMap<u32, Vec<usize>> = HashMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if let Some(g) = node.group {
                if !node.op.is_sequential() {
                    // A node belongs to its group and all enclosing groups.
                    let mut g = g;
                    loop {
                        by_group.entry(g).or_default().push(i);
                        match self.group_parents.get(g as usize) {
                            Some(&p) if p != u32::MAX => g = p,
                            _ => break,
                        }
                    }
                }
            }
        }
        for c in &self.group_constraints {
            let (Some(before), Some(after)) = (by_group.get(&c.before), by_group.get(&c.after))
            else {
                continue;
            };
            for &a in before {
                for &b in after {
                    edges[a].push(b);
                    indegree[b] += 1;
                }
            }
        }
        let mut queue: Vec<usize> = (0..n)
            .filter(|&i| !self.nodes[i].op.is_sequential() && indegree[i] == 0)
            .collect();
        let mut seen = 0usize;
        let mut head = 0;
        while head < queue.len() {
            let x = queue[head];
            head += 1;
            seen += 1;
            for &m in &edges[x] {
                indegree[m] -= 1;
                if indegree[m] == 0 {
                    queue.push(m);
                }
            }
        }
        let comb_count = self
            .nodes
            .iter()
            .filter(|nd| !nd.op.is_sequential())
            .count();
        if seen != comb_count {
            let witness = (0..n)
                .find(|&i| !self.nodes[i].op.is_sequential() && indegree[i] > 0)
                .map(|i| self.nodes[i].span)
                .unwrap_or_default();
            return Err(Diagnostic::error(
                witness,
                "SEQUENTIAL annotation is incompatible with the dataflow order of the \
                 semantics graph (§4.5)",
            ));
        }
        Ok(())
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// True when `n` is the representative of its alias class (after
    /// [`Netlist::finish`] all node references point at representatives).
    pub fn is_representative(&self, n: NetId) -> bool {
        self.find_ref(n) == n
    }

    /// Iterates over the canonical nets: the alias-class representatives,
    /// in ascending id order. These are the fault sites of the design —
    /// every physically distinct signal appears exactly once.
    pub fn representatives(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.nets.len() as u32)
            .map(NetId)
            .filter(|&n| self.is_representative(n))
    }

    /// Combinational fanout per net: how many non-sequential nodes read
    /// each net, indexed by net. Register data inputs are excluded, like
    /// in [`Netlist::readers_by_net`].
    pub fn fanout(&self) -> Vec<u32> {
        let mut out = vec![0u32; self.nets.len()];
        for n in &self.nodes {
            if n.op.is_sequential() {
                continue;
            }
            for inp in &n.inputs {
                out[inp.index()] += 1;
            }
        }
        out
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates over the ids of all register nodes.
    pub fn registers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.op == NodeOp::Reg)
            .map(|(i, _)| NodeId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bnet(nl: &mut Netlist, name: &str) -> NetId {
        nl.add_net(BasicKind::Boolean, name, Span::dummy())
    }

    #[test]
    fn union_find_basics() {
        let mut nl = Netlist::new();
        let a = bnet(&mut nl, "a");
        let b = bnet(&mut nl, "b");
        let c = bnet(&mut nl, "c");
        assert_eq!(nl.find(a), a);
        nl.union(a, b);
        assert_eq!(nl.find(a), nl.find(b));
        nl.union(b, c);
        assert_eq!(nl.find(c), nl.find(a));
        // Representative is the smallest id.
        assert_eq!(nl.find(c), a);
    }

    #[test]
    fn union_promotes_kind_to_multiplex() {
        let mut nl = Netlist::new();
        let a = bnet(&mut nl, "a");
        let m = nl.add_net(BasicKind::Multiplex, "m", Span::dummy());
        let r = nl.union(a, m);
        assert_eq!(nl.nets[r.index()].kind, BasicKind::Multiplex);
    }

    #[test]
    fn finish_remaps_node_refs() {
        let mut nl = Netlist::new();
        let a = bnet(&mut nl, "a");
        let b = bnet(&mut nl, "b");
        let c = bnet(&mut nl, "c");
        nl.add_node(NodeOp::Not, vec![b], c, None, Span::dummy());
        nl.union(a, b);
        nl.finish().expect("acyclic");
        assert_eq!(nl.nodes[0].inputs[0], a);
    }

    #[test]
    fn cycle_detection() {
        let mut nl = Netlist::new();
        let a = bnet(&mut nl, "a");
        let b = bnet(&mut nl, "b");
        nl.add_node(NodeOp::Not, vec![a], b, None, Span::dummy());
        nl.add_node(NodeOp::Not, vec![b], a, None, Span::dummy());
        let err = nl.finish().expect_err("cycle");
        assert!(err.to_string().contains("combinational feedback loop"));
    }

    #[test]
    fn reg_breaks_cycles() {
        let mut nl = Netlist::new();
        let a = bnet(&mut nl, "a");
        let b = bnet(&mut nl, "b");
        nl.add_node(NodeOp::Not, vec![a], b, None, Span::dummy());
        nl.add_node(NodeOp::Reg, vec![b], a, None, Span::dummy());
        nl.finish().expect("register loop is legal");
    }

    #[test]
    fn topo_order_is_causal() {
        let mut nl = Netlist::new();
        let a = bnet(&mut nl, "a");
        let b = bnet(&mut nl, "b");
        let c = bnet(&mut nl, "c");
        let d = bnet(&mut nl, "d");
        let n1 = nl.add_node(NodeOp::Not, vec![a], b, None, Span::dummy());
        let n2 = nl.add_node(NodeOp::And, vec![b, a], c, None, Span::dummy());
        let n3 = nl.add_node(NodeOp::Or, vec![c, b], d, None, Span::dummy());
        nl.finish().unwrap();
        let order = nl.topo_order().unwrap();
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(n1) < pos(n2));
        assert!(pos(n2) < pos(n3));
    }

    #[test]
    fn group_compatibility() {
        let mut nl = Netlist::new();
        let a = bnet(&mut nl, "a");
        let b = bnet(&mut nl, "b");
        let c = bnet(&mut nl, "c");
        // b := NOT a (group 0); c := NOT b (group 1)
        nl.add_node(NodeOp::Not, vec![a], b, Some(0), Span::dummy());
        nl.add_node(NodeOp::Not, vec![b], c, Some(1), Span::dummy());
        nl.finish().unwrap();
        nl.group_constraints.push(GroupConstraint {
            before: 0,
            after: 1,
        });
        assert!(nl.check_group_compatibility().is_ok());
        // Reversed constraint contradicts dataflow.
        nl.group_constraints.clear();
        nl.group_constraints.push(GroupConstraint {
            before: 1,
            after: 0,
        });
        assert!(nl.check_group_compatibility().is_err());
    }

    #[test]
    fn drivers_and_readers_index() {
        let mut nl = Netlist::new();
        let a = bnet(&mut nl, "a");
        let b = bnet(&mut nl, "b");
        let n = nl.add_node(NodeOp::Buf, vec![a], b, None, Span::dummy());
        let d = nl.drivers_by_net();
        assert_eq!(d[b.index()], vec![n]);
        assert!(d[a.index()].is_empty());
        let r = nl.readers_by_net();
        assert_eq!(r[a.index()], vec![n]);
    }
}

/// Renders the semantics graph in Graphviz dot format: one box per node,
/// edges along nets, registers drawn double-edged (they break cycles).
/// Useful for inspecting small designs (`zeusc graph ...`).
pub fn to_dot(nl: &Netlist) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("digraph zeus {\n  rankdir=LR;\n  node [fontname=monospace];\n");
    for (i, node) in nl.nodes.iter().enumerate() {
        let label = match &node.op {
            NodeOp::Const(v) => format!("const {v}"),
            NodeOp::Equal { width } => format!("EQUAL[{width}]"),
            other => format!("{other:?}"),
        };
        let shape = if node.op.is_sequential() {
            "doubleoctagon"
        } else if matches!(node.op, NodeOp::If) {
            "diamond"
        } else {
            "box"
        };
        let _ = writeln!(out, "  g{i} [label=\"{label}\", shape={shape}];");
    }
    // Net ownership: drivers -> readers, labeled with the net name.
    let drivers = nl.drivers_by_net();
    for (bi, node) in nl.nodes.iter().enumerate() {
        for inp in &node.inputs {
            for a in &drivers[inp.index()] {
                let name = &nl.nets[inp.index()].name;
                let _ = writeln!(
                    out,
                    "  g{} -> g{bi} [label=\"{}\"];",
                    a.index(),
                    name.replace('"', "'")
                );
            }
        }
        // Nets with no driving node are sources (primary inputs).
        if drivers[node.output.index()].len() == 1 && node.inputs.is_empty() {
            continue;
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    #[test]
    fn dot_export_contains_nodes_and_edges() {
        let mut nl = Netlist::new();
        let a = nl.add_net(zeus_sema::rules::BasicKind::Boolean, "a", Span::dummy());
        let b = nl.add_net(zeus_sema::rules::BasicKind::Boolean, "b", Span::dummy());
        let c = nl.add_net(zeus_sema::rules::BasicKind::Boolean, "c", Span::dummy());
        nl.add_node(NodeOp::Not, vec![a], b, None, Span::dummy());
        nl.add_node(NodeOp::Reg, vec![b], c, None, Span::dummy());
        let dot = to_dot(&nl);
        assert!(dot.starts_with("digraph zeus {"));
        assert!(dot.contains("Not"));
        assert!(dot.contains("doubleoctagon"), "registers stand out");
        assert!(dot.contains("g0 -> g1"));
        assert!(dot.ends_with("}\n"));
    }
}
