//! The elaborator: Zeus programs → flat netlists.
//!
//! Elaboration instantiates parameterized types, unrolls `FOR` replication,
//! decides `WHEN` conditional generation at compile time, lowers connection
//! statements to assignments (§4.3), performs `==` aliasing with a
//! union-find, inlines function component calls (§8), expands `NUM`-indexed
//! accesses into generated mux/demux hardware, interprets layout blocks
//! (including `virtual` replacement, §6.4) and enforces the static type
//! rules of §4.7.
//!
//! Sub-component bodies elaborate *lazily*: "this hardware is only
//! generated if it is used in connection or assignment statements later
//! on" (§4.2) — which is also what makes the recursive types of the paper
//! terminate.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;

use crate::design::{Design, Direction, InstanceNode, LayoutItem, Orientation, Port};
use crate::limits::{Governor, Limits};
use crate::netlist::{GroupConstraint, NetId, Netlist, NodeOp};
use crate::shape::{compose_mode, BuiltinComponent, FieldShape, RecordShape, Shape};
use zeus_sema::consts::{ConstScope, ConstVal, SigVal};
use zeus_sema::rules::{self, BasicKind, Exception1, RuleVerdict};
use zeus_sema::value::Value;
use zeus_sema::{bin, eval_const_expr, eval_sig_const};
use zeus_syntax::ast;
use zeus_syntax::ast::{AssignOp, Mode};
use zeus_syntax::diag::{codes, Diagnostic, Diagnostics};
use zeus_syntax::span::Span;

/// Tunable limits for elaboration — the historical name for [`Limits`],
/// kept as an alias now that the same struct governs the whole pipeline.
pub type ElabOptions = Limits;

/// Elaborates component type `top` of `program`, with actual numeric type
/// parameters `args`.
///
/// # Errors
///
/// Returns all diagnostics when the program violates the static rules, a
/// combinational loop exists, or elaboration does not terminate.
pub fn elaborate(program: &ast::Program, top: &str, args: &[i64]) -> Result<Design, Diagnostics> {
    elaborate_with(program, top, args, &ElabOptions::default())
}

/// [`elaborate`] with explicit limits.
///
/// # Errors
///
/// See [`elaborate`].
pub fn elaborate_with(
    program: &ast::Program,
    top: &str,
    args: &[i64],
    opts: &ElabOptions,
) -> Result<Design, Diagnostics> {
    let mut e = Elab::new(opts.clone());
    e.run(program, TopSpec::Type(top, args))
}

/// Elaborates the design instantiated by a top-level `SIGNAL` declaration,
/// e.g. `SIGNAL match: patternmatch(3);`.
///
/// # Errors
///
/// See [`elaborate`]; additionally errors when no such signal exists.
pub fn elaborate_signal(program: &ast::Program, signal: &str) -> Result<Design, Diagnostics> {
    elaborate_signal_with(program, signal, &ElabOptions::default())
}

/// [`elaborate_signal`] with explicit limits.
///
/// # Errors
///
/// See [`elaborate`].
pub fn elaborate_signal_with(
    program: &ast::Program,
    signal: &str,
    opts: &ElabOptions,
) -> Result<Design, Diagnostics> {
    let mut e = Elab::new(opts.clone());
    e.run(program, TopSpec::Signal(signal))
}

enum TopSpec<'s> {
    Type(&'s str, &'s [i64]),
    Signal(&'s str),
}

// ---------------------------------------------------------------------------
// Environments
// ---------------------------------------------------------------------------

struct Env<'a> {
    parent: Option<Rc<Env<'a>>>,
    consts: RefCell<HashMap<String, ConstVal>>,
    types: RefCell<HashMap<String, TypeClosure<'a>>>,
    signals: RefCell<HashMap<String, Rc<Slot>>>,
}

impl<'a> Env<'a> {
    fn root() -> Rc<Env<'a>> {
        Rc::new(Env {
            parent: None,
            consts: RefCell::new(HashMap::new()),
            types: RefCell::new(HashMap::new()),
            signals: RefCell::new(HashMap::new()),
        })
    }

    fn child(parent: &Rc<Env<'a>>) -> Rc<Env<'a>> {
        Rc::new(Env {
            parent: Some(Rc::clone(parent)),
            consts: RefCell::new(HashMap::new()),
            types: RefCell::new(HashMap::new()),
            signals: RefCell::new(HashMap::new()),
        })
    }

    fn lookup_type(&self, name: &str) -> Option<TypeClosure<'a>> {
        if let Some(t) = self.types.borrow().get(name) {
            return Some(t.clone());
        }
        self.parent.as_deref().and_then(|p| p.lookup_type(name))
    }

    fn lookup_signal(&self, name: &str) -> Option<Rc<Slot>> {
        if let Some(s) = self.signals.borrow().get(name) {
            return Some(Rc::clone(s));
        }
        self.parent.as_deref().and_then(|p| p.lookup_signal(name))
    }
}

impl ConstScope for Env<'_> {
    fn lookup_const(&self, name: &str) -> Option<ConstVal> {
        if let Some(c) = self.consts.borrow().get(name) {
            return Some(c.clone());
        }
        self.parent.as_deref().and_then(|p| p.lookup_const(name))
    }
}

#[derive(Clone)]
struct TypeClosure<'a> {
    name: String,
    params: &'a [ast::Ident],
    ty: &'a ast::Type,
    env: Rc<Env<'a>>,
}

/// A named, flattened signal: shape plus one net per basic bit.
struct Slot {
    path: String,
    shape: Shape,
    nets: Vec<NetId>,
}

// ---------------------------------------------------------------------------
// Bindings: the elaboration-relevant twin of a Shape
// ---------------------------------------------------------------------------

enum BindTree<'a> {
    Leaf,
    Array(Rc<BindTree<'a>>),
    Record(Binding<'a>, Vec<Rc<BindTree<'a>>>),
}

#[derive(Clone)]
enum Binding<'a> {
    None,
    Builtin(BuiltinComponent),
    Comp {
        comp: &'a ast::ComponentType,
        env: Rc<Env<'a>>,
        type_name: String,
    },
}

struct Pending<'a> {
    path: String,
    parent_path: String,
    key: String,
    kind: PendKind<'a>,
    shape: Arc<RecordShape>,
    nets: Vec<NetId>,
    span: Span,
}

enum PendKind<'a> {
    Builtin(BuiltinComponent),
    Comp {
        comp: &'a ast::ComponentType,
        env: Rc<Env<'a>>,
        type_name: String,
    },
}

// ---------------------------------------------------------------------------
// Per-body context
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum Role {
    Formal(Mode),
    Instance(Mode),
}

#[derive(Clone, Copy)]
enum RoleCtx {
    Formal(Mode),
    Instance(Mode),
    Local,
}

struct Ctx<'a> {
    env: Rc<Env<'a>>,
    roles: HashMap<u32, Role>,
    path: String,
    guard: Option<NetId>,
    group: Option<u32>,
    result: Option<ResultSlot>,
    /// Pendings declared in this body, checked/enqueued at body end.
    pendings: Vec<Pending<'a>>,
    /// Resolved layout items of this body.
    layout: Vec<LayoutItem>,
}

struct ResultSlot {
    nets: Vec<NetId>,
}

/// One resolved reference: possibly several guarded alternatives when a
/// `NUM` dynamic index is involved.
struct SigRes {
    arms: Vec<ResArm>,
}

struct ResArm {
    guard: Option<NetId>,
    shape: Shape,
    nets: Vec<NetId>,
    path: Option<String>,
    lvalue: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum RBit {
    Net { id: NetId, lvalue: bool },
    Star,
}

enum Seg {
    Bits(Vec<RBit>),
    BareStar(Span),
}

const F_READ: u8 = 1;
const F_ASSIGNED: u8 = 2;
const F_STARRED: u8 = 4;
const F_ALIASED: u8 = 8;

struct DriverRec {
    net: u32,
    cond: bool,
    span: Span,
}

// ---------------------------------------------------------------------------
// The elaborator
// ---------------------------------------------------------------------------

struct Elab<'a> {
    nl: Netlist,
    errs: Diagnostics,
    warns: Diagnostics,
    opts: ElabOptions,
    touched: Vec<u8>,
    drivers: Vec<DriverRec>,
    dedup: HashSet<(u32, u64, u64)>,
    queue: std::collections::VecDeque<Pending<'a>>,
    /// Registered but not yet used instances; re-scanned when the queue
    /// drains, because a lazily elaborated body may touch them.
    inactive: Vec<Pending<'a>>,
    connected: HashSet<String>,
    replacements: HashMap<String, Rc<Slot>>,
    replaced_once: HashSet<String>,
    gov: Governor,
    call_depth: usize,
    instance_count: usize,
    clk: Option<NetId>,
    rset: Option<NetId>,
    /// Pins of the top component: externally driven, exempt from the
    /// never-assigned warning.
    top_pins: HashSet<u32>,
    children: HashMap<String, Vec<(String, String, String)>>, // parent → (key, path, type)
    layouts: HashMap<String, Vec<LayoutItem>>,
    names: HashMap<String, NetId>,
}

type R<T> = Result<T, Diagnostic>;

impl<'a> Elab<'a> {
    fn new(opts: ElabOptions) -> Self {
        Elab {
            nl: Netlist::new(),
            errs: Diagnostics::new(),
            warns: Diagnostics::new(),
            gov: opts.governor(),
            opts,
            touched: Vec::new(),
            drivers: Vec::new(),
            dedup: HashSet::new(),
            queue: std::collections::VecDeque::new(),
            inactive: Vec::new(),
            connected: HashSet::new(),
            replacements: HashMap::new(),
            replaced_once: HashSet::new(),
            call_depth: 0,
            instance_count: 0,
            clk: None,
            rset: None,
            top_pins: HashSet::new(),
            children: HashMap::new(),
            layouts: HashMap::new(),
            names: HashMap::new(),
        }
    }

    /// Takes the accumulated errors, classifying untagged ones as `Z201`
    /// (so Z9xx limit codes set deeper in survive).
    fn take_errs(&mut self) -> Diagnostics {
        let mut ds = std::mem::take(&mut self.errs);
        ds.tag_default_code(codes::ELAB);
        ds
    }

    fn run(&mut self, program: &'a ast::Program, top: TopSpec<'_>) -> Result<Design, Diagnostics> {
        let root = Env::root();
        if let Err(d) = self.load_decls(&program.decls, &root, "") {
            self.errs.push(d);
            return Err(self.take_errs());
        }

        let (closure, args, top_name) = match top {
            TopSpec::Type(name, args) => match root.lookup_type(name) {
                Some(c) => (c, args.to_vec(), name.to_string()),
                None => {
                    self.errs.push(Diagnostic::error(
                        Span::dummy(),
                        format!("top component type '{name}' is not declared"),
                    ));
                    return Err(self.take_errs());
                }
            },
            TopSpec::Signal(name) => match self.find_top_signal(program, &root, name) {
                Ok(x) => x,
                Err(d) => {
                    self.errs.push(d);
                    return Err(self.take_errs());
                }
            },
        };

        let design = self.elaborate_top(closure, &args, &top_name);
        match design {
            Ok(d) if !self.errs.has_errors() => Ok(d),
            Ok(_) => Err(self.take_errs()),
            Err(d) => {
                self.errs.push(d);
                Err(self.take_errs())
            }
        }
    }

    fn find_top_signal(
        &mut self,
        program: &'a ast::Program,
        root: &Rc<Env<'a>>,
        name: &str,
    ) -> R<(TypeClosure<'a>, Vec<i64>, String)> {
        for d in &program.decls {
            if let ast::Decl::Signal(defs) = d {
                for def in defs {
                    if def.names.iter().any(|n| n.name == name) {
                        let ast::Type::Named { name: tn, args } = &def.ty else {
                            return Err(Diagnostic::error(
                                def.ty.span(),
                                "the top signal must instantiate a named component type",
                            ));
                        };
                        let closure = root.lookup_type(&tn.name).ok_or_else(|| {
                            Diagnostic::error(tn.span, format!("unknown type '{}'", tn.name))
                        })?;
                        let vals = args
                            .iter()
                            .map(|a| eval_const_expr(a, &**root))
                            .collect::<Result<Vec<_>, _>>()?;
                        return Ok((closure, vals, tn.name.clone()));
                    }
                }
            }
        }
        Err(Diagnostic::error(
            Span::dummy(),
            format!("no top-level signal '{name}' is declared"),
        ))
    }

    /// Loads one declaration list into an environment.
    fn load_decls(&mut self, decls: &'a [ast::Decl], env: &Rc<Env<'a>>, path: &str) -> R<()> {
        for d in decls {
            match d {
                ast::Decl::Const(defs) => {
                    for def in defs {
                        let v = zeus_sema::eval_constant(&def.value, &**env)?;
                        env.consts.borrow_mut().insert(def.name.name.clone(), v);
                    }
                }
                ast::Decl::Type(defs) => {
                    for def in defs {
                        env.types.borrow_mut().insert(
                            def.name.name.clone(),
                            TypeClosure {
                                name: def.name.name.clone(),
                                params: &def.params,
                                ty: &def.ty,
                                env: Rc::clone(env),
                            },
                        );
                    }
                }
                ast::Decl::Signal(_) => {
                    // Signal declarations are handled by the body
                    // elaborator (they need role marking and pending
                    // registration); top-level signals are only
                    // instantiated via `elaborate_signal`.
                    debug_assert!(path.is_empty(), "local signals handled in elab_body");
                }
            }
        }
        Ok(())
    }

    // -- type resolution ---------------------------------------------------

    fn resolve_type(
        &mut self,
        ty: &'a ast::Type,
        env: &Rc<Env<'a>>,
        depth: usize,
    ) -> R<(Shape, Rc<BindTree<'a>>)> {
        if depth > self.opts.max_type_depth {
            return Err(Diagnostic::error(
                ty.span(),
                "type nesting too deep (unbounded recursive type?)",
            )
            .with_code(codes::LIMIT_TYPE_DEPTH));
        }
        match ty {
            ast::Type::Array { lo, hi, elem, .. } => {
                let lo = eval_const_expr(lo, &**env)?;
                let hi = eval_const_expr(hi, &**env)?;
                let (es, eb) = self.resolve_type(elem, env, depth + 1)?;
                Ok((
                    Shape::Array {
                        lo,
                        hi,
                        elem: Arc::new(es),
                    },
                    Rc::new(BindTree::Array(eb)),
                ))
            }
            ast::Type::Component(c) => self.resolve_component(c, env, None, depth),
            ast::Type::Named { name, args } => match name.name.as_str() {
                "boolean" => {
                    self.no_args(name, args)?;
                    Ok((Shape::boolean(), Rc::new(BindTree::Leaf)))
                }
                "multiplex" => {
                    self.no_args(name, args)?;
                    Ok((Shape::multiplex(), Rc::new(BindTree::Leaf)))
                }
                "virtual" => {
                    self.no_args(name, args)?;
                    Ok((Shape::Virtual, Rc::new(BindTree::Leaf)))
                }
                "REG" => {
                    self.no_args(name, args)?;
                    Ok(reg_shape())
                }
                other => {
                    let closure = env.lookup_type(other).ok_or_else(|| {
                        Diagnostic::error(name.span, format!("unknown type '{other}'"))
                    })?;
                    if closure.params.len() != args.len() {
                        return Err(Diagnostic::error(
                            name.span,
                            format!(
                                "type '{other}' takes {} parameter(s) but {} given",
                                closure.params.len(),
                                args.len()
                            ),
                        ));
                    }
                    let vals = args
                        .iter()
                        .map(|a| eval_const_expr(a, &**env))
                        .collect::<Result<Vec<_>, _>>()?;
                    let tenv = Env::child(&closure.env);
                    for (p, v) in closure.params.iter().zip(vals) {
                        tenv.consts
                            .borrow_mut()
                            .insert(p.name.clone(), ConstVal::Num(v));
                    }
                    match closure.ty {
                        ast::Type::Component(c) => {
                            self.resolve_component(c, &tenv, Some(closure.name.clone()), depth)
                        }
                        other_ty => self.resolve_type(other_ty, &tenv, depth + 1),
                    }
                }
            },
        }
    }

    fn no_args(&self, name: &ast::Ident, args: &[ast::ConstExpr]) -> R<()> {
        if args.is_empty() {
            Ok(())
        } else {
            Err(Diagnostic::error(
                name.span,
                format!("type '{}' takes no parameters", name.name),
            ))
        }
    }

    fn resolve_component(
        &mut self,
        c: &'a ast::ComponentType,
        env: &Rc<Env<'a>>,
        type_name: Option<String>,
        depth: usize,
    ) -> R<(Shape, Rc<BindTree<'a>>)> {
        let mut fields = Vec::new();
        let mut binds = Vec::new();
        for group in &c.params {
            let (fs, fb) = self.resolve_type(&group.ty, env, depth + 1)?;
            // The basic-type restriction on formals applies to components
            // with a body; pure record types are wire bundles where the
            // paper's own `bus` example uses an INOUT boolean.
            if c.body.is_some() {
                if let Shape::Basic(kind) = fs {
                    if let RuleVerdict::Illegal(msg) = rules::formal_param_basic(group.mode, kind) {
                        return Err(Diagnostic::error(group.ty.span(), msg));
                    }
                }
            }
            for n in &group.names {
                fields.push(FieldShape {
                    name: n.name.clone(),
                    mode: group.mode,
                    shape: fs.clone(),
                });
                binds.push(Rc::clone(&fb));
            }
        }
        let has_body = c.body.is_some();
        let shape = Shape::Record(Arc::new(RecordShape {
            type_name: type_name.clone(),
            fields,
            has_body,
            builtin: None,
        }));
        let binding = if has_body {
            Binding::Comp {
                comp: c,
                env: Rc::clone(env),
                type_name: type_name.unwrap_or_else(|| "<anon>".to_string()),
            }
        } else {
            Binding::None
        };
        Ok((shape, Rc::new(BindTree::Record(binding, binds))))
    }

    // -- net & slot creation -------------------------------------------------

    fn touch(&mut self, net: NetId, flag: u8) {
        let i = net.index();
        if self.touched.len() <= i {
            self.touched.resize(i + 1, 0);
        }
        self.touched[i] |= flag;
    }

    fn is_touched(&self, net: NetId) -> bool {
        self.touched.get(net.index()).copied().unwrap_or(0) != 0
    }

    /// One unit of elaboration work: charges fuel, checks the deadline
    /// (amortized) and the netlist-size budgets. Called per instance and
    /// per statement, so unrolled `FOR` replication and runaway recursion
    /// both hit it promptly.
    fn check_budgets(&mut self, span: Span) -> R<()> {
        self.gov.charge(1, span)?;
        if self.nl.nets.len() > self.opts.max_nets {
            return Err(Diagnostic::error(
                span,
                format!(
                    "design exceeds the net budget (limit {}): recursive type \
                     instantiation does not terminate (missing WHEN guard?) or the \
                     design is larger than the configured limit",
                    self.opts.max_nets
                ),
            )
            .with_code(codes::LIMIT_NETS));
        }
        if self.nl.nodes.len() > self.opts.max_nodes {
            return Err(Diagnostic::error(
                span,
                format!(
                    "design exceeds the node budget (limit {}): the design is larger \
                     than the configured limit",
                    self.opts.max_nodes
                ),
            )
            .with_code(codes::LIMIT_NODES));
        }
        Ok(())
    }

    fn make_nets(&mut self, shape: &Shape, path: &str, span: Span) -> Vec<NetId> {
        let mut names = Vec::with_capacity(shape.bit_len());
        shape.bit_names(path, &mut names);
        let kinds = shape.bits_with_modes();
        debug_assert_eq!(names.len(), kinds.len());
        names
            .into_iter()
            .zip(kinds)
            .map(|(name, (kind, _))| {
                let id = self.nl.add_net(kind, name.clone(), span);
                self.names.insert(name, id);
                id
            })
            .collect()
    }

    /// Registers pending instances for every record-with-body in the slot.
    #[allow(clippy::too_many_arguments)]
    fn register_pendings(
        &mut self,
        ctx: &mut Ctx<'a>,
        shape: &Shape,
        bind: &BindTree<'a>,
        nets: &[NetId],
        path: &str,
        parent_path: &str,
        span: Span,
    ) -> R<()> {
        match (shape, bind) {
            (Shape::Array { lo, hi, elem }, BindTree::Array(eb)) => {
                let n = Shape::array_len(*lo, *hi);
                let w = elem.bit_len();
                for i in 0..n {
                    self.register_pendings(
                        ctx,
                        elem,
                        eb,
                        &nets[i * w..(i + 1) * w],
                        &format!("{path}[{}]", lo + i as i64),
                        parent_path,
                        span,
                    )?;
                }
                Ok(())
            }
            (Shape::Record(r), BindTree::Record(binding, fbinds)) => {
                let mut inner_parent = parent_path.to_string();
                if r.has_body {
                    self.instance_count += 1;
                    if self.instance_count > self.opts.max_instances {
                        return Err(Diagnostic::error(
                            span,
                            "too many component instances: recursive type instantiation \
                             does not terminate (missing WHEN guard?)",
                        )
                        .with_code(codes::LIMIT_INSTANCES));
                    }
                    let kind = match (binding, r.builtin) {
                        (_, Some(b)) => Some(PendKind::Builtin(b)),
                        (Binding::Builtin(b), _) => Some(PendKind::Builtin(*b)),
                        (
                            Binding::Comp {
                                comp,
                                env,
                                type_name,
                            },
                            _,
                        ) => Some(PendKind::Comp {
                            comp,
                            env: Rc::clone(env),
                            type_name: type_name.clone(),
                        }),
                        (Binding::None, None) => None,
                    };
                    if let Some(kind) = kind {
                        let key = path
                            .strip_prefix(&format!("{parent_path}."))
                            .unwrap_or(path)
                            .to_string();
                        ctx.pendings.push(Pending {
                            path: path.to_string(),
                            parent_path: parent_path.to_string(),
                            key,
                            kind,
                            shape: Arc::clone(r),
                            nets: nets.to_vec(),
                            span,
                        });
                    }
                    inner_parent = path.to_string();
                }
                let offsets = r.field_offsets();
                for ((f, fb), w) in r
                    .fields
                    .iter()
                    .zip(fbinds)
                    .zip(offsets.windows(2).map(|w| (w[0], w[1])))
                {
                    self.register_pendings(
                        ctx,
                        &f.shape,
                        fb,
                        &nets[w.0..w.1],
                        &format!("{path}.{}", f.name),
                        &inner_parent,
                        span,
                    )?;
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    // -- roles ---------------------------------------------------------------

    fn mark_roles(roles: &mut HashMap<u32, Role>, shape: &Shape, ctx: RoleCtx, nets: &[NetId]) {
        let mut idx = 0usize;
        Self::mark_roles_rec(roles, shape, ctx, nets, &mut idx);
    }

    fn mark_roles_rec(
        roles: &mut HashMap<u32, Role>,
        shape: &Shape,
        ctx: RoleCtx,
        nets: &[NetId],
        idx: &mut usize,
    ) {
        match shape {
            Shape::Basic(_) => {
                let net = nets[*idx];
                *idx += 1;
                match ctx {
                    RoleCtx::Formal(m) => {
                        roles.insert(net.0, Role::Formal(m));
                    }
                    RoleCtx::Instance(m) => {
                        roles.insert(net.0, Role::Instance(m));
                    }
                    RoleCtx::Local => {}
                }
            }
            Shape::Virtual => {}
            Shape::Array { lo, hi, elem } => {
                for _ in 0..Shape::array_len(*lo, *hi) {
                    Self::mark_roles_rec(roles, elem, ctx, nets, idx);
                }
            }
            Shape::Record(r) => {
                for f in &r.fields {
                    let child = if r.has_body {
                        // Crossing into an instantiated component: bits are
                        // now that instance's pins.
                        let inherited = match ctx {
                            RoleCtx::Formal(m) | RoleCtx::Instance(m) => m,
                            RoleCtx::Local => Mode::InOut,
                        };
                        RoleCtx::Instance(compose_mode(inherited, f.mode))
                    } else {
                        match ctx {
                            RoleCtx::Formal(m) => RoleCtx::Formal(compose_mode(m, f.mode)),
                            RoleCtx::Instance(m) => RoleCtx::Instance(compose_mode(m, f.mode)),
                            RoleCtx::Local => RoleCtx::Local,
                        }
                    };
                    Self::mark_roles_rec(roles, &f.shape, child, nets, idx);
                }
            }
        }
    }

    // -- top-level ------------------------------------------------------------

    fn elaborate_top(
        &mut self,
        closure: TypeClosure<'a>,
        args: &[i64],
        top_name: &str,
    ) -> R<Design> {
        if closure.params.len() != args.len() {
            return Err(Diagnostic::error(
                Span::dummy(),
                format!(
                    "top type '{top_name}' takes {} parameter(s) but {} given",
                    closure.params.len(),
                    args.len()
                ),
            ));
        }
        let tenv = Env::child(&closure.env);
        for (p, v) in closure.params.iter().zip(args) {
            tenv.consts
                .borrow_mut()
                .insert(p.name.clone(), ConstVal::Num(*v));
        }
        let ast::Type::Component(comp) = closure.ty else {
            return Err(Diagnostic::error(
                closure.ty.span(),
                format!("top type '{top_name}' is not a component type"),
            ));
        };
        if comp.body.is_none() {
            return Err(Diagnostic::error(
                comp.span,
                format!("top component type '{top_name}' has no body"),
            ));
        }
        let (shape, _bind) = self.resolve_component(comp, &tenv, Some(top_name.to_string()), 0)?;
        let Shape::Record(rec) = &shape else {
            return Err(Diagnostic::internal(
                comp.span,
                "component type did not resolve to a record shape",
            ));
        };
        let rec = Arc::clone(rec);
        let nets = self.make_nets(&shape, top_name, comp.span);

        // Ports from top-level fields.
        let offsets = rec.field_offsets();
        let mut ports: Vec<Port> = Vec::new();
        for (i, f) in rec.fields.iter().enumerate() {
            ports.push(Port {
                name: f.name.clone(),
                mode: f.mode,
                shape: f.shape.clone(),
                nets: nets[offsets[i]..offsets[i + 1]].to_vec(),
            });
        }
        // Touch the top pins so the body is considered fully used; they
        // are externally driven, so exempt them from driver warnings.
        for &n in &nets {
            self.touch(n, F_READ);
            self.top_pins.insert(n.0);
        }

        let top_pending = Pending {
            path: top_name.to_string(),
            parent_path: String::new(),
            key: top_name.to_string(),
            kind: PendKind::Comp {
                comp,
                env: tenv,
                type_name: top_name.to_string(),
            },
            shape: Arc::clone(&rec),
            nets: nets.clone(),
            span: comp.span,
        };
        self.elab_instance(top_pending)?;

        // Fixpoint over lazily generated instances: hardware is only
        // generated when used (§4.2); usage can appear in bodies that
        // themselves elaborate lazily.
        loop {
            while let Some(p) = self.queue.pop_front() {
                // Closed-port rule (§4.1): at this point the parent's body
                // (and everything else that may legally reference this
                // instance's pins) has elaborated, while the instance's own
                // body has not — so the touch flags reflect exactly the
                // parent-side usage the rule is about.
                self.check_ports(&p);
                self.check_budgets(p.span)?;
                self.elab_instance(p)?;
            }
            let mut progressed = false;
            let mut still = Vec::new();
            for p in std::mem::take(&mut self.inactive) {
                if p.nets.iter().any(|&n| self.is_touched(n)) {
                    self.queue.push_back(p);
                    progressed = true;
                } else {
                    still.push(p);
                }
            }
            self.inactive = still;
            if !progressed {
                break;
            }
        }

        // Finish: canonicalize aliases, check cycles.
        if let Err(ds) = self.nl.finish() {
            for d in ds {
                self.errs.push(d);
            }
        }
        self.check_drivers();
        if let Err(d) = self.nl.check_group_compatibility() {
            self.errs.push(d);
        }

        // Canonicalize exported net references.
        for p in &mut ports {
            for n in &mut p.nets {
                *n = self.nl.find(*n);
            }
        }
        let clk = self.clk.map(|n| self.nl.find(n));
        let rset = self.rset.map(|n| self.nl.find(n));
        let mut names = std::mem::take(&mut self.names);
        for v in names.values_mut() {
            *v = self.nl.find(*v);
        }

        let instances = self.build_tree(top_name.to_string(), top_name.to_string(), top_name);

        Ok(Design {
            netlist: std::mem::take(&mut self.nl),
            top_type: top_name.to_string(),
            ports,
            instances,
            warnings: std::mem::take(&mut self.warns),
            clk,
            rset,
            names,
            optimized: false,
        })
    }

    fn build_tree(&mut self, path: String, key: String, type_name: &str) -> InstanceNode {
        let children = self
            .children
            .remove(&path)
            .unwrap_or_default()
            .into_iter()
            .map(|(k, p, t)| self.build_tree(p, k, &t))
            .collect();
        InstanceNode {
            key,
            layout: self.layouts.remove(&path).unwrap_or_default(),
            children,
            type_name: type_name.to_string(),
            path,
        }
    }

    // -- instance elaboration -------------------------------------------------

    /// Every port of a generated instance must be used, assigned or
    /// closed with '*' by its environment (§4.1).
    fn check_ports(&mut self, p: &Pending<'a>) {
        let offsets = p.shape.field_offsets();
        for (i, f) in p.shape.fields.iter().enumerate() {
            let pins = &p.nets[offsets[i]..offsets[i + 1]];
            if !pins.is_empty() && !pins.iter().any(|&n| self.is_touched(n)) {
                self.errs.push(Diagnostic::error(
                    p.span,
                    format!(
                        "port '{}' of component '{}' is neither used nor assigned; \
                         close unused ports explicitly with '*'",
                        f.name, p.path
                    ),
                ));
            }
        }
    }

    fn elab_instance(&mut self, p: Pending<'a>) -> R<()> {
        match p.kind {
            PendKind::Builtin(BuiltinComponent::Reg) => {
                // REG: out is in of the previous clock cycle.
                self.nl
                    .add_node(NodeOp::Reg, vec![p.nets[0]], p.nets[1], None, p.span);
                if !p.parent_path.is_empty() {
                    self.children
                        .entry(p.parent_path.clone())
                        .or_default()
                        .push((p.key, p.path, "REG".to_string()));
                }
                Ok(())
            }
            PendKind::Comp {
                comp,
                env,
                ref type_name,
            } => {
                if !p.parent_path.is_empty() {
                    self.children
                        .entry(p.parent_path.clone())
                        .or_default()
                        .push((p.key.clone(), p.path.clone(), type_name.clone()));
                }
                let Some(body) = comp.body.as_ref() else {
                    return Err(Diagnostic::internal(
                        p.span,
                        "pending instance has a component type without a body",
                    ));
                };
                let benv = Env::child(&env);
                let mut ctx = Ctx {
                    env: Rc::clone(&benv),
                    roles: HashMap::new(),
                    path: p.path.clone(),
                    guard: None,
                    group: None,
                    result: None,
                    pendings: Vec::new(),
                    layout: Vec::new(),
                };
                // Bind formals as slots over the pin nets; mark roles.
                let offsets = p.shape.field_offsets();
                for (i, f) in p.shape.fields.iter().enumerate() {
                    let nets = p.nets[offsets[i]..offsets[i + 1]].to_vec();
                    Self::mark_roles(&mut ctx.roles, &f.shape, RoleCtx::Formal(f.mode), &nets);
                    benv.signals.borrow_mut().insert(
                        f.name.clone(),
                        Rc::new(Slot {
                            path: format!("{}.{}", p.path, f.name),
                            shape: f.shape.clone(),
                            nets,
                        }),
                    );
                }
                self.elab_body(&mut ctx, comp, body)?;
                Ok(())
            }
        }
    }

    /// Elaborates a component body in context `ctx` (shared by lazily
    /// elaborated instances and inlined function calls).
    fn elab_body(
        &mut self,
        ctx: &mut Ctx<'a>,
        comp: &'a ast::ComponentType,
        body: &'a ast::ComponentBody,
    ) -> R<()> {
        // Local declarations.
        let env = Rc::clone(&ctx.env);
        for d in &body.decls {
            match d {
                ast::Decl::Signal(defs) => {
                    for def in defs {
                        for n in &def.names {
                            let (shape, bindt) = self.resolve_type(&def.ty, &env, 0)?;
                            let slot_path = format!("{}.{}", ctx.path, n.name);
                            let parent = ctx.path.clone();
                            let nets = self.make_nets(&shape, &slot_path, n.span);
                            Self::mark_roles(&mut ctx.roles, &shape, RoleCtx::Local, &nets);
                            self.register_pendings(
                                ctx, &shape, &bindt, &nets, &slot_path, &parent, n.span,
                            )?;
                            env.signals.borrow_mut().insert(
                                n.name.clone(),
                                Rc::new(Slot {
                                    path: slot_path,
                                    shape,
                                    nets,
                                }),
                            );
                        }
                    }
                }
                other => self.load_decls(std::slice::from_ref(other), &env, &ctx.path.clone())?,
            }
        }

        // Layout blocks: header (boundary pins) then pre-BEGIN block.
        // Replacements of virtual signals must run before statements.
        let mut items = Vec::new();
        for l in &comp.header_layout {
            if let Err(d) = self.interp_layout(ctx, l, &mut items) {
                self.errs.push(d);
            }
        }
        for l in &body.layout {
            if let Err(d) = self.interp_layout(ctx, l, &mut items) {
                self.errs.push(d);
            }
        }
        ctx.layout.extend(items);

        // Statements (order irrelevant; errors are collected per statement).
        for s in &body.stmts {
            if let Err(d) = self.elab_stmt(ctx, s) {
                self.errs.push(d);
            }
        }

        // Save layout; defer the used-instance decision to the global
        // fixpoint (a sibling's lazily elaborated body may touch pins).
        self.layouts
            .insert(ctx.path.clone(), std::mem::take(&mut ctx.layout));
        self.inactive.append(&mut ctx.pendings);
        Ok(())
    }

    // -- statements -------------------------------------------------------------

    fn elab_stmt(&mut self, ctx: &mut Ctx<'a>, s: &'a ast::Stmt) -> R<()> {
        self.check_budgets(s.span())?;
        match s {
            ast::Stmt::Empty(_) => Ok(()),
            ast::Stmt::Assign { lhs, op, rhs, span } => match op {
                AssignOp::Define => self.elab_assign(ctx, lhs, rhs, *span),
                AssignOp::Alias => self.elab_alias(ctx, lhs, rhs, *span),
            },
            ast::Stmt::Connection { target, args, span } => {
                self.elab_connection(ctx, target, args.as_ref(), *span)
            }
            ast::Stmt::If { arms, els, .. } => self.elab_if(ctx, arms, els.as_deref()),
            ast::Stmt::WhenGen {
                arms, otherwise, ..
            } => {
                for (cond, stmts) in arms {
                    if eval_const_expr(cond, &*ctx.env)? != 0 {
                        for st in stmts {
                            self.elab_stmt(ctx, st)?;
                        }
                        return Ok(());
                    }
                }
                if let Some(o) = otherwise {
                    for st in o {
                        self.elab_stmt(ctx, st)?;
                    }
                }
                Ok(())
            }
            ast::Stmt::For {
                var,
                from,
                to,
                downto,
                sequentially,
                body,
                ..
            } => {
                let a = eval_const_expr(from, &*ctx.env)?;
                let b = eval_const_expr(to, &*ctx.env)?;
                let indices: Vec<i64> = if *downto {
                    (b..=a).rev().collect()
                } else {
                    (a..=b).collect()
                };
                let outer_env = Rc::clone(&ctx.env);
                let outer_group = ctx.group;
                let mut prev_group: Option<u32> = None;
                for i in indices {
                    let ienv = Env::child(&outer_env);
                    ienv.consts
                        .borrow_mut()
                        .insert(var.name.clone(), ConstVal::Num(i));
                    ctx.env = ienv;
                    if *sequentially {
                        let g = self.alloc_group(outer_group);
                        if let Some(pg) = prev_group {
                            self.nl.group_constraints.push(GroupConstraint {
                                before: pg,
                                after: g,
                            });
                        }
                        prev_group = Some(g);
                        ctx.group = Some(g);
                    }
                    let result: R<()> = body.iter().try_for_each(|st| self.elab_stmt(ctx, st));
                    ctx.env = Rc::clone(&outer_env);
                    ctx.group = outer_group;
                    result?;
                }
                Ok(())
            }
            ast::Stmt::Sequential(body, _) => {
                let outer_group = ctx.group;
                let mut prev: Option<u32> = None;
                for st in body {
                    let g = self.alloc_group(outer_group);
                    if let Some(pg) = prev {
                        self.nl.group_constraints.push(GroupConstraint {
                            before: pg,
                            after: g,
                        });
                    }
                    prev = Some(g);
                    ctx.group = Some(g);
                    let r = self.elab_stmt(ctx, st);
                    ctx.group = outer_group;
                    r?;
                }
                Ok(())
            }
            ast::Stmt::Parallel(body, _) => {
                for st in body {
                    self.elab_stmt(ctx, st)?;
                }
                Ok(())
            }
            ast::Stmt::With { signal, body, .. } => {
                let res = self.resolve_signal(ctx, signal)?;
                let arm = self.single_arm(res, signal.span)?;
                let Shape::Record(rec) = &arm.shape else {
                    return Err(Diagnostic::error(
                        signal.span,
                        "WITH requires a signal of component (record) type",
                    ));
                };
                let Some(base_path) = &arm.path else {
                    return Err(Diagnostic::error(
                        signal.span,
                        "WITH requires a fully specified signal (§4.6)",
                    ));
                };
                let wenv = Env::child(&ctx.env);
                let offsets = rec.field_offsets();
                for (i, f) in rec.fields.iter().enumerate() {
                    wenv.signals.borrow_mut().insert(
                        f.name.clone(),
                        Rc::new(Slot {
                            path: format!("{base_path}.{}", f.name),
                            shape: f.shape.clone(),
                            nets: arm.nets[offsets[i]..offsets[i + 1]].to_vec(),
                        }),
                    );
                }
                let outer = std::mem::replace(&mut ctx.env, wenv);
                let r: R<()> = body.iter().try_for_each(|st| self.elab_stmt(ctx, st));
                ctx.env = outer;
                r
            }
            ast::Stmt::Result(e, span) => {
                let Some(result_nets) = ctx.result.as_ref().map(|r| r.nets.clone()) else {
                    return Err(Diagnostic::error(
                        *span,
                        "RESULT is only allowed in a function component type",
                    ));
                };
                let bits = self.flatten_expr(ctx, e, Some(result_nets.len()))?;
                if bits.len() != result_nets.len() {
                    return Err(Diagnostic::error(
                        *span,
                        format!(
                            "RESULT expression has {} basic signals but the result type has {}",
                            bits.len(),
                            result_nets.len()
                        ),
                    ));
                }
                for (dst, bit) in result_nets.iter().zip(bits) {
                    match bit {
                        RBit::Star => self.touch(*dst, F_STARRED),
                        RBit::Net { id, .. } => {
                            self.assign_bit(ctx, *dst, id, None, *span)?;
                        }
                    }
                }
                Ok(())
            }
        }
    }

    fn alloc_group(&mut self, parent: Option<u32>) -> u32 {
        let g = self.nl.group_parents.len() as u32;
        self.nl.group_parents.push(parent.unwrap_or(u32::MAX));
        g
    }

    fn elab_if(
        &mut self,
        ctx: &mut Ctx<'a>,
        arms: &'a [(ast::Expr, Vec<ast::Stmt>)],
        els: Option<&'a [ast::Stmt]>,
    ) -> R<()> {
        // IF b1 THEN s1 ELSIF b2 THEN s2 ... ELSE sn END is rewritten to
        // guards b1, AND(NOT b1, b2), ..., AND(NOT b1,...,NOT bn-1) (§8).
        let mut neg_acc: Option<NetId> = None;
        for (cond, stmts) in arms {
            let cbits = self.flatten_expr(ctx, cond, Some(1))?;
            let cnet = self.expect_one_net(&cbits, cond.span())?;
            let this_guard = self.and_opt(ctx, neg_acc, cnet, cond.span());
            let saved = ctx.guard;
            ctx.guard = self.combine(ctx, saved, Some(this_guard), cond.span());
            let r: R<()> = stmts.iter().try_for_each(|st| self.elab_stmt(ctx, st));
            ctx.guard = saved;
            r?;
            let ncond = self.mk_unary(ctx, NodeOp::Not, cnet, cond.span());
            neg_acc = Some(self.and_opt(ctx, neg_acc, ncond, cond.span()));
        }
        if let Some(stmts) = els {
            let Some(g) = neg_acc else {
                return Err(Diagnostic::internal(
                    Span::dummy(),
                    "IF statement with an ELSE branch but no THEN arms",
                ));
            };
            let saved = ctx.guard;
            ctx.guard = self.combine(ctx, saved, Some(g), Span::dummy());
            let r: R<()> = stmts.iter().try_for_each(|st| self.elab_stmt(ctx, st));
            ctx.guard = saved;
            r?;
        }
        Ok(())
    }

    fn expect_one_net(&mut self, bits: &[RBit], span: Span) -> R<NetId> {
        if bits.len() != 1 {
            return Err(Diagnostic::error(
                span,
                format!("a condition must be one basic signal, found {}", bits.len()),
            ));
        }
        match bits[0] {
            RBit::Net { id, .. } => Ok(id),
            RBit::Star => Err(Diagnostic::error(span, "'*' cannot be used as a condition")),
        }
    }

    fn and_opt(&mut self, ctx: &Ctx<'a>, acc: Option<NetId>, b: NetId, span: Span) -> NetId {
        match acc {
            None => b,
            Some(a) => {
                let out = self.nl.add_net(BasicKind::Boolean, "<guard>", span);
                self.nl
                    .add_node(NodeOp::And, vec![a, b], out, ctx.group, span);
                out
            }
        }
    }

    /// Conjunction of two optional guards; `None` means "always active".
    fn combine(
        &mut self,
        ctx: &Ctx<'a>,
        a: Option<NetId>,
        b: Option<NetId>,
        span: Span,
    ) -> Option<NetId> {
        match (a, b) {
            (Some(a), Some(b)) => {
                let out = self.nl.add_net(BasicKind::Boolean, "<guard>", span);
                self.nl
                    .add_node(NodeOp::And, vec![a, b], out, ctx.group, span);
                Some(out)
            }
            (x, None) | (None, x) => x,
        }
    }

    fn mk_unary(&mut self, ctx: &Ctx<'a>, op: NodeOp, input: NetId, span: Span) -> NetId {
        let out = self.nl.add_net(BasicKind::Boolean, "<tmp>", span);
        self.nl.add_node(op, vec![input], out, ctx.group, span);
        out
    }

    fn const_net(&mut self, ctx: &Ctx<'a>, v: Value, span: Span) -> NetId {
        let kind = if v == Value::NoInfl {
            BasicKind::Multiplex
        } else {
            BasicKind::Boolean
        };
        let out = self.nl.add_net(kind, format!("<const {v}>"), span);
        self.nl
            .add_node(NodeOp::Const(v), Vec::new(), out, ctx.group, span);
        out
    }

    // -- assignments -------------------------------------------------------------

    fn elab_assign(
        &mut self,
        ctx: &mut Ctx<'a>,
        lhs: &'a ast::Signal,
        rhs: &'a ast::Expr,
        span: Span,
    ) -> R<()> {
        match lhs {
            ast::Signal::Star(_) => {
                // "* := x.b": x.b remains available; reads are marked.
                let _ = self.flatten_expr(ctx, rhs, None)?;
                Ok(())
            }
            ast::Signal::Ref(r) => {
                let res = self.resolve_signal(ctx, r)?;
                for arm in &res.arms {
                    if !arm.lvalue {
                        return Err(Diagnostic::error(
                            r.span,
                            "the left-hand side of ':=' must be a signal",
                        ));
                    }
                }
                let width = res.arms.first().map(|a| a.nets.len()).unwrap_or(0);
                let bits = self.flatten_expr(ctx, rhs, Some(width))?;
                if bits.len() != width {
                    return Err(Diagnostic::error(
                        span,
                        format!(
                            "assignment width mismatch: left side has {width} basic \
                             signals, right side has {}",
                            bits.len()
                        ),
                    ));
                }
                for arm in &res.arms {
                    for (&dst, &bit) in arm.nets.iter().zip(&bits) {
                        match bit {
                            RBit::Star => self.touch(dst, F_STARRED),
                            RBit::Net { id, .. } => {
                                self.assign_bit(ctx, dst, id, arm.guard, span)?;
                            }
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// One basic assignment `dst := src` under the current guard plus an
    /// optional extra (dynamic-index) guard — the workhorse that applies
    /// type rules (1) and the driver bookkeeping.
    fn assign_bit(
        &mut self,
        ctx: &mut Ctx<'a>,
        dst: NetId,
        src: NetId,
        extra_guard: Option<NetId>,
        span: Span,
    ) -> R<()> {
        let cur = ctx.guard;
        let guard = self.combine(ctx, cur, extra_guard, span);
        let role = ctx.roles.get(&dst.0).copied();
        match role {
            Some(Role::Formal(Mode::In)) => {
                return Err(Diagnostic::error(
                    span,
                    format!(
                        "no assignment is allowed to formal IN parameter '{}' within the \
                         defining component (§3.2)",
                        self.nl.nets[dst.index()].name
                    ),
                ));
            }
            Some(Role::Instance(Mode::Out)) => {
                return Err(Diagnostic::error(
                    span,
                    format!(
                        "no assignment is allowed to OUT parameter '{}' of an instantiated \
                         component (§3.2)",
                        self.nl.nets[dst.index()].name
                    ),
                ));
            }
            _ => {}
        }
        let exc = Exception1 {
            formal_out: role == Some(Role::Formal(Mode::Out)),
            instance_in: role == Some(Role::Instance(Mode::In)),
        };
        let dst_kind = self.nl.nets[dst.index()].kind;
        let src_kind = self.nl.nets[src.index()].kind;
        let verdict = if guard.is_none() {
            rules::unconditional_assign(dst_kind, src_kind)
        } else {
            rules::conditional_assign(dst_kind, exc)
        };
        match verdict {
            RuleVerdict::Illegal(msg) => {
                return Err(Diagnostic::error(
                    span,
                    format!(
                        "{} '{}': {msg}",
                        "illegal assignment to",
                        self.nl.nets[dst.index()].name
                    ),
                ))
            }
            RuleVerdict::Warn(msg) => self.warns.push(Diagnostic::warning(span, msg)),
            RuleVerdict::Legal => {}
        }
        // Identical repeated connections are allowed (§4.3); dedupe them.
        let key = (
            dst.0,
            guard.map(|g| g.0 as u64 + 1).unwrap_or(0),
            src.0 as u64,
        );
        if !self.dedup.insert(key) {
            return Ok(());
        }
        self.drivers.push(DriverRec {
            net: dst.0,
            cond: guard.is_some(),
            span,
        });
        match guard {
            Some(g) => {
                self.nl
                    .add_node(NodeOp::If, vec![g, src], dst, ctx.group, span);
            }
            None => {
                self.nl
                    .add_node(NodeOp::Buf, vec![src], dst, ctx.group, span);
            }
        }
        self.touch(dst, F_ASSIGNED);
        self.touch(src, F_READ);
        Ok(())
    }

    fn elab_alias(
        &mut self,
        ctx: &mut Ctx<'a>,
        lhs: &'a ast::Signal,
        rhs: &'a ast::Expr,
        span: Span,
    ) -> R<()> {
        if ctx.guard.is_some() {
            return Err(Diagnostic::error(
                span,
                "aliasing ('==') must not occur within a conditional statement (§4.1)",
            ));
        }
        let lnets: Vec<RBit> = match lhs {
            ast::Signal::Star(_) => {
                // "* == x.b" closes x.b.
                let bits = self.flatten_expr(ctx, rhs, None)?;
                for b in &bits {
                    if let RBit::Net { id, .. } = b {
                        self.touch(*id, F_STARRED);
                    }
                }
                return Ok(());
            }
            ast::Signal::Ref(r) => {
                let res = self.resolve_signal(ctx, r)?;
                let arm = self.single_arm(res, r.span)?;
                if !arm.lvalue {
                    return Err(Diagnostic::error(r.span, "'==' requires signals"));
                }
                arm.nets
                    .iter()
                    .map(|&n| RBit::Net {
                        id: n,
                        lvalue: true,
                    })
                    .collect()
            }
        };
        let rbits = self.flatten_expr(ctx, rhs, Some(lnets.len()))?;
        if rbits.len() != lnets.len() {
            return Err(Diagnostic::error(
                span,
                format!(
                    "aliasing width mismatch: left side has {} basic signals, right side has {}",
                    lnets.len(),
                    rbits.len()
                ),
            ));
        }
        for (l, r) in lnets.iter().zip(&rbits) {
            match (l, r) {
                (RBit::Net { id: a, .. }, RBit::Net { id: b, lvalue }) => {
                    if !lvalue {
                        return Err(Diagnostic::error(
                            span,
                            "'==' requires signals on both sides",
                        ));
                    }
                    self.alias_bit(ctx, *a, *b, span)?;
                }
                (RBit::Net { id, .. }, RBit::Star) | (RBit::Star, RBit::Net { id, .. }) => {
                    // "x.b == *" is an empty assignment; the port counts
                    // as closed.
                    self.touch(*id, F_STARRED);
                }
                (RBit::Star, RBit::Star) => {}
            }
        }
        Ok(())
    }

    fn alias_bit(&mut self, ctx: &mut Ctx<'a>, a: NetId, b: NetId, span: Span) -> R<()> {
        let role_a = ctx.roles.get(&a.0).copied();
        let role_b = ctx.roles.get(&b.0).copied();
        let exc = |r: Option<Role>| Exception1 {
            formal_out: r == Some(Role::Formal(Mode::Out)),
            instance_in: r == Some(Role::Instance(Mode::In)),
        };
        let ka = self.nl.nets[a.index()].kind;
        let kb = self.nl.nets[b.index()].kind;
        match rules::alias(ka, kb, exc(role_a), exc(role_b)) {
            RuleVerdict::Illegal(msg) => {
                return Err(Diagnostic::error(
                    span,
                    format!(
                        "illegal aliasing of '{}' with '{}': {msg}",
                        self.nl.nets[a.index()].name,
                        self.nl.nets[b.index()].name
                    ),
                ))
            }
            RuleVerdict::Warn(msg) => self.warns.push(Diagnostic::warning(span, msg)),
            RuleVerdict::Legal => {}
        }
        self.nl.union(a, b);
        self.touch(a, F_ALIASED);
        self.touch(b, F_ALIASED);
        Ok(())
    }

    // -- connections ------------------------------------------------------------

    fn elab_connection(
        &mut self,
        ctx: &mut Ctx<'a>,
        target: &'a ast::SignalRef,
        args: Option<&'a ast::Expr>,
        span: Span,
    ) -> R<()> {
        let res = self.resolve_signal(ctx, target)?;
        let arm = self.single_arm(res, target.span)?;
        let Some(args) = args else {
            self.warns.push(Diagnostic::warning(
                span,
                "connection statement without parameters has no effect",
            ));
            return Ok(());
        };
        // Determine the element interface and count.
        let (rec, count) =
            match &arm.shape {
                Shape::Record(r) if r.has_body => (Arc::clone(r), 1usize),
                Shape::Array { lo, hi, elem } => match &**elem {
                    Shape::Record(r) if r.has_body => (Arc::clone(r), Shape::array_len(*lo, *hi)),
                    _ => {
                        return Err(Diagnostic::error(
                            target.span,
                            "a connection statement requires an instantiated component (or an \
                         array of equal components) with a body (§4.3)",
                        ))
                    }
                },
                _ => return Err(Diagnostic::error(
                    target.span,
                    "a connection statement requires an instantiated component with a body (§4.3)",
                )),
            };
        if let Some(p) = &arm.path {
            if !self.connected.insert(p.clone()) {
                return Err(Diagnostic::error(
                    span,
                    format!(
                        "at most one connection statement is allowed for component '{p}' (§4.3)"
                    ),
                ));
            }
        }
        let offsets = rec.field_offsets();
        // field_offsets returns `fields + 1` entries, so `last` exists even
        // for an empty record (the total width, 0).
        let elem_width = *offsets.last().unwrap_or(&0);
        let total = elem_width * count;
        let bits = self.flatten_expr(ctx, args, Some(total))?;
        if bits.len() != total {
            return Err(Diagnostic::error(
                span,
                format!(
                    "connection to '{}' needs {total} basic signals but {} were supplied",
                    arm.path.as_deref().unwrap_or("<component>"),
                    bits.len()
                ),
            ));
        }
        // The i-th parameter carries `count` times as many basic signals
        // as its type (§4.3): actuals are grouped parameter-major.
        let mut actual_pos = 0usize;
        for (fi, f) in rec.fields.iter().enumerate() {
            let fw = offsets[fi + 1] - offsets[fi];
            for inst in 0..count {
                let pin_base = inst * elem_width + offsets[fi];
                for b in 0..fw {
                    let pin = arm.nets[pin_base + b];
                    let actual = bits[actual_pos];
                    actual_pos += 1;
                    self.connect_bit(ctx, f.mode, pin, actual, span)?;
                }
            }
        }
        Ok(())
    }

    fn connect_bit(
        &mut self,
        ctx: &mut Ctx<'a>,
        mode: Mode,
        pin: NetId,
        actual: RBit,
        span: Span,
    ) -> R<()> {
        match (mode, actual) {
            (_, RBit::Star) => {
                self.touch(pin, F_STARRED);
                Ok(())
            }
            (Mode::In, RBit::Net { id, .. }) => self.assign_bit(ctx, pin, id, None, span),
            (Mode::Out, RBit::Net { id, lvalue }) => {
                if !lvalue {
                    return Err(Diagnostic::error(
                        span,
                        "the actual parameter for an OUT formal must be a signal expression (§4.3)",
                    ));
                }
                self.touch(pin, F_READ);
                self.assign_bit(ctx, id, pin, None, span)
            }
            (Mode::InOut, RBit::Net { id, lvalue }) => {
                if !lvalue {
                    return Err(Diagnostic::error(
                        span,
                        "the actual parameter for an INOUT formal must be a signal (§4.3)",
                    ));
                }
                if ctx.guard.is_some() {
                    return Err(Diagnostic::error(
                        span,
                        "a connection to an INOUT parameter must not occur within an \
                         if statement (§4.3)",
                    ));
                }
                self.alias_bit(ctx, pin, id, span)
            }
        }
    }

    // -- expressions --------------------------------------------------------------

    fn flatten_expr(
        &mut self,
        ctx: &mut Ctx<'a>,
        e: &'a ast::Expr,
        expected: Option<usize>,
    ) -> R<Vec<RBit>> {
        let mut segs = Vec::new();
        self.collect_segments(ctx, e, &mut segs)?;
        let fixed: usize = segs
            .iter()
            .map(|s| match s {
                Seg::Bits(b) => b.len(),
                Seg::BareStar(_) => 0,
            })
            .sum();
        let bare_count = segs
            .iter()
            .filter(|s| matches!(s, Seg::BareStar(_)))
            .count();
        let mut per_star = 0usize;
        if bare_count > 0 {
            let Some(total) = expected else {
                return Err(Diagnostic::error(
                    e.span(),
                    "cannot determine how many signals '*' stands for here",
                ));
            };
            if total < fixed || !(total - fixed).is_multiple_of(bare_count) {
                return Err(Diagnostic::error(
                    e.span(),
                    format!(
                        "'*' cannot fill the gap: {total} signals expected, {fixed} supplied \
                         around {bare_count} '*'"
                    ),
                ));
            }
            per_star = (total - fixed) / bare_count;
        }
        let mut out = Vec::with_capacity(expected.unwrap_or(fixed));
        for s in segs {
            match s {
                Seg::Bits(b) => out.extend(b),
                Seg::BareStar(_) => out.extend(std::iter::repeat_n(RBit::Star, per_star)),
            }
        }
        Ok(out)
    }

    fn collect_segments(
        &mut self,
        ctx: &mut Ctx<'a>,
        e: &'a ast::Expr,
        segs: &mut Vec<Seg>,
    ) -> R<()> {
        match e {
            ast::Expr::Tuple(items, _) => {
                for i in items {
                    self.collect_segments(ctx, i, segs)?;
                }
                Ok(())
            }
            ast::Expr::Star { count, span } => match count {
                None => {
                    segs.push(Seg::BareStar(*span));
                    Ok(())
                }
                Some(c) => {
                    let n = eval_const_expr(c, &*ctx.env)?;
                    if n < 0 {
                        return Err(Diagnostic::error(*span, "'* : n' needs n >= 0"));
                    }
                    segs.push(Seg::Bits(vec![RBit::Star; n as usize]));
                    Ok(())
                }
            },
            ast::Expr::Const(sc) => {
                let v = eval_sig_const(sc, &*ctx.env)?;
                let bits = v
                    .flatten()
                    .into_iter()
                    .map(|val| RBit::Net {
                        id: self.const_net(ctx, val, sc.span()),
                        lvalue: false,
                    })
                    .collect();
                segs.push(Seg::Bits(bits));
                Ok(())
            }
            ast::Expr::Bin(a, b, span) => {
                let av = eval_const_expr(a, &*ctx.env)?;
                let bv = eval_const_expr(b, &*ctx.env)?;
                let sv = bin(av, bv, *span)?;
                let bits = sv
                    .flatten()
                    .into_iter()
                    .map(|val| RBit::Net {
                        id: self.const_net(ctx, val, *span),
                        lvalue: false,
                    })
                    .collect();
                segs.push(Seg::Bits(bits));
                Ok(())
            }
            ast::Expr::Not(inner, span) => {
                let bits = self.flatten_expr(ctx, inner, None)?;
                let out = bits
                    .into_iter()
                    .map(|b| match b {
                        RBit::Net { id, .. } => Ok(RBit::Net {
                            id: self.mk_unary(ctx, NodeOp::Not, id, *span),
                            lvalue: false,
                        }),
                        RBit::Star => Err(Diagnostic::error(*span, "'*' cannot be negated")),
                    })
                    .collect::<R<Vec<_>>>()?;
                segs.push(Seg::Bits(out));
                Ok(())
            }
            ast::Expr::Sig(r) => {
                let bits = self.resolve_rvalue(ctx, r)?;
                segs.push(Seg::Bits(bits));
                Ok(())
            }
            ast::Expr::Call {
                name,
                type_args,
                args,
                span,
            } => {
                let bits = self.eval_call(ctx, name, type_args, args, *span)?;
                segs.push(Seg::Bits(bits));
                Ok(())
            }
        }
    }

    fn operand_nets(&mut self, ctx: &mut Ctx<'a>, e: &'a ast::Expr) -> R<Vec<NetId>> {
        let bits = self.flatten_expr(ctx, e, None)?;
        bits.into_iter()
            .map(|b| match b {
                RBit::Net { id, .. } => Ok(id),
                RBit::Star => Err(Diagnostic::error(
                    e.span(),
                    "'*' cannot be used as an operand",
                )),
            })
            .collect()
    }

    fn eval_call(
        &mut self,
        ctx: &mut Ctx<'a>,
        name: &'a ast::Ident,
        type_args: &'a [ast::ConstExpr],
        args: &'a [ast::Expr],
        span: Span,
    ) -> R<Vec<RBit>> {
        let gate = |op: NodeOp| Some(op);
        let op = match name.name.as_str() {
            "AND" => gate(NodeOp::And),
            "OR" => gate(NodeOp::Or),
            "NAND" => gate(NodeOp::Nand),
            "NOR" => gate(NodeOp::Nor),
            "XOR" => gate(NodeOp::Xor),
            _ => None,
        };
        if let Some(op) = op {
            if args.is_empty() {
                return Err(Diagnostic::error(span, "a gate needs at least one operand"));
            }
            let operands: Vec<Vec<NetId>> = args
                .iter()
                .map(|a| self.operand_nets(ctx, a))
                .collect::<R<_>>()?;
            let m = operands[0].len();
            for (i, o) in operands.iter().enumerate() {
                if o.len() != m {
                    return Err(Diagnostic::error(
                        args[i].span(),
                        format!(
                            "all operands of {} must have the same number of basic \
                             signals ({} vs {m})",
                            name.name,
                            o.len()
                        ),
                    ));
                }
            }
            let mut out = Vec::with_capacity(m);
            for j in 0..m {
                let inputs: Vec<NetId> = operands.iter().map(|o| o[j]).collect();
                for &i in &inputs {
                    self.touch(i, F_READ);
                }
                let o = self
                    .nl
                    .add_net(BasicKind::Boolean, format!("<{}>", name.name), span);
                self.nl.add_node(op.clone(), inputs, o, ctx.group, span);
                out.push(RBit::Net {
                    id: o,
                    lvalue: false,
                });
            }
            return Ok(out);
        }
        match name.name.as_str() {
            "NOT" => {
                if args.len() != 1 {
                    return Err(Diagnostic::error(span, "NOT takes exactly one operand"));
                }
                let nets = self.operand_nets(ctx, &args[0])?;
                Ok(nets
                    .into_iter()
                    .map(|n| {
                        self.touch(n, F_READ);
                        RBit::Net {
                            id: self.mk_unary(ctx, NodeOp::Not, n, span),
                            lvalue: false,
                        }
                    })
                    .collect())
            }
            "EQUAL" => {
                if args.len() != 2 {
                    return Err(Diagnostic::error(span, "EQUAL takes exactly two operands"));
                }
                let a = self.operand_nets(ctx, &args[0])?;
                let b = self.operand_nets(ctx, &args[1])?;
                if a.len() != b.len() {
                    return Err(Diagnostic::error(
                        span,
                        format!(
                            "EQUAL operands must have the same number of basic signals \
                             ({} vs {})",
                            a.len(),
                            b.len()
                        ),
                    ));
                }
                let width = a.len();
                let mut inputs = a;
                inputs.extend(b);
                for &i in &inputs {
                    self.touch(i, F_READ);
                }
                let o = self.nl.add_net(BasicKind::Boolean, "<EQUAL>", span);
                self.nl
                    .add_node(NodeOp::Equal { width }, inputs, o, ctx.group, span);
                Ok(vec![RBit::Net {
                    id: o,
                    lvalue: false,
                }])
            }
            "RANDOM" => {
                if !args.is_empty() {
                    return Err(Diagnostic::error(span, "RANDOM takes no operands"));
                }
                let o = self.nl.add_net(BasicKind::Boolean, "<RANDOM>", span);
                self.nl
                    .add_node(NodeOp::Random, Vec::new(), o, ctx.group, span);
                Ok(vec![RBit::Net {
                    id: o,
                    lvalue: false,
                }])
            }
            other => self.eval_user_call(ctx, name, other, type_args, args, span),
        }
    }

    fn eval_user_call(
        &mut self,
        ctx: &mut Ctx<'a>,
        name: &'a ast::Ident,
        type_name: &str,
        type_args: &'a [ast::ConstExpr],
        args: &'a [ast::Expr],
        span: Span,
    ) -> R<Vec<RBit>> {
        let closure = ctx.env.lookup_type(type_name).ok_or_else(|| {
            Diagnostic::error(
                name.span,
                format!("unknown function component type '{type_name}'"),
            )
        })?;
        if self.call_depth >= self.opts.max_call_depth {
            return Err(Diagnostic::error(
                span,
                "function component recursion too deep (missing WHEN guard?)",
            )
            .with_code(codes::LIMIT_CALL_DEPTH));
        }
        if closure.params.len() != type_args.len() {
            return Err(Diagnostic::error(
                name.span,
                format!(
                    "function component '{type_name}' takes {} numeric parameter(s) but \
                     {} given",
                    closure.params.len(),
                    type_args.len()
                ),
            ));
        }
        let vals = type_args
            .iter()
            .map(|a| eval_const_expr(a, &*ctx.env))
            .collect::<Result<Vec<_>, _>>()?;
        let tenv = Env::child(&closure.env);
        for (p, v) in closure.params.iter().zip(vals) {
            tenv.consts
                .borrow_mut()
                .insert(p.name.clone(), ConstVal::Num(v));
        }
        let ast::Type::Component(comp) = closure.ty else {
            return Err(Diagnostic::error(
                name.span,
                format!("'{type_name}' is not a function component type"),
            ));
        };
        let (Some(result_ty), Some(body)) = (&comp.result, &comp.body) else {
            return Err(Diagnostic::error(
                name.span,
                format!("'{type_name}' is not a function component type (it has no RESULT type)"),
            ));
        };
        // Bind formals.
        let benv = Env::child(&tenv);
        let call_path = format!("{}.<call {type_name}>", ctx.path);
        let mut roles = HashMap::new();
        // Flatten all actual arguments together: parenthesization is not
        // significant (§4.7).
        let mut field_shapes = Vec::new();
        for g in &comp.params {
            let (fs, _fb) = self.resolve_type(&g.ty, &tenv, 0)?;
            for n in &g.names {
                field_shapes.push((n.name.clone(), g.mode, fs.clone()));
            }
        }
        let total: usize = field_shapes.iter().map(|(_, _, s)| s.bit_len()).sum();
        let mut all_bits = Vec::new();
        for a in args {
            let mut segs = Vec::new();
            self.collect_segments(ctx, a, &mut segs)?;
            for s in segs {
                match s {
                    Seg::Bits(b) => all_bits.extend(b),
                    Seg::BareStar(sp) => {
                        return Err(Diagnostic::error(
                            sp,
                            "'*' is not allowed in a function component call",
                        ))
                    }
                }
            }
        }
        if all_bits.len() != total {
            return Err(Diagnostic::error(
                span,
                format!(
                    "call of '{type_name}' needs {total} basic signals but {} were supplied",
                    all_bits.len()
                ),
            ));
        }
        let mut pos = 0usize;
        for (fname, mode, fshape) in &field_shapes {
            let w = fshape.bit_len();
            let actual = &all_bits[pos..pos + w];
            pos += w;
            let pin_nets: Vec<NetId> = match mode {
                Mode::In => {
                    // IN formals bind directly to the actual nets.
                    actual
                        .iter()
                        .map(|b| match b {
                            RBit::Net { id, .. } => {
                                self.touch(*id, F_READ);
                                Ok(*id)
                            }
                            RBit::Star => Err(Diagnostic::error(
                                span,
                                "'*' is not allowed in a function component call",
                            )),
                        })
                        .collect::<R<_>>()?
                }
                Mode::Out | Mode::InOut => {
                    let fresh = self.make_nets(fshape, &format!("{call_path}.{fname}"), span);
                    for (f, a) in fresh.iter().zip(actual) {
                        match a {
                            RBit::Net { id, lvalue: true } => {
                                if *mode == Mode::Out {
                                    self.touch(*f, F_READ);
                                    self.assign_bit(ctx, *id, *f, None, span)?;
                                } else {
                                    self.alias_bit(ctx, *f, *id, span)?;
                                }
                            }
                            _ => {
                                return Err(Diagnostic::error(
                                    span,
                                    "OUT/INOUT actuals of a function call must be signals",
                                ))
                            }
                        }
                    }
                    fresh
                }
            };
            Self::mark_roles(&mut roles, fshape, RoleCtx::Formal(*mode), &pin_nets);
            benv.signals.borrow_mut().insert(
                fname.clone(),
                Rc::new(Slot {
                    path: format!("{call_path}.{fname}"),
                    shape: fshape.clone(),
                    nets: pin_nets,
                }),
            );
        }
        // Result nets behave like formal OUT parameters (conditional
        // RESULT makes the function "of type multiplex", §3.2).
        let (result_shape, _) = self.resolve_type(result_ty, &tenv, 0)?;
        let result_nets = self.make_nets(&result_shape, &format!("{call_path}.RESULT"), span);
        Self::mark_roles(
            &mut roles,
            &result_shape,
            RoleCtx::Formal(Mode::Out),
            &result_nets,
        );

        let mut fctx = Ctx {
            env: benv,
            roles,
            path: call_path,
            guard: None,
            group: ctx.group,
            result: Some(ResultSlot {
                nets: result_nets.clone(),
            }),
            pendings: Vec::new(),
            layout: Vec::new(),
        };
        self.call_depth += 1;
        let r = self.elab_body(&mut fctx, comp, body);
        self.call_depth -= 1;
        r?;
        Ok(result_nets
            .into_iter()
            .map(|id| RBit::Net { id, lvalue: false })
            .collect())
    }

    // -- signal resolution -----------------------------------------------------

    fn single_arm(&mut self, res: SigRes, span: Span) -> R<ResArm> {
        let mut arms = res.arms;
        if arms.len() != 1 {
            return Err(Diagnostic::error(
                span,
                "a NUM-indexed signal cannot be used here",
            ));
        }
        Ok(arms.remove(0))
    }

    fn resolve_rvalue(&mut self, ctx: &mut Ctx<'a>, r: &'a ast::SignalRef) -> R<Vec<RBit>> {
        let res = self.resolve_signal(ctx, r)?;
        if res.arms.len() == 1 {
            let arm = &res.arms[0];
            for &n in &arm.nets {
                self.touch(n, F_READ);
            }
            let lv = arm.lvalue;
            return Ok(arm
                .nets
                .iter()
                .map(|&id| RBit::Net { id, lvalue: lv })
                .collect());
        }
        // Dynamic read: build a mux over the guarded alternatives.
        let width = res.arms.first().map(|a| a.nets.len()).unwrap_or(0);
        let mut out = Vec::with_capacity(width);
        for b in 0..width {
            let o = self.nl.add_net(BasicKind::Multiplex, "<num-mux>", r.span);
            for arm in &res.arms {
                let Some(g) = arm.guard else {
                    return Err(Diagnostic::internal(
                        r.span,
                        "dynamically indexed signal alternative has no guard",
                    ));
                };
                self.touch(arm.nets[b], F_READ);
                self.nl
                    .add_node(NodeOp::If, vec![g, arm.nets[b]], o, ctx.group, r.span);
            }
            out.push(RBit::Net {
                id: o,
                lvalue: false,
            });
        }
        Ok(out)
    }

    fn resolve_signal(&mut self, ctx: &mut Ctx<'a>, r: &'a ast::SignalRef) -> R<SigRes> {
        // Predefined signals.
        if r.base.name == "CLK" || r.base.name == "RSET" {
            if !r.sels.is_empty() {
                return Err(Diagnostic::error(r.span, "CLK/RSET have no substructure"));
            }
            let is_clk = r.base.name == "CLK";
            let existing = if is_clk { self.clk } else { self.rset };
            let net = match existing {
                Some(n) => n,
                None => {
                    let id = self
                        .nl
                        .add_net(BasicKind::Boolean, &r.base.name, r.base.span);
                    self.names.insert(r.base.name.clone(), id);
                    if is_clk {
                        self.clk = Some(id);
                    } else {
                        self.rset = Some(id);
                    }
                    id
                }
            };
            return Ok(SigRes {
                arms: vec![ResArm {
                    guard: None,
                    shape: Shape::boolean(),
                    nets: vec![net],
                    path: Some(r.base.name.clone()),
                    lvalue: true,
                }],
            });
        }
        if let Some(slot) = ctx.env.lookup_signal(&r.base.name) {
            let mut arms = vec![ResArm {
                guard: None,
                shape: slot.shape.clone(),
                nets: slot.nets.clone(),
                path: Some(slot.path.clone()),
                lvalue: true,
            }];
            for sel in &r.sels {
                arms = self.apply_selector(ctx, arms, sel, r.span)?;
            }
            return Ok(SigRes { arms });
        }
        // Signal constants are usable in expression positions.
        if let Some(cv) = ctx.env.lookup_const(&r.base.name) {
            let sv = match cv {
                ConstVal::Sig(sv) => sv,
                ConstVal::Num(0) => SigVal::Val(Value::Zero),
                ConstVal::Num(1) => SigVal::Val(Value::One),
                ConstVal::Num(_) => {
                    return Err(Diagnostic::error(
                        r.base.span,
                        format!(
                            "numeric constant '{}' is not a signal (only 0 and 1 are)",
                            r.base.name
                        ),
                    ))
                }
            };
            let mut cur = sv;
            for sel in &r.sels {
                match sel {
                    ast::Selector::Index(e) => {
                        let i = eval_const_expr(e, &*ctx.env)?;
                        cur = cur.index(i, e.span())?.clone();
                    }
                    _ => {
                        return Err(Diagnostic::error(
                            r.span,
                            "only [index] selection is possible on a signal constant",
                        ))
                    }
                }
            }
            let nets: Vec<NetId> = cur
                .flatten()
                .into_iter()
                .map(|v| self.const_net(ctx, v, r.span))
                .collect();
            let shape = Shape::Array {
                lo: 1,
                hi: nets.len() as i64,
                elem: Arc::new(Shape::boolean()),
            };
            return Ok(SigRes {
                arms: vec![ResArm {
                    guard: None,
                    shape,
                    nets,
                    path: None,
                    lvalue: false,
                }],
            });
        }
        Err(Diagnostic::error(
            r.base.span,
            format!("unknown signal '{}'", r.base.name),
        ))
    }

    fn apply_selector(
        &mut self,
        ctx: &mut Ctx<'a>,
        arms: Vec<ResArm>,
        sel: &'a ast::Selector,
        span: Span,
    ) -> R<Vec<ResArm>> {
        let mut out = Vec::new();
        for arm in arms {
            match sel {
                ast::Selector::Index(e) => {
                    let i = eval_const_expr(e, &*ctx.env)?;
                    out.push(self.index_arm(ctx, arm, i, e.span())?);
                }
                ast::Selector::Range(lo, hi) => {
                    let lo_v = eval_const_expr(lo, &*ctx.env)?;
                    let hi_v = eval_const_expr(hi, &*ctx.env)?;
                    let Shape::Array {
                        lo: alo,
                        hi: ahi,
                        elem,
                    } = &arm.shape
                    else {
                        return Err(Diagnostic::error(span, "range selection needs an array"));
                    };
                    if lo_v < *alo || hi_v > *ahi {
                        return Err(Diagnostic::error(
                            span,
                            format!("range [{lo_v}..{hi_v}] outside array bounds [{alo}..{ahi}]"),
                        ));
                    }
                    let w = elem.bit_len();
                    let start = ((lo_v - alo) as usize) * w;
                    let len = Shape::array_len(lo_v, hi_v) * w;
                    out.push(ResArm {
                        guard: arm.guard,
                        shape: Shape::Array {
                            lo: lo_v,
                            hi: hi_v,
                            elem: Arc::clone(elem),
                        },
                        nets: arm.nets[start..start + len].to_vec(),
                        path: None,
                        lvalue: arm.lvalue,
                    });
                }
                ast::Selector::Field(f) => {
                    out.push(self.field_arm(arm, &f.name, f.span)?);
                }
                ast::Selector::FieldRange(a, b) => {
                    let Shape::Record(rec) = &arm.shape else {
                        return Err(Diagnostic::error(
                            span,
                            "field selection needs a component (record) signal",
                        ));
                    };
                    let (ia, off_a, _) = rec.field(&a.name).ok_or_else(|| {
                        Diagnostic::error(a.span, format!("no field '{}'", a.name))
                    })?;
                    let (ib, off_b, fb) = rec.field(&b.name).ok_or_else(|| {
                        Diagnostic::error(b.span, format!("no field '{}'", b.name))
                    })?;
                    if ib < ia {
                        return Err(Diagnostic::error(
                            span,
                            format!("field range '{}..{}' is reversed", a.name, b.name),
                        ));
                    }
                    let end = off_b + fb.shape.bit_len();
                    let fields = rec.fields[ia..=ib].to_vec();
                    out.push(ResArm {
                        guard: arm.guard,
                        shape: Shape::Record(Arc::new(RecordShape {
                            type_name: None,
                            fields,
                            has_body: false,
                            builtin: None,
                        })),
                        nets: arm.nets[off_a..end].to_vec(),
                        path: None,
                        lvalue: arm.lvalue,
                    });
                }
                ast::Selector::NumIndex(addr, nspan) => {
                    let Shape::Array { lo, hi, elem } = arm.shape.clone() else {
                        return Err(Diagnostic::error(
                            *nspan,
                            "NUM indexing needs an array signal",
                        ));
                    };
                    let n = Shape::array_len(lo, hi);
                    if n > 65536 {
                        return Err(Diagnostic::error(
                            *nspan,
                            "NUM indexing over more than 65536 elements is not supported",
                        ));
                    }
                    let abits = self.resolve_rvalue(ctx, addr)?;
                    let anets: Vec<NetId> = abits
                        .iter()
                        .map(|b| match b {
                            RBit::Net { id, .. } => Ok(*id),
                            RBit::Star => Err(Diagnostic::error(*nspan, "'*' cannot address NUM")),
                        })
                        .collect::<R<_>>()?;
                    let w = anets.len();
                    if w > 32 {
                        return Err(Diagnostic::error(
                            *nspan,
                            "NUM address wider than 32 bits is not supported",
                        ));
                    }
                    let ew = elem.bit_len();
                    for i in 0..n {
                        let idx_val = lo + i as i64;
                        if idx_val < 0 || (w < 63 && idx_val >= (1i64 << w)) {
                            // Address can never take this value; the word
                            // is unreachable through NUM.
                            continue;
                        }
                        // guard_i = EQUAL(addr, BIN(idx, w))
                        let cbits: Vec<NetId> = (0..w)
                            .map(|b| {
                                let v = Value::from_bool((idx_val >> b) & 1 == 1);
                                self.const_net(ctx, v, *nspan)
                            })
                            .collect();
                        let mut inputs = anets.clone();
                        inputs.extend(cbits);
                        let g = self.nl.add_net(BasicKind::Boolean, "<num-eq>", *nspan);
                        self.nl
                            .add_node(NodeOp::Equal { width: w }, inputs, g, ctx.group, *nspan);
                        let g = match arm.guard {
                            None => g,
                            Some(outer) => {
                                let o = self.nl.add_net(BasicKind::Boolean, "<num-guard>", *nspan);
                                self.nl
                                    .add_node(NodeOp::And, vec![outer, g], o, ctx.group, *nspan);
                                o
                            }
                        };
                        out.push(ResArm {
                            guard: Some(g),
                            shape: (*elem).clone(),
                            nets: arm.nets[i * ew..(i + 1) * ew].to_vec(),
                            path: None,
                            lvalue: arm.lvalue,
                        });
                    }
                }
            }
        }
        Ok(out)
    }

    fn index_arm(&mut self, ctx: &mut Ctx<'a>, arm: ResArm, i: i64, span: Span) -> R<ResArm> {
        match &arm.shape {
            Shape::Array { lo, hi, elem } => {
                if i < *lo || i > *hi {
                    return Err(Diagnostic::error(
                        span,
                        format!(
                            "index {i} outside array bounds [{lo}..{hi}] of '{}'",
                            arm.path.as_deref().unwrap_or("<signal>")
                        ),
                    ));
                }
                let w = elem.bit_len();
                let start = ((i - lo) as usize) * w;
                let path = arm.path.as_ref().map(|p| format!("{p}[{i}]"));
                // An element of a virtual array: resolve its replacement.
                if matches!(**elem, Shape::Virtual) {
                    let Some(p) = &path else {
                        return Err(Diagnostic::error(
                            span,
                            "virtual signal needs a direct path",
                        ));
                    };
                    return self.virtual_arm(ctx, p, arm.guard, arm.lvalue, span);
                }
                Ok(ResArm {
                    guard: arm.guard,
                    shape: (**elem).clone(),
                    nets: arm.nets[start..start + w].to_vec(),
                    path,
                    lvalue: arm.lvalue,
                })
            }
            Shape::Virtual => {
                let Some(p) = &arm.path else {
                    return Err(Diagnostic::error(
                        span,
                        "virtual signal needs a direct path",
                    ));
                };
                let rep = self.virtual_arm(ctx, p, arm.guard, arm.lvalue, span)?;
                self.index_arm(ctx, rep, i, span)
            }
            _ => Err(Diagnostic::error(
                span,
                format!(
                    "cannot index non-array signal '{}'",
                    arm.path.as_deref().unwrap_or("<signal>")
                ),
            )),
        }
    }

    fn virtual_arm(
        &mut self,
        _ctx: &mut Ctx<'a>,
        path: &str,
        guard: Option<NetId>,
        lvalue: bool,
        span: Span,
    ) -> R<ResArm> {
        let slot = self.replacements.get(path).ok_or_else(|| {
            Diagnostic::error(
                span,
                format!("virtual signal '{path}' has not been replaced (§6.4)"),
            )
        })?;
        Ok(ResArm {
            guard,
            shape: slot.shape.clone(),
            nets: slot.nets.clone(),
            path: Some(slot.path.clone()),
            lvalue,
        })
    }

    fn field_arm(&mut self, arm: ResArm, name: &str, span: Span) -> R<ResArm> {
        match &arm.shape {
            Shape::Record(rec) => {
                let (_, off, f) = rec.field(name).ok_or_else(|| {
                    Diagnostic::error(
                        span,
                        format!(
                            "component '{}' has no parameter '{name}'",
                            arm.path.as_deref().unwrap_or("<signal>")
                        ),
                    )
                })?;
                let w = f.shape.bit_len();
                Ok(ResArm {
                    guard: arm.guard,
                    shape: f.shape.clone(),
                    nets: arm.nets[off..off + w].to_vec(),
                    path: arm.path.as_ref().map(|p| format!("{p}.{name}")),
                    lvalue: arm.lvalue,
                })
            }
            // Broadcast: r.in means r[lo..hi].in (§4.1).
            Shape::Array { lo, hi, elem } => {
                let n = Shape::array_len(*lo, *hi);
                let w = elem.bit_len();
                let mut nets = Vec::new();
                let mut fshape = None;
                for i in 0..n {
                    let sub = ResArm {
                        guard: arm.guard,
                        shape: (**elem).clone(),
                        nets: arm.nets[i * w..(i + 1) * w].to_vec(),
                        path: None,
                        lvalue: arm.lvalue,
                    };
                    let sel = self.field_arm(sub, name, span)?;
                    fshape = Some(sel.shape.clone());
                    nets.extend(sel.nets);
                }
                let eshape = fshape.unwrap_or(Shape::Virtual);
                Ok(ResArm {
                    guard: arm.guard,
                    shape: Shape::Array {
                        lo: *lo,
                        hi: *hi,
                        elem: Arc::new(eshape),
                    },
                    nets,
                    path: None,
                    lvalue: arm.lvalue,
                })
            }
            _ => Err(Diagnostic::error(
                span,
                format!(
                    "cannot select field '{name}' of non-component signal '{}'",
                    arm.path.as_deref().unwrap_or("<signal>")
                ),
            )),
        }
    }

    // -- layout interpretation ---------------------------------------------------

    fn interp_layout(
        &mut self,
        ctx: &mut Ctx<'a>,
        stmt: &'a ast::LayoutStmt,
        out: &mut Vec<LayoutItem>,
    ) -> R<()> {
        match stmt {
            ast::LayoutStmt::Basic {
                orientation,
                signal,
                replace,
                span,
            } => {
                let orient = match orientation {
                    Some(o) => Orientation::from_name(&o.name).ok_or_else(|| {
                        Diagnostic::error(
                            o.span,
                            format!("'{}' is not an orientation change", o.name),
                        )
                    })?,
                    None => Orientation::Identity,
                };
                if let Some(ty) = replace {
                    // Replacement of a virtual signal (§6.4).
                    let path = self.resolve_virtual_target(ctx, signal)?;
                    if !self.replaced_once.insert(path.clone()) {
                        return Err(Diagnostic::error(
                            *span,
                            format!("virtual signal '{path}' may be replaced at most once (§6.4)"),
                        ));
                    }
                    let env = Rc::clone(&ctx.env);
                    let parent = ctx.path.clone();
                    let (shape, bindt) = self.resolve_type(ty, &env, 0)?;
                    let nets = self.make_nets(&shape, &path, *span);
                    Self::mark_roles(&mut ctx.roles, &shape, RoleCtx::Local, &nets);
                    self.register_pendings(ctx, &shape, &bindt, &nets, &path, &parent, *span)?;
                    let key = self.key_of(ctx, &path);
                    self.replacements
                        .insert(path.clone(), Rc::new(Slot { path, shape, nets }));
                    out.push(LayoutItem::Place {
                        key,
                        orientation: orient,
                    });
                } else {
                    let res = self.resolve_signal(ctx, signal)?;
                    let arm = self.single_arm(res, signal.span)?;
                    let key = match &arm.path {
                        Some(p) => self.key_of(ctx, p),
                        None => signal.base.name.clone(),
                    };
                    out.push(LayoutItem::Place {
                        key,
                        orientation: orient,
                    });
                }
                Ok(())
            }
            ast::LayoutStmt::Order {
                direction, body, ..
            } => {
                let dir = Direction::from_name(&direction.name).ok_or_else(|| {
                    Diagnostic::error(
                        direction.span,
                        format!("'{}' is not a direction of separation", direction.name),
                    )
                })?;
                let mut items = Vec::new();
                for s in body {
                    self.interp_layout(ctx, s, &mut items)?;
                }
                out.push(LayoutItem::Order {
                    direction: dir,
                    items,
                });
                Ok(())
            }
            ast::LayoutStmt::For {
                var,
                from,
                to,
                downto,
                body,
                ..
            } => {
                let a = eval_const_expr(from, &*ctx.env)?;
                let b = eval_const_expr(to, &*ctx.env)?;
                let indices: Vec<i64> = if *downto {
                    (b..=a).rev().collect()
                } else {
                    (a..=b).collect()
                };
                let outer = Rc::clone(&ctx.env);
                for i in indices {
                    let ienv = Env::child(&outer);
                    ienv.consts
                        .borrow_mut()
                        .insert(var.name.clone(), ConstVal::Num(i));
                    ctx.env = ienv;
                    let r: R<()> = body
                        .iter()
                        .try_for_each(|s| self.interp_layout(ctx, s, out));
                    ctx.env = Rc::clone(&outer);
                    r?;
                }
                Ok(())
            }
            ast::LayoutStmt::Boundary { side, body, .. } => {
                let mut pins = Vec::new();
                for s in body {
                    if let ast::LayoutStmt::Basic { signal, .. } = s {
                        pins.push(signal.base.name.clone());
                    }
                }
                out.push(LayoutItem::Boundary { side: *side, pins });
                Ok(())
            }
            ast::LayoutStmt::WhenGen {
                arms, otherwise, ..
            } => {
                for (cond, stmts) in arms {
                    if eval_const_expr(cond, &*ctx.env)? != 0 {
                        for s in stmts {
                            self.interp_layout(ctx, s, out)?;
                        }
                        return Ok(());
                    }
                }
                if let Some(o) = otherwise {
                    for s in o {
                        self.interp_layout(ctx, s, out)?;
                    }
                }
                Ok(())
            }
            ast::LayoutStmt::With { signal, body, .. } => {
                let res = self.resolve_signal(ctx, signal)?;
                let arm = self.single_arm(res, signal.span)?;
                let Shape::Record(rec) = &arm.shape else {
                    return Err(Diagnostic::error(
                        signal.span,
                        "WITH requires a signal of component type",
                    ));
                };
                let Some(base_path) = &arm.path else {
                    return Err(Diagnostic::error(
                        signal.span,
                        "WITH requires a direct signal",
                    ));
                };
                let wenv = Env::child(&ctx.env);
                let offsets = rec.field_offsets();
                for (i, f) in rec.fields.iter().enumerate() {
                    wenv.signals.borrow_mut().insert(
                        f.name.clone(),
                        Rc::new(Slot {
                            path: format!("{base_path}.{}", f.name),
                            shape: f.shape.clone(),
                            nets: arm.nets[offsets[i]..offsets[i + 1]].to_vec(),
                        }),
                    );
                }
                let outer = std::mem::replace(&mut ctx.env, wenv);
                let r: R<()> = body
                    .iter()
                    .try_for_each(|s| self.interp_layout(ctx, s, out));
                ctx.env = outer;
                r
            }
        }
    }

    fn key_of(&self, ctx: &Ctx<'a>, path: &str) -> String {
        path.strip_prefix(&format!("{}.", ctx.path))
            .unwrap_or(path)
            .to_string()
    }

    /// Resolves a replacement target like `m[i,j]` to its full path; the
    /// selected element must be `virtual`.
    fn resolve_virtual_target(&mut self, ctx: &mut Ctx<'a>, r: &'a ast::SignalRef) -> R<String> {
        let slot = ctx.env.lookup_signal(&r.base.name).ok_or_else(|| {
            Diagnostic::error(r.base.span, format!("unknown signal '{}'", r.base.name))
        })?;
        let mut shape = slot.shape.clone();
        let mut path = slot.path.clone();
        for sel in &r.sels {
            match sel {
                ast::Selector::Index(e) => {
                    let i = eval_const_expr(e, &*ctx.env)?;
                    let Shape::Array { lo, hi, elem } = &shape else {
                        return Err(Diagnostic::error(
                            e.span(),
                            "replacement target selectors must index arrays",
                        ));
                    };
                    if i < *lo || i > *hi {
                        return Err(Diagnostic::error(
                            e.span(),
                            format!("index {i} outside array bounds [{lo}..{hi}]"),
                        ));
                    }
                    path = format!("{path}[{i}]");
                    shape = (**elem).clone();
                }
                _ => {
                    return Err(Diagnostic::error(
                        r.span,
                        "replacement targets may only use [index] selectors",
                    ))
                }
            }
        }
        if !matches!(shape, Shape::Virtual) {
            return Err(Diagnostic::error(
                r.span,
                format!("'{path}' is not a virtual signal (§6.4)"),
            ));
        }
        Ok(path)
    }

    // -- final checks ------------------------------------------------------------

    fn check_drivers(&mut self) {
        #[derive(Default, Clone)]
        struct Acc {
            uncond: u32,
            cond: u32,
            span: Span,
        }
        let mut by_class: HashMap<u32, Acc> = HashMap::new();
        let recs = std::mem::take(&mut self.drivers);
        for rec in &recs {
            let rep = self.nl.find(NetId(rec.net));
            let acc = by_class.entry(rep.0).or_default();
            if rec.cond {
                acc.cond += 1;
            } else {
                acc.uncond += 1;
            }
            acc.span = rec.span;
        }
        for (net, acc) in &by_class {
            let name = self.nl.nets[*net as usize].name.clone();
            if acc.uncond > 1 {
                self.errs.push(Diagnostic::error(
                    acc.span,
                    format!(
                        "signal '{name}' has {} unconditional assignments; exactly one is \
                         allowed (§4.1) — this could connect power to ground",
                        acc.uncond
                    ),
                ));
            } else if acc.uncond >= 1 && acc.cond >= 1 {
                self.errs.push(Diagnostic::error(
                    acc.span,
                    format!(
                        "signal '{name}' is assigned both conditionally and unconditionally \
                         (§4.1)"
                    ),
                ));
            }
        }
        // Warn about boolean signals that are read but never driven.
        let drivers = self.nl.drivers_by_net();
        let mut port_nets: HashSet<u32> = HashSet::new();
        if let Some(c) = self.clk {
            port_nets.insert(self.nl.find(c).0);
        }
        if let Some(rst) = self.rset {
            port_nets.insert(self.nl.find(rst).0);
        }
        let pins: Vec<u32> = self.top_pins.iter().copied().collect();
        for p in pins {
            let rep = self.nl.find(NetId(p));
            port_nets.insert(rep.0);
        }
        for (i, net) in self.nl.nets.iter().enumerate() {
            let rep = self.nl.find_ref(NetId(i as u32));
            if rep.0 != i as u32 {
                continue;
            }
            if port_nets.contains(&rep.0) {
                continue;
            }
            let read = self
                .touched
                .get(i)
                .map(|f| f & F_READ != 0)
                .unwrap_or(false);
            if read
                && drivers[i].is_empty()
                && net.kind == BasicKind::Boolean
                && self
                    .touched
                    .get(i)
                    .map(|f| f & (F_ASSIGNED | F_ALIASED | F_STARRED) == 0)
                    .unwrap_or(true)
            {
                self.warns.push(Diagnostic::warning(
                    net.span,
                    format!("boolean signal '{}' is read but never assigned", net.name),
                ));
            }
        }
    }
}

fn reg_shape<'a>() -> (Shape, Rc<BindTree<'a>>) {
    let rec = RecordShape {
        type_name: Some("REG".to_string()),
        fields: vec![
            FieldShape {
                name: "in".to_string(),
                mode: Mode::In,
                shape: Shape::boolean(),
            },
            FieldShape {
                name: "out".to_string(),
                mode: Mode::Out,
                shape: Shape::boolean(),
            },
        ],
        has_body: true,
        builtin: Some(BuiltinComponent::Reg),
    };
    (
        Shape::Record(Arc::new(rec)),
        Rc::new(BindTree::Record(
            Binding::Builtin(BuiltinComponent::Reg),
            vec![Rc::new(BindTree::Leaf), Rc::new(BindTree::Leaf)],
        )),
    )
}
