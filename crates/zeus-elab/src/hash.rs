//! Stable structural hashing of elaborated designs.
//!
//! Crash-safe fault campaigns persist completed work to a checkpoint and
//! must refuse to merge results recorded for a *different* campaign. The
//! key is a digest of everything that determines campaign outcomes; its
//! design component is computed here. `std::hash` deliberately makes no
//! cross-process guarantees (and `HashMap`'s default hasher is randomly
//! seeded), so this module implements 64-bit FNV-1a by hand: the digest
//! of a design is identical across runs, platforms and — barring a
//! documented bump of [`DIGEST_VERSION`] — releases.

use crate::design::Design;
use zeus_sema::Value;
use zeus_syntax::ast::Mode;

/// Version of the digest layout. Bump when the hashed structure changes
/// so stale checkpoints are rejected instead of misread.
/// v2 folded in [`Design::optimized`], so an optimizer-rewritten design
/// can never collide with its unoptimized origin.
pub const DIGEST_VERSION: u64 = 2;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental 64-bit FNV-1a hasher with length-prefixed writes, so
/// `("ab", "c")` and `("a", "bc")` digest differently.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// A fresh hasher seeded with the FNV offset basis and the digest
    /// version.
    pub fn new() -> StableHasher {
        let mut h = StableHasher { state: FNV_OFFSET };
        h.write_u64(DIGEST_VERSION);
        h
    }

    /// Hashes raw bytes (no length prefix).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Hashes a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Hashes a `usize` widened to `u64`.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Hashes an `Option<u64>` with a presence tag.
    pub fn write_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.write_u64(0),
            Some(x) => {
                self.write_u64(1);
                self.write_u64(x);
            }
        }
    }

    /// Hashes a string, length-prefixed.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

fn value_tag(v: Value) -> u64 {
    match v {
        Value::Zero => 0,
        Value::One => 1,
        Value::Undef => 2,
        Value::NoInfl => 3,
    }
}

fn mode_tag(m: Mode) -> u64 {
    match m {
        Mode::In => 0,
        Mode::Out => 1,
        Mode::InOut => 2,
    }
}

/// Digest of everything about a design that a fault campaign's results
/// depend on: the semantics graph (nodes, operations, canonical wiring),
/// net kinds and debug names (reports print them), the port interface in
/// declaration order, and the predefined CLK/RSET wiring.
///
/// Layout/instance-tree data is deliberately excluded — it cannot change
/// simulation results.
pub fn design_digest(design: &Design) -> u64 {
    let nl = &design.netlist;
    let mut h = StableHasher::new();
    h.write_str(&design.top_type);

    h.write_usize(nl.net_count());
    for (i, net) in nl.nets.iter().enumerate() {
        h.write_u64(match net.kind {
            zeus_sema::BasicKind::Boolean => 0,
            zeus_sema::BasicKind::Multiplex => 1,
        });
        h.write_str(&net.name);
        // The canonical alias class of every net: fault sites resolve
        // through it.
        h.write_usize(nl.find_ref(crate::NetId(i as u32)).index());
    }

    h.write_usize(nl.node_count());
    for node in &nl.nodes {
        let (tag, param): (u64, u64) = match &node.op {
            crate::NodeOp::And => (0, 0),
            crate::NodeOp::Or => (1, 0),
            crate::NodeOp::Nand => (2, 0),
            crate::NodeOp::Nor => (3, 0),
            crate::NodeOp::Xor => (4, 0),
            crate::NodeOp::Not => (5, 0),
            crate::NodeOp::Equal { width } => (6, *width as u64),
            crate::NodeOp::Buf => (7, 0),
            crate::NodeOp::If => (8, 0),
            crate::NodeOp::Const(v) => (9, value_tag(*v)),
            crate::NodeOp::Random => (10, 0),
            crate::NodeOp::Reg => (11, 0),
        };
        h.write_u64(tag);
        h.write_u64(param);
        h.write_usize(node.inputs.len());
        for &i in &node.inputs {
            h.write_usize(nl.find_ref(i).index());
        }
        h.write_usize(nl.find_ref(node.output).index());
        h.write_opt_u64(node.group.map(u64::from));
    }

    h.write_usize(design.ports.len());
    for p in &design.ports {
        h.write_str(&p.name);
        h.write_u64(mode_tag(p.mode));
        h.write_usize(p.nets.len());
        for &n in &p.nets {
            h.write_usize(nl.find_ref(n).index());
        }
    }

    h.write_opt_u64(design.clk.map(|n| nl.find_ref(n).index() as u64));
    h.write_opt_u64(design.rset.map(|n| nl.find_ref(n).index() as u64));
    h.write_u64(u64::from(design.optimized));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate;
    use zeus_syntax::parse_program;

    fn design(src: &str, top: &str) -> Design {
        elaborate(&parse_program(src).unwrap(), top, &[]).unwrap()
    }

    const HALFADDER: &str = "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS \
         BEGIN s := XOR(a,b); cout := AND(a,b) END;";

    #[test]
    fn digest_is_stable_across_elaborations() {
        let a = design_digest(&design(HALFADDER, "halfadder"));
        let b = design_digest(&design(HALFADDER, "halfadder"));
        assert_eq!(a, b);
    }

    #[test]
    fn digest_distinguishes_designs() {
        let ha = design_digest(&design(HALFADDER, "halfadder"));
        let or = design_digest(&design(
            "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS \
             BEGIN s := XOR(a,b); cout := OR(a,b) END;",
            "halfadder",
        ));
        assert_ne!(ha, or, "an AND/OR swap must change the digest");
    }

    #[test]
    fn hasher_is_order_and_boundary_sensitive() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());

        let mut c = StableHasher::new();
        c.write_u64(1);
        c.write_u64(2);
        let mut d = StableHasher::new();
        d.write_u64(2);
        d.write_u64(1);
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a("a") with the standard offset/prime, on top of the
        // version prefix: recompute manually to pin the algorithm.
        let mut h = StableHasher { state: FNV_OFFSET };
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
