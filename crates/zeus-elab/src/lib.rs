//! # zeus-elab
//!
//! Elaboration of Zeus programs into flat netlists (the paper's
//! *semantics graph*, §8). This crate implements:
//!
//! * resolution of (recursive, integer-parameterized) types into
//!   [`shape::Shape`]s,
//! * lazy, use-driven instantiation of component bodies ("hardware is only
//!   generated if it is used", §4.2),
//! * lowering of connection statements to assignments (§4.3), `==`
//!   aliasing by union-find, `IF` switches, replication and conditional
//!   generation,
//! * the static type rules of §4.7 with "exception 1" handling,
//! * the layout-language interpretation producing a resolved instance tree
//!   (consumed by `zeus-layout`), including `virtual` replacement (§6.4).
//!
//! ## Example
//!
//! ```
//! use zeus_syntax::parse_program;
//! use zeus_elab::elaborate;
//!
//! # fn main() -> Result<(), zeus_syntax::Diagnostics> {
//! let program = parse_program(
//!     "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS
//!      BEGIN s := XOR(a,b); cout := AND(a,b) END;",
//! )?;
//! let design = elaborate(&program, "halfadder", &[])?;
//! assert_eq!(design.ports.len(), 4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod elab;

pub mod design;
pub mod fault;
pub mod hash;
pub mod limits;
pub mod netlist;
pub mod serdes;
pub mod shape;

pub use design::{Design, Direction, InstanceNode, LayoutItem, Orientation, Port};
pub use elab::{elaborate, elaborate_signal, elaborate_signal_with, elaborate_with, ElabOptions};
pub use fault::{Fault, FaultKind};
pub use hash::{design_digest, StableHasher};
pub use limits::{Governor, Limits};
pub use netlist::{to_dot, GroupConstraint, Net, NetId, Netlist, Node, NodeId, NodeOp};
pub use serdes::{design_from_text, design_to_text};
pub use shape::{BuiltinComponent, FieldShape, RecordShape, Shape};
