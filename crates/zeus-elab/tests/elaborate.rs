//! Elaboration tests against paper constructs (§3, §4, §6.4).

use zeus_elab::{elaborate, elaborate_signal, elaborate_with, Design, ElabOptions, NodeOp};
use zeus_syntax::parse_program;

fn elab(src: &str, top: &str, args: &[i64]) -> Design {
    let p = parse_program(src).expect("parse");
    zeus_sema::check_program(&p).expect("check");
    match elaborate(&p, top, args) {
        Ok(d) => d,
        Err(e) => panic!("elaboration failed for top '{top}':\n{e}"),
    }
}

fn elab_err(src: &str, top: &str, args: &[i64]) -> String {
    let p = parse_program(src).expect("parse");
    elaborate(&p, top, args)
        .map(|_| ())
        .expect_err("expected elaboration error")
        .to_string()
}

const HALFADDER: &str = "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS \
     BEGIN s := XOR(a,b); cout := AND(a,b) END;";

#[test]
fn halfadder_ports_and_gates() {
    let d = elab(HALFADDER, "halfadder", &[]);
    assert_eq!(d.ports.len(), 4);
    assert_eq!(d.inputs().count(), 2);
    assert_eq!(d.outputs().count(), 2);
    let xor = d
        .netlist
        .nodes
        .iter()
        .filter(|n| n.op == NodeOp::Xor)
        .count();
    let and = d
        .netlist
        .nodes
        .iter()
        .filter(|n| n.op == NodeOp::And)
        .count();
    assert_eq!(xor, 1);
    assert_eq!(and, 1);
}

const FULLADDER: &str = "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS \
     BEGIN s := XOR(a,b); cout := AND(a,b) END; \
     fulladder = COMPONENT (IN a,b,cin: boolean; OUT cout,s: boolean) IS \
     SIGNAL h1,h2:halfadder; \
     BEGIN h1(a,b,*,h2.a); h2(h1.s,cin,*,s); cout := OR(h1.cout,h2.cout) END;";

#[test]
fn fulladder_instantiates_two_halfadders() {
    let d = elab(FULLADDER, "fulladder", &[]);
    // The instance tree holds fulladder -> {h1, h2}.
    assert_eq!(d.instances.children.len(), 2);
    assert!(d.instances.child("h1").is_some());
    assert!(d.instances.child("h2").is_some());
    // Two XOR and two AND gates from the two half adders, one OR.
    assert_eq!(
        d.netlist
            .nodes
            .iter()
            .filter(|n| n.op == NodeOp::Xor)
            .count(),
        2
    );
    assert_eq!(
        d.netlist
            .nodes
            .iter()
            .filter(|n| n.op == NodeOp::Or)
            .count(),
        1
    );
}

#[test]
fn identical_repeated_connection_assignments_are_deduped() {
    // h1's connection writes h2.a := h1.s and h2's own connection repeats
    // it; §4.3 allows identical repeats.
    let d = elab(FULLADDER, "fulladder", &[]);
    let h2a = d.names["fulladder.h2.a"];
    let bufs = d
        .netlist
        .nodes
        .iter()
        .filter(|n| n.op == NodeOp::Buf && n.output == h2a)
        .count();
    assert_eq!(bufs, 1, "duplicate identical connection must be deduped");
}

#[test]
fn conditional_assign_to_plain_boolean_rejected() {
    let e = elab_err(
        "TYPE t = COMPONENT (IN a,b: boolean; OUT s: boolean) IS \
         SIGNAL h: boolean; \
         BEGIN IF a THEN h := b END; s := h END;",
        "t",
        &[],
    );
    assert!(
        e.contains("type rules (1)") || e.contains("conditional assignment"),
        "{e}"
    );
}

#[test]
fn conditional_assign_to_multiplex_ok() {
    elab(
        "TYPE t = COMPONENT (IN a,b: boolean; OUT s: boolean) IS \
         SIGNAL h: multiplex; \
         BEGIN IF a THEN h := b END; s := h END;",
        "t",
        &[],
    );
}

#[test]
fn conditional_assign_to_formal_out_ok_exception1() {
    elab(
        "TYPE t = COMPONENT (IN a,b: boolean; OUT s: boolean) IS \
         BEGIN IF a THEN s := b END END;",
        "t",
        &[],
    );
}

#[test]
fn double_unconditional_assignment_rejected() {
    let e = elab_err(
        "TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL h: boolean; \
         BEGIN h := a; h := NOT a; s := h END;",
        "t",
        &[],
    );
    assert!(e.contains("unconditional assignments"), "{e}");
}

#[test]
fn mixed_conditional_unconditional_rejected() {
    let e = elab_err(
        "TYPE t = COMPONENT (IN a,b: boolean; OUT s: boolean) IS \
         SIGNAL h: multiplex; \
         BEGIN h := a; IF a THEN h := b END; s := h END;",
        "t",
        &[],
    );
    assert!(e.contains("conditionally and unconditionally"), "{e}");
}

#[test]
fn alias_boolean_boolean_rejected() {
    let e = elab_err(
        "TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL x,y: boolean; \
         BEGIN x := a; x == y; s := y END;",
        "t",
        &[],
    );
    assert!(
        e.contains("type rules (2)") || e.contains("aliasing"),
        "{e}"
    );
}

#[test]
fn alias_multiplex_multiplex_ok() {
    let d = elab(
        "TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL x,y: multiplex; \
         BEGIN x := a; x == y; s := y END;",
        "t",
        &[],
    );
    // x and y canonicalize to one net.
    assert_eq!(
        d.netlist.find_ref(d.names["t.x"]),
        d.netlist.find_ref(d.names["t.y"])
    );
}

#[test]
fn alias_under_if_rejected() {
    let e = elab_err(
        "TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL x,y: multiplex; \
         BEGIN IF a THEN x == y END; x := a; s := y END;",
        "t",
        &[],
    );
    assert!(e.contains("conditional"), "{e}");
}

#[test]
fn assignment_to_formal_in_rejected() {
    let e = elab_err(
        "TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         BEGIN a := s; s := a END;",
        "t",
        &[],
    );
    assert!(e.contains("formal IN parameter"), "{e}");
}

#[test]
fn assignment_to_instance_out_rejected() {
    let e = elab_err(
        "TYPE inner = COMPONENT (IN x: boolean; OUT y: boolean) IS BEGIN y := x END; \
         t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL g: inner; \
         BEGIN g.x := a; g.y := a; s := g.y END;",
        "t",
        &[],
    );
    assert!(e.contains("OUT parameter"), "{e}");
}

#[test]
fn combinational_loop_rejected() {
    let e = elab_err(
        "TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL x,y: boolean; \
         BEGIN x := AND(a, y); y := NOT x; s := y END;",
        "t",
        &[],
    );
    assert!(e.contains("combinational feedback loop"), "{e}");
}

#[test]
fn loop_through_register_ok() {
    let d = elab(
        "TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL r: REG; \
         BEGIN r(NOT r.out, s) END;",
        "t",
        &[],
    );
    assert_eq!(d.netlist.registers().count(), 1);
}

#[test]
fn unclosed_port_rejected() {
    let e = elab_err(
        "TYPE inner = COMPONENT (IN x: boolean; OUT y,z: boolean) IS \
         BEGIN y := x; z := x END; \
         t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL g: inner; \
         BEGIN g.x := a; s := g.y END;",
        "t",
        &[],
    );
    assert!(e.contains("neither used nor assigned"), "{e}");
}

#[test]
fn star_closes_port() {
    elab(
        "TYPE inner = COMPONENT (IN x: boolean; OUT y,z: boolean) IS \
         BEGIN y := x; z := x END; \
         t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL g: inner; \
         BEGIN g(a, s, *) END;",
        "t",
        &[],
    );
}

#[test]
fn unused_component_not_generated() {
    // left/right of the recursive tree stay unelaborated at the base case.
    let d = elab(
        "TYPE inner = COMPONENT (IN x: boolean; OUT y: boolean) IS BEGIN y := x END; \
         t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL used, unused: inner; \
         BEGIN used(a, s) END;",
        "t",
        &[],
    );
    assert!(d.instances.child("used").is_some());
    assert!(d.instances.child("unused").is_none());
}

const TREE: &str = "TYPE q = COMPONENT (IN in: boolean; OUT out1,out2: boolean) IS \
     BEGIN out1 := in; out2 := in END; \
     tree(n) = COMPONENT(IN in:boolean; OUT leaf:ARRAY[1..n] OF boolean) IS \
     SIGNAL left, right: tree(n DIV 2); \
     preleaf: ARRAY[1.. n DIV 2] OF q; \
     root: q; \
     BEGIN \
       WHEN n>2 THEN \
         root.in := in; \
         left.in := root.out1; right.in := root.out2; \
         FOR i := 1 TO n DIV 4 DO \
           preleaf[i].in := left.leaf[2*i-1]; \
           preleaf[i+n DIV 4].in := right.leaf[2*i-1]; \
           * := left.leaf[2*i]; * := right.leaf[2*i] \
         END; \
         FOR i := 1 TO n DIV 2 DO \
           leaf[2*i-1] := preleaf[i].out1; \
           leaf[2*i] := preleaf[i].out2 \
         END \
       OTHERWISE \
         root.in := in; leaf[1] := root.out1; leaf[2] := root.out2 \
       END \
     END;";

#[test]
fn recursive_tree_elaborates() {
    let d = elab(TREE, "tree", &[8]);
    // tree(8) = root + 4 preleaf + left/right tree(4); each tree(4) =
    // root + 2 preleaf + 2 tree(2); tree(2) = root only.
    let total = d.instances.size();
    assert!(total > 10, "expected a deep tree, got {total} instances");
    // The base case must not instantiate its (declared but unused)
    // children.
    fn find<'a>(
        n: &'a zeus_elab::InstanceNode,
        ty: &str,
        out: &mut Vec<&'a zeus_elab::InstanceNode>,
    ) {
        if n.type_name == ty {
            out.push(n);
        }
        for c in &n.children {
            find(c, ty, out);
        }
    }
    let mut trees = Vec::new();
    find(&d.instances, "tree", &mut trees);
    // left/right at n=2 unused: tree nodes are tree(8)=top + 2× tree(4)
    // + 4× tree(2) (the root itself is of type "tree" and is counted).
    assert_eq!(
        trees.len(),
        7,
        "tree(8) expands to 7 tree instances in total"
    );
}

#[test]
fn unbounded_recursion_reports_error() {
    let p = parse_program(
        "TYPE bad(n) = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL sub: bad(n+1); \
         BEGIN sub.a := a; s := sub.s END;",
    )
    .expect("parse");
    let opts = ElabOptions {
        max_instances: 500,
        ..ElabOptions::default()
    };
    let e = elaborate_with(&p, "bad", &[0], &opts)
        .map(|_| ())
        .expect_err("must not terminate silently");
    assert!(e.to_string().contains("does not terminate"), "{e}");
}

#[test]
fn routing_network_structure() {
    let src = "TYPE bit10 = ARRAY[1..10] OF boolean; \
         channel(n) = ARRAY[0..n] OF bit10; \
         router = COMPONENT(IN inport0,inport1:bit10; OUT outport0,outport1:bit10) IS \
         BEGIN outport0 := inport0; outport1 := inport1 END; \
         routingnetwork(n) = COMPONENT(IN input: channel(n-1); OUT output: channel(n-1)) IS \
         SIGNAL top,bottom: routingnetwork(n DIV 2); \
         c: ARRAY[0..n DIV 2-1] OF router; \
         BEGIN \
           WHEN n=2 THEN c[0](input[0],input[1],output[0],output[1]) \
           OTHERWISE \
             FOR i := 0 TO n DIV 2 -1 DO \
               c[i](input[2*i],input[2*i+1],top.input[i],bottom.input[i]); \
               output[i] := top.output[i]; \
               output[i+ n DIV 2] := bottom.output[i] \
             END \
           END \
         END;";
    let d = elab(src, "routingnetwork", &[8]);
    fn count(n: &zeus_elab::InstanceNode, ty: &str) -> usize {
        (n.type_name == ty) as usize + n.children.iter().map(|c| count(c, ty)).sum::<usize>()
    }
    // (n/2)·log2(n) routers for n=8: 4·3 = 12.
    assert_eq!(count(&d.instances, "router"), 12);
}

#[test]
fn ram_with_num_indexing() {
    let src = "CONST words = 4; width = 2; abits = 2; \
         TYPE ram = COMPONENT (IN a: ARRAY[1..abits] OF boolean; \
                               IN din: ARRAY[1..width] OF boolean; \
                               IN we: boolean; \
                               OUT dout: ARRAY[1..width] OF boolean) IS \
         SIGNAL mem: ARRAY[0..words-1] OF ARRAY[1..width] OF REG; \
         BEGIN \
           IF we THEN mem[NUM(a)].in := din END; \
           dout := mem[NUM(a)].out \
         END;";
    let d = elab(src, "ram", &[]);
    assert_eq!(d.netlist.registers().count(), 8);
    // Address comparators: 4 for the write demux + 4 for the read mux.
    let eqs = d
        .netlist
        .nodes
        .iter()
        .filter(|n| matches!(n.op, NodeOp::Equal { .. }))
        .count();
    assert_eq!(eqs, 8);
}

#[test]
fn chessboard_virtual_replacement() {
    let src = "TYPE black = COMPONENT(IN top, left: boolean; OUT bottom,right:boolean) IS \
         BEGIN bottom := top; right := left END; \
         white = COMPONENT(IN top, left: boolean; OUT bottom,right:boolean) IS \
         BEGIN bottom := left; right := top END; \
         chessboard(n) = COMPONENT(IN a: boolean; OUT z: boolean) IS \
         SIGNAL m: ARRAY[1..n,1..n] OF virtual; \
         { ORDER toptobottom \
             FOR i := 1 TO n DO \
               ORDER lefttoright \
                 FOR j := 1 TO n DO \
                   WHEN odd(i+j) THEN m[i,j] = black OTHERWISE m[i,j] = white END \
                 END \
               END \
             END \
           END } \
         BEGIN \
           FOR i := 1 TO n DO m[i,1].left := a; * := m[i,n].right END; \
           FOR j := 1 TO n DO m[1,j].top := a; * := m[n,j].bottom END; \
           FOR i := 2 TO n DO FOR j := 1 TO n DO \
             m[i,j].top := m[i-1,j].bottom \
           END END; \
           FOR i := 1 TO n DO FOR j := 2 TO n DO \
             m[i,j].left := m[i,j-1].right \
           END END; \
           z := m[n,n].bottom \
         END;";
    let d = elab(src, "chessboard", &[4]);
    fn count(n: &zeus_elab::InstanceNode, ty: &str) -> usize {
        (n.type_name == ty) as usize + n.children.iter().map(|c| count(c, ty)).sum::<usize>()
    }
    assert_eq!(
        count(&d.instances, "black") + count(&d.instances, "white"),
        16
    );
    assert_eq!(count(&d.instances, "black"), 8);
    // Layout carries the 4 rows × 4 columns order structure.
    assert!(!d.instances.layout.is_empty());
}

#[test]
fn htree_aliasing_and_layout() {
    let src = "TYPE htree(n) = \
         COMPONENT(IN in:boolean; out: multiplex) { BOTTOM in; out } IS \
         TYPE leaftype = COMPONENT(IN in:boolean; out: multiplex) IS BEGIN END; \
         SIGNAL s: ARRAY[1..4] OF htree(n DIV 4); \
         leaf: leaftype; \
         { ORDER lefttoright \
             ORDER toptobottom s[1]; flip90 s[3] END; \
             ORDER toptobottom s[2]; flip90 s[4] END \
           END } \
         BEGIN \
           WHEN n>1 THEN \
             FOR i := 1 TO 4 DO s[i].in := in; out == s[i].out END \
           OTHERWISE \
             leaf.in := in; out == leaf.out \
           END \
         END;";
    let d = elab(src, "htree", &[16]);
    fn count(n: &zeus_elab::InstanceNode, ty: &str) -> usize {
        (n.type_name == ty) as usize + n.children.iter().map(|c| count(c, ty)).sum::<usize>()
    }
    // htree(16) → 4 htree(4) → 16 htree(1), each with one leaf.
    assert_eq!(count(&d.instances, "htree"), 21);
    assert_eq!(count(&d.instances, "leaftype"), 16);
    // All outs alias to the top `out` port.
    let top_out = d.port("out").expect("out port").nets[0];
    let leaf_out = d.names["htree.s[1].s[2].leaf.out"];
    assert_eq!(d.netlist.find_ref(leaf_out), d.netlist.find_ref(top_out));
}

#[test]
fn function_component_call_inlines() {
    let src = "TYPE bo(n) = ARRAY[1..n] OF boolean; \
         mux4 = COMPONENT (IN d:bo(4); IN a:bo(2); IN g: boolean):boolean IS \
         CONST bit2 = ((0,0),(0,1),(1,0),(1,1)); \
         SIGNAL h: multiplex; \
         BEGIN \
           FOR i:=1 TO 4 DO IF EQUAL(a,bit2[i]) THEN h := d[i] END END; \
           RESULT AND(NOT g,h) \
         END; \
         top = COMPONENT (IN d:bo(4); IN a:bo(2); IN g: boolean; OUT y: boolean) IS \
         BEGIN y := mux4(d,a,g) END;";
    let d = elab(src, "top", &[]);
    // Four EQUAL comparators from the unrolled FOR.
    let eqs = d
        .netlist
        .nodes
        .iter()
        .filter(|n| matches!(n.op, NodeOp::Equal { .. }))
        .count();
    assert_eq!(eqs, 4);
}

#[test]
fn function_with_type_args() {
    let src =
        "TYPE ident(n) = COMPONENT (IN x: ARRAY[1..n] OF boolean): ARRAY[1..n] OF boolean IS \
         BEGIN RESULT x END; \
         top = COMPONENT (IN a: ARRAY[1..3] OF boolean; OUT y: ARRAY[1..3] OF boolean) IS \
         BEGIN y := ident[3](a) END;";
    let d = elab(src, "top", &[]);
    assert_eq!(d.port("y").unwrap().width(), 3);
}

#[test]
fn sequential_incompatible_rejected() {
    let e = elab_err(
        "TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL x,y: boolean; \
         BEGIN SEQUENTIAL y := NOT x; x := NOT a END; s := y END;",
        "t",
        &[],
    );
    assert!(e.contains("SEQUENTIAL"), "{e}");
}

#[test]
fn sequential_compatible_ok() {
    elab(
        "TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL x,y: boolean; \
         BEGIN SEQUENTIAL x := NOT a; y := NOT x END; s := y END;",
        "t",
        &[],
    );
}

#[test]
fn elaborate_signal_entry_point() {
    let src = format!("{HALFADDER} SIGNAL ha: halfadder;");
    let p = parse_program(&src).expect("parse");
    let d = elaborate_signal(&p, "ha").expect("elaborate via signal");
    assert_eq!(d.top_type, "halfadder");
}

#[test]
fn with_statement_opens_fields() {
    let src = "TYPE inner = COMPONENT (IN x: boolean; OUT y: boolean) IS BEGIN y := x END; \
         t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL g: inner; \
         BEGIN WITH g DO x := a; s := y END END;";
    let d = elab(src, "t", &[]);
    assert!(d.instances.child("g").is_some());
}

#[test]
fn clk_rset_available() {
    let d = elab(
        "TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         BEGIN IF RSET THEN s := CLK ELSE s := a END END;",
        "t",
        &[],
    );
    assert!(d.clk.is_some());
    assert!(d.rset.is_some());
}

#[test]
fn array_connection_distributes() {
    let src = "TYPE r = COMPONENT(IN a:boolean; OUT b:boolean) IS BEGIN b := a END; \
         t = COMPONENT (IN s: ARRAY[1..10] OF boolean; OUT u: ARRAY[1..10] OF boolean) IS \
         SIGNAL x: ARRAY[1..10] OF r; \
         BEGIN x(s,u) END;";
    let d = elab(src, "t", &[]);
    assert_eq!(d.instances.children.len(), 10);
}

#[test]
fn second_connection_statement_rejected() {
    let e = elab_err(
        "TYPE inner = COMPONENT (IN x: boolean; OUT y: boolean) IS BEGIN y := x END; \
         t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL g: inner; \
         BEGIN g(a, s); g(a, s) END;",
        "t",
        &[],
    );
    assert!(e.contains("at most one connection statement"), "{e}");
}

#[test]
fn width_mismatch_rejected() {
    let e = elab_err(
        "TYPE t = COMPONENT (IN a: ARRAY[1..3] OF boolean; OUT s: ARRAY[1..2] OF boolean) IS \
         BEGIN s := a END;",
        "t",
        &[],
    );
    assert!(e.contains("width mismatch"), "{e}");
}

#[test]
fn broadcast_field_selection() {
    // r.in denotes r[1..n].in (§4.1).
    let d = elab(
        "TYPE rec = COMPONENT (IN in: boolean; OUT out: boolean); \
         t = COMPONENT (IN a: ARRAY[1..4] OF boolean; OUT s: ARRAY[1..4] OF boolean) IS \
         SIGNAL r: ARRAY[1..4] OF rec; \
         BEGIN r.in := a; s := r.out; r.out := a END;",
        "t",
        &[],
    );
    // 4 + 4 + 4 buffers.
    let bufs = d
        .netlist
        .nodes
        .iter()
        .filter(|n| n.op == NodeOp::Buf)
        .count();
    assert_eq!(bufs, 12);
}

#[test]
fn out_port_reading_is_allowed_and_star_discards() {
    elab(
        "TYPE inner = COMPONENT (IN x: boolean; OUT y: boolean) IS BEGIN y := x END; \
         t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL g: inner; \
         BEGIN g.x := a; * := g.y; s := a END;",
        "t",
        &[],
    );
}
